//! Crash-safe persistence for the result cache: write-ahead log plus
//! snapshot compaction.
//!
//! # On-disk layout
//!
//! A persist directory holds at most one `snapshot.qcs` and any number of
//! `wal-NNNNNN.qcs` segments (strictly increasing indices; appends go to
//! the highest). Every file starts with an 8-byte magic that pins its
//! record-body version — `QCSPERS2` ([`MAGIC`]) for files written by
//! this build, `QCSPERS1` ([`MAGIC_V1`]) for pre-semantic-cache files,
//! which remain fully readable. After the magic, both file kinds carry
//! the same record framing:
//!
//! ```text
//! [u32 body_len BE][u64 FNV-1a(body) BE][body]
//! v1 body = [u64 digest BE][u32 key_len BE][key bytes][payload bytes]
//! v2 body = [u64 digest BE][u32 key_len BE][key bytes][u8 flags]
//!           [flags & 1: canonical block][payload bytes]
//! canonical block = [u64 canon_digest BE][u32 canon_key_len BE][canon key]
//!                   [u32 width BE][width × u32 relabel]
//!                   [width × u32 initial][width × u32 final]
//! ```
//!
//! `digest` is the cache digest, `key` the job's full key, `payload` the
//! canonical response bytes — exactly one [`crate::cache::ResultCache`]
//! entry per record, so recovery is "replay every record through
//! `insert`" and later records win. The v2 canonical block carries the
//! entry's semantic identity ([`crate::cache::CanonicalInfo`]) so a warm
//! restart also re-warms the canonical index; v1 records replay as
//! exact-only entries (`flags = 0` semantics), losing nothing they ever
//! had.
//!
//! # Version upgrade
//!
//! Opening a directory whose newest WAL segment is v1 never mixes
//! versions inside one file: the v1 segment is left intact for replay
//! and a fresh v2 segment is started for appends. The first compaction
//! after that rewrites every live entry as a v2 snapshot and deletes
//! the v1 segments — upgrade completes as a side effect of normal
//! operation. Records recovered from v1 files are additionally counted
//! in [`PersistStats::legacy_records_recovered`].
//!
//! # Durability and recovery policy
//!
//! * **Append** writes the whole record with one `write_all` then
//!   `sync_data`, so an acknowledged compile survives `kill -9`.
//! * **Torn tail** (record that stops mid-bytes — the classic
//!   mid-`write` crash): the file is truncated back to the last complete
//!   record and the event counted in
//!   [`PersistStats::torn_tails_truncated`]. Only the tail can tear, so
//!   nothing acknowledged is lost.
//! * **Corrupt record** (plausible length, checksum mismatch — a flipped
//!   bit): skipped, counted in
//!   [`PersistStats::corrupt_records_skipped`], and the scan continues
//!   with the next record, so one bad sector costs one entry.
//! * **Implausible length** (corruption hit the length field itself, so
//!   record boundaries are gone): the rest of the file is dropped,
//!   counted as one corrupt record plus a truncated tail.
//!
//! Recovery never panics and never refuses to start: the worst corrupted
//! directory degrades to a cold cache plus nonzero counters in `stats`.
//!
//! # Compaction
//!
//! When the WAL outgrows the live cache (dead records from eviction and
//! re-insertion pile up), [`Store::compact`] writes the live entries to
//! `snapshot.tmp`, fsyncs it, atomically renames it over `snapshot.qcs`,
//! fsyncs the directory, deletes every WAL segment and starts a fresh
//! one. A crash at any point leaves either the old state (rename not yet
//! durable) or the new (rename durable) — never a mix, because the
//! rename is the commit point.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use qcs_circuit::hash::Fnv64;
use qcs_faults::Hit;

use crate::cache::{CanonicalInfo, EntryRef};

/// Leading magic of files written by this build: version 2 bodies
/// (exact key + optional canonical block).
pub const MAGIC: &[u8; 8] = b"QCSPERS2";

/// Magic of pre-semantic-cache files: version 1 bodies (exact key
/// only). Read support is permanent; nothing writes it anymore.
pub const MAGIC_V1: &[u8; 8] = b"QCSPERS1";

/// Per-record framing overhead: length prefix + checksum.
const RECORD_HEADER_BYTES: usize = 4 + 8;

/// Per-body framing overhead: digest + key length.
const BODY_HEADER_BYTES: usize = 8 + 4;

/// Ceiling on one record body. Anything larger cannot be a real record
/// (payloads are bounded by the protocol's 16 MiB frame cap) and is
/// treated as corruption of the length field itself.
pub const MAX_RECORD_BYTES: usize = 64 << 20;

/// Default WAL size that triggers compaction.
const DEFAULT_COMPACT_THRESHOLD: u64 = 8 << 20;

/// Record-body version, derived from the file magic at read time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BodyVersion {
    V1,
    V2,
}

/// Counters describing the store's life so far, reported by `stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PersistStats {
    /// Entries recovered (snapshot + WAL) at open time.
    pub records_recovered: u64,
    /// Of those, entries recovered from pre-upgrade (v1) files.
    pub legacy_records_recovered: u64,
    /// Records dropped at open time for failing their checksum.
    pub corrupt_records_skipped: u64,
    /// Files truncated at open time because their tail was incomplete.
    pub torn_tails_truncated: u64,
    /// Records appended since open.
    pub appends: u64,
    /// Snapshot compactions since open.
    pub compactions: u64,
    /// Bytes currently in WAL segments (headers included).
    pub wal_bytes: u64,
    /// Bytes in the current snapshot (0 when none exists).
    pub snapshot_bytes: u64,
}

/// One cache entry read back from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredRecord {
    /// The cache digest.
    pub digest: u64,
    /// The job's full key.
    pub key: Vec<u8>,
    /// The canonical response payload.
    pub payload: Vec<u8>,
    /// The entry's canonical identity (v2 records that carried one).
    pub canonical: Option<CanonicalInfo>,
}

/// The open persist directory: an append handle on the active WAL
/// segment plus bookkeeping for compaction.
pub struct Store {
    dir: PathBuf,
    wal: File,
    wal_index: u64,
    compact_threshold: u64,
    stats: PersistStats,
}

impl Store {
    /// Opens (creating if needed) a persist directory, replays snapshot
    /// and WAL segments, and returns the store plus every recovered
    /// record in replay order (snapshot first, then WAL segments by
    /// index; within a file, record order — so replaying through the
    /// cache reproduces its pre-crash state, later records winning).
    ///
    /// Both body versions replay. When the newest existing WAL segment
    /// is v1, a fresh v2 segment is started for appends so no file ever
    /// mixes versions.
    ///
    /// # Errors
    ///
    /// Only on environmental I/O failure (directory not creatable, files
    /// not openable). *Corrupted contents never error* — they are
    /// skipped and counted in [`PersistStats`].
    pub fn open(dir: &Path) -> io::Result<(Store, Vec<RecoveredRecord>)> {
        fs::create_dir_all(dir)?;
        let mut stats = PersistStats::default();
        let mut records = Vec::new();

        let snapshot_path = dir.join("snapshot.qcs");
        if snapshot_path.exists() {
            stats.snapshot_bytes = read_records(&snapshot_path, &mut records, &mut stats, false)?;
        }

        let mut segments = wal_segments(dir)?;
        segments.sort_unstable();
        let last = segments.last().copied();
        let mut last_is_legacy = false;
        for &index in &segments {
            let path = wal_path(dir, index);
            // Only the highest segment ever receives appends again, so
            // only its torn tail needs physical truncation.
            let truncate = Some(index) == last;
            stats.wal_bytes += read_records(&path, &mut records, &mut stats, truncate)?;
            if truncate {
                last_is_legacy = file_version(&path)? == Some(BodyVersion::V1);
            }
        }
        stats.records_recovered = records.len() as u64;

        // Appends must land in a v2 file: roll past a legacy segment
        // instead of appending v2 records under a v1 magic.
        let wal_index = match last {
            Some(index) if last_is_legacy => index + 1,
            Some(index) => index,
            None => 1,
        };
        let path = wal_path(dir, wal_index);
        let fresh = !path.exists();
        let mut wal = OpenOptions::new().create(true).append(true).open(&path)?;
        if fresh {
            wal.write_all(MAGIC)?;
            wal.sync_data()?;
            stats.wal_bytes += MAGIC.len() as u64;
            sync_dir(dir)?;
        }

        Ok((
            Store {
                dir: dir.to_path_buf(),
                wal,
                wal_index,
                compact_threshold: DEFAULT_COMPACT_THRESHOLD,
                stats,
            },
            records,
        ))
    }

    /// Overrides the WAL size that makes [`should_compact`](Self::should_compact)
    /// fire (tests use tiny thresholds to exercise compaction cheaply).
    pub fn set_compact_threshold(&mut self, bytes: u64) {
        self.compact_threshold = bytes;
    }

    /// Durably appends one cache entry to the active WAL segment: the
    /// record is fully written and `sync_data`ed before this returns, so
    /// an acknowledged response survives an immediate `kill -9`.
    ///
    /// # Errors
    ///
    /// Disk-level failures, or an injected `serve.cache.persist`
    /// failpoint error. An armed `panic` on that site unwinds from here
    /// (callers isolate it like any compile panic).
    pub fn append(
        &mut self,
        digest: u64,
        key: &[u8],
        payload: &[u8],
        canonical: Option<&CanonicalInfo>,
    ) -> io::Result<()> {
        if let Hit::Error(message) = qcs_faults::hit("serve.cache.persist") {
            return Err(io::Error::other(format!("injected fault: {message}")));
        }
        let record = encode_record(digest, key, payload, canonical)?;
        self.wal.write_all(&record)?;
        self.wal.sync_data()?;
        self.stats.wal_bytes += record.len() as u64;
        self.stats.appends += 1;
        Ok(())
    }

    /// Whether the WAL has outgrown its threshold and the live entries
    /// should be folded into a fresh snapshot.
    pub fn should_compact(&self) -> bool {
        self.stats.wal_bytes > self.compact_threshold.max(self.stats.snapshot_bytes)
    }

    /// Atomically replaces the snapshot with `entries` (the cache's live
    /// set, LRU-first) and starts a fresh WAL segment. The rename of the
    /// fsynced temp file is the commit point; a crash on either side of
    /// it leaves a fully consistent directory. Always writes the current
    /// (v2) format — compacting is how legacy directories finish their
    /// upgrade.
    ///
    /// # Errors
    ///
    /// Disk-level failures. The store stays usable: a failed compaction
    /// leaves the old snapshot and WAL in place.
    pub fn compact(&mut self, entries: &[EntryRef]) -> io::Result<()> {
        let tmp_path = self.dir.join("snapshot.tmp");
        let snapshot_path = self.dir.join("snapshot.qcs");
        let mut bytes: u64 = MAGIC.len() as u64;
        {
            let mut tmp = File::create(&tmp_path)?;
            tmp.write_all(MAGIC)?;
            for entry in entries {
                let record = encode_record(
                    entry.digest,
                    &entry.key,
                    &entry.payload,
                    entry.canonical.as_ref(),
                )?;
                tmp.write_all(&record)?;
                bytes += record.len() as u64;
            }
            tmp.sync_all()?;
        }
        fs::rename(&tmp_path, &snapshot_path)?;
        sync_dir(&self.dir)?;

        // The snapshot is durable: every WAL segment is now dead weight.
        let old_index = self.wal_index;
        self.wal_index = old_index + 1;
        let path = wal_path(&self.dir, self.wal_index);
        let mut wal = OpenOptions::new().create(true).append(true).open(&path)?;
        wal.write_all(MAGIC)?;
        wal.sync_data()?;
        self.wal = wal;
        for index in wal_segments(&self.dir)? {
            if index <= old_index {
                let _ = fs::remove_file(wal_path(&self.dir, index));
            }
        }
        sync_dir(&self.dir)?;

        self.stats.snapshot_bytes = bytes;
        self.stats.wal_bytes = MAGIC.len() as u64;
        self.stats.compactions += 1;
        Ok(())
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> PersistStats {
        self.stats
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Frames one cache entry as a checksummed v2 record.
fn encode_record(
    digest: u64,
    key: &[u8],
    payload: &[u8],
    canonical: Option<&CanonicalInfo>,
) -> io::Result<Vec<u8>> {
    let canon_len = canonical.map_or(0, |c| 8 + 4 + c.key.len() + 4 + 3 * 4 * c.relabel.len());
    let body_len = BODY_HEADER_BYTES + key.len() + 1 + canon_len + payload.len();
    if body_len > MAX_RECORD_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("record of {body_len} bytes exceeds persist maximum"),
        ));
    }
    let mut record = Vec::with_capacity(RECORD_HEADER_BYTES + body_len);
    record.extend_from_slice(&(body_len as u32).to_be_bytes());
    record.extend_from_slice(&[0u8; 8]); // checksum patched below
    record.extend_from_slice(&digest.to_be_bytes());
    record.extend_from_slice(&(key.len() as u32).to_be_bytes());
    record.extend_from_slice(key);
    match canonical {
        None => record.push(0),
        Some(c) => {
            record.push(1);
            record.extend_from_slice(&c.digest.to_be_bytes());
            record.extend_from_slice(&(c.key.len() as u32).to_be_bytes());
            record.extend_from_slice(&c.key);
            let width = c.relabel.len();
            debug_assert_eq!(c.initial_layout.len(), width);
            debug_assert_eq!(c.final_layout.len(), width);
            record.extend_from_slice(&(width as u32).to_be_bytes());
            for lane in [&c.relabel, &c.initial_layout, &c.final_layout] {
                for &v in lane.iter() {
                    record.extend_from_slice(&(v as u32).to_be_bytes());
                }
            }
        }
    }
    record.extend_from_slice(payload);
    let checksum = fnv64(&record[RECORD_HEADER_BYTES..]);
    record[4..12].copy_from_slice(&checksum.to_be_bytes());
    Ok(record)
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

/// A bounds-checked big-endian reader over one record body.
struct BodyReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> BodyReader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.at..self.at + n)?;
        self.at += n;
        Some(slice)
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_be_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_be_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn rest(self) -> &'a [u8] {
        &self.bytes[self.at..]
    }
}

/// Decodes one record body; `None` means structurally corrupt (counted
/// by the caller as a corrupt record).
fn parse_body(body: &[u8], version: BodyVersion) -> Option<RecoveredRecord> {
    let mut r = BodyReader { bytes: body, at: 0 };
    let digest = r.u64()?;
    let key_len = r.u32()? as usize;
    let key = r.take(key_len)?.to_vec();
    let canonical = match version {
        BodyVersion::V1 => None,
        BodyVersion::V2 => {
            let flags = r.take(1)?[0];
            if flags & 1 == 0 {
                None
            } else {
                let canon_digest = r.u64()?;
                let canon_key_len = r.u32()? as usize;
                let canon_key = r.take(canon_key_len)?.to_vec();
                let width = r.u32()? as usize;
                let mut lanes = [Vec::new(), Vec::new(), Vec::new()];
                for lane in &mut lanes {
                    lane.reserve(width);
                    for _ in 0..width {
                        lane.push(r.u32()? as usize);
                    }
                }
                let [relabel, initial_layout, final_layout] = lanes;
                Some(CanonicalInfo {
                    digest: canon_digest,
                    key: Arc::new(canon_key),
                    relabel: Arc::new(relabel),
                    initial_layout: Arc::new(initial_layout),
                    final_layout: Arc::new(final_layout),
                })
            }
        }
    };
    Some(RecoveredRecord {
        digest,
        key,
        payload: r.rest().to_vec(),
        canonical,
    })
}

/// The body version a file's magic pins; `None` for unrecognizable
/// files.
fn file_version(path: &Path) -> io::Result<Option<BodyVersion>> {
    let mut magic = [0u8; 8];
    let mut file = File::open(path)?;
    let mut read = 0;
    while read < magic.len() {
        match file.read(&mut magic[read..])? {
            0 => return Ok(None),
            n => read += n,
        }
    }
    Ok(match &magic {
        m if m == MAGIC => Some(BodyVersion::V2),
        m if m == MAGIC_V1 => Some(BodyVersion::V1),
        _ => None,
    })
}

/// Replays one file's records into `out`, applying the recovery policy
/// (skip corrupt, stop at torn tail, count everything). Returns the
/// number of usable bytes — the offset the file was (or would be)
/// truncated to. With `truncate` set, a torn tail is physically cut off
/// so future appends continue from a clean record boundary.
fn read_records(
    path: &Path,
    out: &mut Vec<RecoveredRecord>,
    stats: &mut PersistStats,
    truncate: bool,
) -> io::Result<u64> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;

    let version = if bytes.len() >= MAGIC.len() && &bytes[..MAGIC.len()] == MAGIC {
        BodyVersion::V2
    } else if bytes.len() >= MAGIC_V1.len() && &bytes[..MAGIC_V1.len()] == MAGIC_V1 {
        BodyVersion::V1
    } else {
        // Unrecognizable file: nothing recoverable. If it's the active
        // WAL, reset it to a valid empty file so appends can proceed.
        stats.corrupt_records_skipped += 1;
        if truncate {
            stats.torn_tails_truncated += 1;
            let mut wal = File::create(path)?;
            wal.write_all(MAGIC)?;
            wal.sync_data()?;
            return Ok(MAGIC.len() as u64);
        }
        return Ok(0);
    };

    let mut offset = MAGIC.len();
    let mut good_end = offset; // end of the last intact record
    loop {
        let remaining = bytes.len() - offset;
        if remaining == 0 {
            break; // clean end of file
        }
        if remaining < RECORD_HEADER_BYTES {
            stats.torn_tails_truncated += 1; // header itself is torn
            break;
        }
        let body_len = u32::from_be_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let checksum = u64::from_be_bytes(bytes[offset + 4..offset + 12].try_into().unwrap());
        if !(BODY_HEADER_BYTES..=MAX_RECORD_BYTES).contains(&body_len) {
            // The length field itself is garbage: record boundaries are
            // lost, drop the rest of the file.
            stats.corrupt_records_skipped += 1;
            stats.torn_tails_truncated += 1;
            break;
        }
        if remaining - RECORD_HEADER_BYTES < body_len {
            stats.torn_tails_truncated += 1; // body is torn
            break;
        }
        let body_start = offset + RECORD_HEADER_BYTES;
        let body = &bytes[body_start..body_start + body_len];
        offset = body_start + body_len;
        if fnv64(body) != checksum {
            stats.corrupt_records_skipped += 1;
            continue; // framing intact, content flipped: skip one record
        }
        match parse_body(body, version) {
            Some(record) => {
                if version == BodyVersion::V1 {
                    stats.legacy_records_recovered += 1;
                }
                out.push(record);
            }
            None => {
                stats.corrupt_records_skipped += 1;
                continue;
            }
        }
        good_end = offset;
    }

    if truncate && good_end < bytes.len() {
        let wal = OpenOptions::new().write(true).open(path)?;
        wal.set_len(good_end as u64)?;
        wal.sync_data()?;
    }
    Ok(good_end as u64)
}

fn wal_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:06}.qcs"))
}

/// Indices of every `wal-NNNNNN.qcs` in the directory, unsorted.
fn wal_segments(dir: &Path) -> io::Result<Vec<u64>> {
    let mut indices = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(index) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".qcs"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            indices.push(index);
        }
    }
    Ok(indices)
}

/// Makes directory-level changes (creates, renames, deletes) durable.
fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    /// A scratch directory removed on drop, unique per test.
    struct TempDir(PathBuf);

    impl TempDir {
        fn new(tag: &str) -> TempDir {
            let dir =
                std::env::temp_dir().join(format!("qcs-persist-test-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            fs::create_dir_all(&dir).unwrap();
            TempDir(dir)
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn entry(i: u64) -> (u64, Vec<u8>, Vec<u8>) {
        (
            i,
            format!("key-{i}").into_bytes(),
            format!("payload-{i}-{}", "x".repeat(i as usize % 7)).into_bytes(),
        )
    }

    fn canonical(i: u64) -> CanonicalInfo {
        CanonicalInfo {
            digest: 0x1000 + i,
            key: Arc::new(format!("canon-key-{i}").into_bytes()),
            relabel: Arc::new(vec![2, 0, 1]),
            initial_layout: Arc::new(vec![4, 5, 6]),
            final_layout: Arc::new(vec![6, 5, 4]),
        }
    }

    /// Writes a pre-upgrade (v1) WAL segment byte-for-byte as the old
    /// build did: `QCSPERS1` magic, then v1 bodies (no flags byte).
    fn write_v1_wal(dir: &Path, index: u64, entries: &[(u64, Vec<u8>, Vec<u8>)]) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        for (digest, key, payload) in entries {
            let body_len = BODY_HEADER_BYTES + key.len() + payload.len();
            bytes.extend_from_slice(&(body_len as u32).to_be_bytes());
            let checksum_at = bytes.len();
            bytes.extend_from_slice(&[0u8; 8]);
            let body_at = bytes.len();
            bytes.extend_from_slice(&digest.to_be_bytes());
            bytes.extend_from_slice(&(key.len() as u32).to_be_bytes());
            bytes.extend_from_slice(key);
            bytes.extend_from_slice(payload);
            let checksum = fnv64(&bytes[body_at..]);
            bytes[checksum_at..checksum_at + 8].copy_from_slice(&checksum.to_be_bytes());
        }
        fs::write(wal_path(dir, index), bytes).unwrap();
    }

    #[test]
    fn appends_survive_reopen() {
        let tmp = TempDir::new("reopen");
        {
            let (mut store, recovered) = Store::open(tmp.path()).unwrap();
            assert!(recovered.is_empty());
            for i in 0..10 {
                let (d, k, p) = entry(i);
                store.append(d, &k, &p, None).unwrap();
            }
        }
        let (store, recovered) = Store::open(tmp.path()).unwrap();
        assert_eq!(recovered.len(), 10);
        for (i, r) in recovered.iter().enumerate() {
            let (d, k, p) = entry(i as u64);
            assert_eq!((r.digest, &r.key, &r.payload), (d, &k, &p));
            assert!(r.canonical.is_none());
        }
        let s = store.stats();
        assert_eq!(s.records_recovered, 10);
        assert_eq!(s.legacy_records_recovered, 0);
        assert_eq!(s.corrupt_records_skipped, 0);
        assert_eq!(s.torn_tails_truncated, 0);
    }

    #[test]
    fn canonical_identity_round_trips() {
        let tmp = TempDir::new("canon");
        {
            let (mut store, _) = Store::open(tmp.path()).unwrap();
            let (d, k, p) = entry(1);
            store.append(d, &k, &p, Some(&canonical(1))).unwrap();
            let (d, k, p) = entry(2);
            store.append(d, &k, &p, None).unwrap();
        }
        let (_, recovered) = Store::open(tmp.path()).unwrap();
        assert_eq!(recovered.len(), 2);
        assert_eq!(recovered[0].canonical.as_ref(), Some(&canonical(1)));
        assert!(recovered[1].canonical.is_none());
    }

    #[test]
    fn pre_upgrade_wal_replays_and_compacts_into_v2() {
        let tmp = TempDir::new("v1compat");
        // A directory exactly as the previous build left it: one v1 WAL.
        let old: Vec<_> = (0..6).map(entry).collect();
        write_v1_wal(tmp.path(), 1, &old);

        let (mut store, recovered) = Store::open(tmp.path()).unwrap();
        // Every pre-upgrade record replays cleanly, exact-key only.
        assert_eq!(recovered.len(), 6);
        for (r, (d, k, p)) in recovered.iter().zip(&old) {
            assert_eq!((&r.digest, &r.key, &r.payload), (d, k, p));
            assert!(r.canonical.is_none());
        }
        let s = store.stats();
        assert_eq!(s.legacy_records_recovered, 6);
        assert_eq!(s.corrupt_records_skipped, 0);

        // Appends rolled to a fresh v2 segment — the v1 file is intact
        // and un-mixed.
        assert_eq!(
            file_version(&wal_path(tmp.path(), 1)).unwrap(),
            Some(BodyVersion::V1)
        );
        assert_eq!(
            file_version(&wal_path(tmp.path(), 2)).unwrap(),
            Some(BodyVersion::V2)
        );
        let (d, k, p) = entry(6);
        store.append(d, &k, &p, Some(&canonical(6))).unwrap();

        // First snapshot rewrites everything as v2 and deletes the v1
        // segment: the upgrade is complete.
        let live: Vec<EntryRef> = recovered
            .iter()
            .map(|r| EntryRef {
                digest: r.digest,
                key: Arc::new(r.key.clone()),
                payload: Arc::new(r.payload.clone()),
                canonical: r.canonical.clone(),
            })
            .chain(std::iter::once(EntryRef {
                digest: 6,
                key: Arc::new(entry(6).1),
                payload: Arc::new(entry(6).2),
                canonical: Some(canonical(6)),
            }))
            .collect();
        store.compact(&live).unwrap();
        drop(store);
        assert!(!wal_path(tmp.path(), 1).exists());
        assert_eq!(
            file_version(&tmp.path().join("snapshot.qcs")).unwrap(),
            Some(BodyVersion::V2)
        );

        let (store, recovered) = Store::open(tmp.path()).unwrap();
        assert_eq!(recovered.len(), 7);
        assert_eq!(recovered[6].canonical.as_ref(), Some(&canonical(6)));
        // Nothing legacy remains after compaction.
        assert_eq!(store.stats().legacy_records_recovered, 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let tmp = TempDir::new("torn");
        {
            let (mut store, _) = Store::open(tmp.path()).unwrap();
            for i in 0..5 {
                let (d, k, p) = entry(i);
                store.append(d, &k, &p, None).unwrap();
            }
        }
        // Simulate a crash mid-write: append half a record.
        let wal = wal_path(tmp.path(), 1);
        let torn = &encode_record(99, b"torn-key", b"torn-payload", None).unwrap();
        let mut f = OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(&torn[..torn.len() / 2]).unwrap();
        drop(f);

        let (mut store, recovered) = Store::open(tmp.path()).unwrap();
        assert_eq!(recovered.len(), 5);
        assert_eq!(store.stats().torn_tails_truncated, 1);
        // The tail was physically cut: a fresh append then reopen sees
        // exactly 6 clean records.
        store.append(100, b"after", b"the tear", None).unwrap();
        drop(store);
        let (store, recovered) = Store::open(tmp.path()).unwrap();
        assert_eq!(recovered.len(), 6);
        assert_eq!(recovered[5].digest, 100);
        assert_eq!(store.stats().torn_tails_truncated, 0);
    }

    #[test]
    fn flipped_bit_skips_one_record_only() {
        let tmp = TempDir::new("bitflip");
        let mut offsets = vec![MAGIC.len()];
        {
            let (mut store, _) = Store::open(tmp.path()).unwrap();
            for i in 0..5 {
                let (d, k, p) = entry(i);
                store.append(d, &k, &p, None).unwrap();
                offsets.push(store.stats().wal_bytes as usize);
            }
        }
        // Flip one payload bit inside record 2 (past its 12-byte record
        // header, 12-byte body header and flags byte, so framing stays
        // intact).
        let wal = wal_path(tmp.path(), 1);
        let mut bytes = fs::read(&wal).unwrap();
        bytes[offsets[2] + RECORD_HEADER_BYTES + BODY_HEADER_BYTES + 2] ^= 0x40;
        fs::write(&wal, &bytes).unwrap();

        let (store, recovered) = Store::open(tmp.path()).unwrap();
        let digests: Vec<u64> = recovered.iter().map(|r| r.digest).collect();
        assert_eq!(digests, vec![0, 1, 3, 4]); // record 2 gone, rest intact
        let s = store.stats();
        assert_eq!(s.corrupt_records_skipped, 1);
        assert_eq!(s.torn_tails_truncated, 0);
    }

    #[test]
    fn garbage_length_field_drops_rest_of_file() {
        let tmp = TempDir::new("badlen");
        let second_record_at;
        {
            let (mut store, _) = Store::open(tmp.path()).unwrap();
            let (d, k, p) = entry(0);
            store.append(d, &k, &p, None).unwrap();
            second_record_at = store.stats().wal_bytes as usize;
            for i in 1..4 {
                let (d, k, p) = entry(i);
                store.append(d, &k, &p, None).unwrap();
            }
        }
        let wal = wal_path(tmp.path(), 1);
        let mut bytes = fs::read(&wal).unwrap();
        bytes[second_record_at] = 0xFF; // length now ~4 GiB: implausible
        fs::write(&wal, &bytes).unwrap();

        let (store, recovered) = Store::open(tmp.path()).unwrap();
        assert_eq!(recovered.len(), 1); // only the record before the damage
        let s = store.stats();
        assert_eq!(s.corrupt_records_skipped, 1);
        assert_eq!(s.torn_tails_truncated, 1);
    }

    #[test]
    fn compaction_folds_wal_into_snapshot() {
        let tmp = TempDir::new("compact");
        {
            let (mut store, _) = Store::open(tmp.path()).unwrap();
            store.set_compact_threshold(64);
            for i in 0..8 {
                let (d, k, p) = entry(i);
                store.append(d, &k, &p, None).unwrap();
            }
            assert!(store.should_compact());
            // Pretend the cache only kept entries 5..8 (eviction).
            let live: Vec<EntryRef> = (5..8)
                .map(|i| {
                    let (d, k, p) = entry(i);
                    EntryRef {
                        digest: d,
                        key: Arc::new(k),
                        payload: Arc::new(p),
                        canonical: None,
                    }
                })
                .collect();
            store.compact(&live).unwrap();
            let s = store.stats();
            assert_eq!(s.compactions, 1);
            assert_eq!(s.wal_bytes, MAGIC.len() as u64);
            assert!(s.snapshot_bytes > MAGIC.len() as u64);
            // Post-compaction appends land in the new segment.
            store.append(42, b"new", b"entry", None).unwrap();
        }
        assert!(tmp.path().join("snapshot.qcs").exists());
        assert!(!wal_path(tmp.path(), 1).exists());
        assert!(wal_path(tmp.path(), 2).exists());

        let (_store, recovered) = Store::open(tmp.path()).unwrap();
        let digests: Vec<u64> = recovered.iter().map(|r| r.digest).collect();
        assert_eq!(digests, vec![5, 6, 7, 42]);
    }

    #[test]
    fn unrecognizable_active_wal_resets_cleanly() {
        let tmp = TempDir::new("badmagic");
        {
            let (mut store, _) = Store::open(tmp.path()).unwrap();
            store.append(1, b"k", b"p", None).unwrap();
        }
        fs::write(wal_path(tmp.path(), 1), b"zz").unwrap();
        let (mut store, recovered) = Store::open(tmp.path()).unwrap();
        assert!(recovered.is_empty());
        assert_eq!(store.stats().corrupt_records_skipped, 1);
        store.append(2, b"k2", b"p2", None).unwrap();
        drop(store);
        let (_, recovered) = Store::open(tmp.path()).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].digest, 2);
    }

    #[test]
    fn empty_key_and_payload_round_trip() {
        let tmp = TempDir::new("empty");
        {
            let (mut store, _) = Store::open(tmp.path()).unwrap();
            store.append(0, b"", b"", None).unwrap();
        }
        let (_, recovered) = Store::open(tmp.path()).unwrap();
        assert_eq!(
            recovered,
            vec![RecoveredRecord {
                digest: 0,
                key: Vec::new(),
                payload: Vec::new(),
                canonical: None,
            }]
        );
    }
}
