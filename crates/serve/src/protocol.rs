//! The wire protocol: length-prefixed JSON frames and request parsing.
//!
//! Every message — in both directions — is one *frame*: a 4-byte
//! big-endian payload length followed by that many bytes of UTF-8 JSON.
//! Length-prefixing keeps the stream self-delimiting without requiring
//! an incremental JSON parser, and makes oversized or garbage input
//! detectable before any parsing happens.
//!
//! Requests are JSON objects dispatched on a `"type"` member:
//!
//! | type            | payload                                                        |
//! |-----------------|----------------------------------------------------------------|
//! | `compile`       | `qasm` *or* `workload`, optional `device`/`placer`/`router`/`deadline_ms`/`request_id` |
//! | `compile_suite` | optional `count`/`max_qubits`/`max_gates`/`seed` + compile options |
//! | `stats`         | —                                                              |
//! | `ping`          | —                                                              |
//! | `shutdown`      | —                                                              |
//!
//! Responses are `result`, `suite_result`, `stats`, `pong`, `ok` or
//! `error` objects; see DESIGN.md for the full frame catalogue.

use std::io::{self, Read, Write};

use qcs_core::config::MapperConfig;
use qcs_json::Json;

/// Hard ceiling on a frame payload (16 MiB): large enough for any
/// realistic QASM file or suite response, small enough to bound what a
/// misbehaving peer can make the daemon buffer.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Writes one length-prefixed frame.
///
/// # Errors
///
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME_BYTES`] with
/// [`io::ErrorKind::InvalidInput`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds protocol maximum", payload.len()),
        ));
    }
    let len = u32::try_from(payload.len()).expect("checked against MAX_FRAME_BYTES");
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF before any
/// byte of a frame.
///
/// This is the simple blocking reader used by clients; the daemon uses
/// its own cancellable loop so it can observe shutdown and enforce read
/// deadlines mid-frame.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on an oversized length prefix,
/// [`io::ErrorKind::UnexpectedEof`] on a truncated frame, otherwise the
/// underlying I/O error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds protocol maximum"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Serializes a JSON value and writes it as one frame.
///
/// # Errors
///
/// See [`write_frame`].
pub fn write_json(w: &mut impl Write, value: &Json) -> io::Result<()> {
    write_frame(w, value.to_compact_string().as_bytes())
}

/// The source of the circuit a compile request wants mapped.
#[derive(Debug, Clone, PartialEq)]
pub enum Source {
    /// Inline OpenQASM 2.0 text.
    Qasm(String),
    /// A named workload spec, e.g. `ghz:8` (see the catalog module).
    Workload(String),
}

/// One compilation job description.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileRequest {
    /// Where the circuit comes from.
    pub source: Source,
    /// Device spec (catalog name), e.g. `surface17` or `grid:4x5`.
    pub device: String,
    /// Mapper pipeline to run.
    pub config: MapperConfig,
    /// Optional per-request latency budget in milliseconds; when the
    /// daemon cannot meet it, the job gets an `error` response.
    /// Portfolio (`auto`/`race`) jobs are the exception: they degrade
    /// inside the budget instead of being rejected.
    pub deadline_ms: Option<u64>,
    /// Race every portfolio lane and serve the best verified result,
    /// bypassing the metric-driven selector (`"race": true`).
    pub race: bool,
    /// Optional client-generated request id, echoed verbatim in the
    /// response (`"request_id"` member). A client that retries reuses
    /// the id, so the daemon can tell retried requests from new ones
    /// (counted as `requests_retried` in `stats`) — the groundwork for
    /// idempotent retries.
    pub request_id: Option<String>,
}

/// A generated-suite compilation job (batch dispatched across the worker
/// pool).
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteRequest {
    /// Number of benchmark circuits to generate.
    pub count: usize,
    /// Maximum circuit width.
    pub max_qubits: usize,
    /// Maximum gate count.
    pub max_gates: usize,
    /// Suite generation seed.
    pub seed: u64,
    /// Device spec.
    pub device: String,
    /// Mapper pipeline to run.
    pub config: MapperConfig,
}

/// Every message a client can send.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Compile one circuit.
    Compile(CompileRequest),
    /// Generate and compile a whole benchmark suite.
    CompileSuite(SuiteRequest),
    /// Observability snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the daemon to stop accepting work and exit.
    Shutdown,
}

/// Error describing why a request frame was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError(pub String);

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad request: {}", self.0)
    }
}

impl std::error::Error for RequestError {}

fn opt_str(value: &Json, key: &str, default: &str) -> Result<String, RequestError> {
    match value.get(key) {
        None => Ok(default.to_string()),
        Some(v) => v
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| RequestError(format!("'{key}' must be a string"))),
    }
}

fn opt_usize(value: &Json, key: &str, default: usize) -> Result<usize, RequestError> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| RequestError(format!("'{key}' must be a non-negative integer"))),
    }
}

fn mapper_config(value: &Json) -> Result<MapperConfig, RequestError> {
    let default = MapperConfig::default();
    Ok(MapperConfig::new(
        opt_str(value, "placer", &default.placer)?,
        opt_str(value, "router", &default.router)?,
    ))
}

impl Request {
    /// Parses a request frame payload.
    ///
    /// # Errors
    ///
    /// [`RequestError`] with a client-presentable message on malformed
    /// JSON, an unknown `type`, or wrongly-typed members.
    pub fn parse(payload: &[u8]) -> Result<Request, RequestError> {
        let text = std::str::from_utf8(payload)
            .map_err(|_| RequestError("frame is not valid UTF-8".to_string()))?;
        let value =
            qcs_json::parse(text).map_err(|e| RequestError(format!("invalid JSON ({e})")))?;
        let kind = value
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| RequestError("missing 'type' member".to_string()))?;
        match kind {
            "compile" => {
                let source = match (value.get("qasm"), value.get("workload")) {
                    (Some(q), None) => Source::Qasm(
                        q.as_str()
                            .ok_or_else(|| RequestError("'qasm' must be a string".to_string()))?
                            .to_string(),
                    ),
                    (None, Some(w)) => Source::Workload(
                        w.as_str()
                            .ok_or_else(|| RequestError("'workload' must be a string".to_string()))?
                            .to_string(),
                    ),
                    (Some(_), Some(_)) => {
                        return Err(RequestError(
                            "give either 'qasm' or 'workload', not both".to_string(),
                        ))
                    }
                    (None, None) => {
                        return Err(RequestError(
                            "compile request needs 'qasm' or 'workload'".to_string(),
                        ))
                    }
                };
                let deadline_ms = match value.get("deadline_ms") {
                    None => None,
                    Some(v) => Some(v.as_usize().map(|n| n as u64).ok_or_else(|| {
                        RequestError("'deadline_ms' must be a non-negative integer".to_string())
                    })?),
                };
                let request_id = match value.get("request_id") {
                    None => None,
                    Some(v) => Some(
                        v.as_str()
                            .ok_or_else(|| {
                                RequestError("'request_id' must be a string".to_string())
                            })?
                            .to_string(),
                    ),
                };
                let race = match value.get("race") {
                    None => false,
                    Some(v) => v
                        .as_bool()
                        .ok_or_else(|| RequestError("'race' must be a boolean".to_string()))?,
                };
                Ok(Request::Compile(CompileRequest {
                    source,
                    device: opt_str(&value, "device", "surface17")?,
                    config: mapper_config(&value)?,
                    deadline_ms,
                    request_id,
                    race,
                }))
            }
            "compile_suite" => Ok(Request::CompileSuite(SuiteRequest {
                count: opt_usize(&value, "count", 20)?,
                max_qubits: opt_usize(&value, "max_qubits", 12)?,
                max_gates: opt_usize(&value, "max_gates", 400)?,
                seed: opt_usize(&value, "seed", 7)? as u64,
                device: opt_str(&value, "device", "surface17")?,
                config: mapper_config(&value)?,
            })),
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(RequestError(format!("unknown request type '{other}'"))),
        }
    }
}

/// Machine-readable code for deadline rejections: the request's total
/// time budget ran out (or provably will) before a result could be
/// produced. Carried in the `"code"` member of an `error` response so
/// clients and chaos harnesses can tell it from transient failures —
/// retrying a deadline-exceeded request is pointless by construction.
pub const CODE_DEADLINE_EXCEEDED: &str = "deadline_exceeded";

/// Builds the standard `error` response.
pub fn error_response(message: impl Into<String>) -> Json {
    Json::object([
        ("type", Json::from("error")),
        ("message", Json::from(message.into())),
    ])
}

/// Builds an `error` response carrying a machine-readable `code` beside
/// the human-readable message.
pub fn coded_error_response(code: &str, message: impl Into<String>) -> Json {
    Json::object([
        ("type", Json::from("error")),
        ("code", Json::from(code)),
        ("message", Json::from(message.into())),
    ])
}

/// Builds the structured `DeadlineExceeded` rejection.
pub fn deadline_response(message: impl Into<String>) -> Json {
    coded_error_response(CODE_DEADLINE_EXCEEDED, message)
}

/// Rewrites the `deadline_ms` member of a compile-request payload to the
/// remaining budget, preserving every other byte of meaning (member
/// order included). Returns `None` when the payload is not a JSON object
/// — the caller forwards the original bytes unchanged.
///
/// This is how the router propagates deadlines: the client sends a
/// *total* budget, each hop subtracts its own elapsed time, and the
/// shard sees only what is left.
pub fn rewrite_deadline_ms(payload: &[u8], remaining_ms: u64) -> Option<Vec<u8>> {
    let text = std::str::from_utf8(payload).ok()?;
    let mut value = qcs_json::parse(text).ok()?;
    if !matches!(value, Json::Object(_)) {
        return None;
    }
    value.set("deadline_ms", remaining_ms);
    Some(value.to_compact_string().into_bytes())
}

/// Builds a load-shedding `error` response carrying a `retry_after_ms`
/// back-off hint clients should honor before reconnecting.
pub fn shed_response(message: impl Into<String>, retry_after_ms: u64) -> Json {
    Json::object([
        ("type", Json::from("error")),
        ("message", Json::from(message.into())),
        ("retry_after_ms", Json::from(retry_after_ms)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        buf.truncate(buf.len() - 2);
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn parses_compile_request_with_defaults() {
        let req = Request::parse(br#"{"type":"compile","workload":"ghz:4"}"#).unwrap();
        let Request::Compile(c) = req else {
            panic!("expected compile")
        };
        assert_eq!(c.source, Source::Workload("ghz:4".to_string()));
        assert_eq!(c.device, "surface17");
        assert_eq!(c.config, MapperConfig::default());
        assert_eq!(c.deadline_ms, None);
        assert_eq!(c.request_id, None);
        assert!(!c.race);
    }

    #[test]
    fn parses_auto_and_race_compile_requests() {
        let req =
            Request::parse(br#"{"type":"compile","workload":"qft:6","placer":"auto","race":true}"#)
                .unwrap();
        let Request::Compile(c) = req else {
            panic!("expected compile")
        };
        assert_eq!(c.config, MapperConfig::new("auto", "lookahead"));
        assert!(qcs_core::portfolio::is_auto(&c.config));
        assert!(c.race);
    }

    #[test]
    fn parses_full_compile_request() {
        let req = Request::parse(
            br#"{"type":"compile","qasm":"qreg q[1];","device":"line:5",
                 "placer":"trivial","router":"trivial","deadline_ms":250,
                 "request_id":"cli-42"}"#,
        )
        .unwrap();
        let Request::Compile(c) = req else {
            panic!("expected compile")
        };
        assert_eq!(c.source, Source::Qasm("qreg q[1];".to_string()));
        assert_eq!(c.device, "line:5");
        assert_eq!(c.config, MapperConfig::new("trivial", "trivial"));
        assert_eq!(c.deadline_ms, Some(250));
        assert_eq!(c.request_id, Some("cli-42".to_string()));
    }

    #[test]
    fn parses_control_requests() {
        assert_eq!(
            Request::parse(br#"{"type":"stats"}"#).unwrap(),
            Request::Stats
        );
        assert_eq!(
            Request::parse(br#"{"type":"ping"}"#).unwrap(),
            Request::Ping
        );
        assert_eq!(
            Request::parse(br#"{"type":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            &b"not json"[..],
            br#"{"no":"type"}"#,
            br#"{"type":"warp"}"#,
            br#"{"type":"compile"}"#,
            br#"{"type":"compile","qasm":"x","workload":"y"}"#,
            br#"{"type":"compile","qasm":7}"#,
            br#"{"type":"compile","workload":"ghz:4","deadline_ms":-1}"#,
            br#"{"type":"compile","workload":"ghz:4","request_id":7}"#,
            br#"{"type":"compile","workload":"ghz:4","race":"yes"}"#,
        ] {
            assert!(
                Request::parse(bad).is_err(),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn suite_request_defaults() {
        let Request::CompileSuite(s) = Request::parse(br#"{"type":"compile_suite"}"#).unwrap()
        else {
            panic!("expected suite")
        };
        assert_eq!(s.count, 20);
        assert_eq!(s.seed, 7);
        assert_eq!(s.config, MapperConfig::default());
    }

    #[test]
    fn error_response_shape() {
        let e = error_response("boom");
        assert_eq!(e.get("type").and_then(Json::as_str), Some("error"));
        assert_eq!(e.get("message").and_then(Json::as_str), Some("boom"));
    }

    #[test]
    fn shed_response_carries_retry_hint() {
        let e = shed_response("busy", 250);
        assert_eq!(e.get("type").and_then(Json::as_str), Some("error"));
        assert_eq!(e.get("retry_after_ms").and_then(Json::as_usize), Some(250));
    }

    #[test]
    fn deadline_response_is_a_coded_error() {
        let e = deadline_response("budget spent");
        assert_eq!(e.get("type").and_then(Json::as_str), Some("error"));
        assert_eq!(
            e.get("code").and_then(Json::as_str),
            Some(CODE_DEADLINE_EXCEEDED)
        );
        assert_eq!(
            e.get("message").and_then(Json::as_str),
            Some("budget spent")
        );
        assert_eq!(e.get("retry_after_ms"), None, "deadline errors are final");
    }

    #[test]
    fn deadline_rewrite_updates_budget_in_place() {
        let payload =
            br#"{"type":"compile","workload":"ghz:4","deadline_ms":500,"request_id":"r1"}"#;
        let rewritten = rewrite_deadline_ms(payload, 123).unwrap();
        assert_eq!(
            rewritten,
            br#"{"type":"compile","workload":"ghz:4","deadline_ms":123,"request_id":"r1"}"#
                .to_vec()
        );
        // The rewritten frame still parses to the same request modulo budget.
        let Request::Compile(c) = Request::parse(&rewritten).unwrap() else {
            panic!("expected compile")
        };
        assert_eq!(c.deadline_ms, Some(123));
        assert_eq!(c.request_id, Some("r1".to_string()));
    }

    #[test]
    fn deadline_rewrite_appends_when_absent_and_rejects_non_objects() {
        let rewritten = rewrite_deadline_ms(br#"{"type":"ping"}"#, 9).unwrap();
        let v = qcs_json::parse(std::str::from_utf8(&rewritten).unwrap()).unwrap();
        assert_eq!(v.get("deadline_ms").and_then(Json::as_usize), Some(9));
        assert_eq!(rewrite_deadline_ms(b"[1,2,3]", 9), None);
        assert_eq!(rewrite_deadline_ms(b"not json", 9), None);
        assert_eq!(rewrite_deadline_ms(&[0xFF, 0xFE], 9), None);
    }
}
