//! The sharding front-end: consistent-hash request routing across a
//! fleet of `qcs-serve` daemon shards.
//!
//! One compilation cache per daemon stops scaling the moment one host's
//! worker pool saturates. The router splits the keyspace instead of the
//! cache: every `compile` / `compile_suite` request is hashed by its
//! *job identity* (source + device + mapper config — the same fields
//! that feed the shard's own cache key) and forwarded to the shard that
//! owns that point on a consistent-hash ring. Identical requests always
//! land on the same shard, so each shard's LRU cache stays hot for its
//! slice of the keyspace and the fleet-wide hit rate matches a single
//! giant cache without any cross-shard coordination.
//!
//! **The ring.** Each shard contributes [`RouterConfig::replicas`]
//! virtual nodes — FNV-1a points on a sorted `u64` circle. A request key
//! binary-searches to its successor point and walks clockwise; the walk
//! order enumerates every shard exactly once (first visit wins), so the
//! first *healthy* shard on the walk is the owner and the rest form the
//! deterministic fallback order. Virtual nodes keep the load split even
//! (±a few percent at 64 replicas) and minimize keyspace movement when
//! a shard dies: only the dead shard's slice reroutes.
//!
//! **Failure handling.** Forwarding is retried down the walk order: a
//! shard that refuses connections or breaks mid-exchange is marked
//! unhealthy, its pooled connection dropped, and the request replayed to
//! the next candidate. Replaying is safe because shard requests are
//! idempotent — compilation is a pure function plus a cache. A
//! background probe thread pings every shard each
//! [`RouterConfig::health_interval`] so the ring heals (both directions:
//! dead shards stop receiving traffic within one interval, revived
//! shards rejoin). `kill -9` on a shard under load therefore costs zero
//! accepted requests — `ci_shard_smoke.sh` enforces exactly that.
//!
//! **What the router answers itself.** `ping` (liveness), `stats` (its
//! own counters plus per-shard health — shard cache stats come from the
//! shards directly), and `shutdown` (stops the router; shards are
//! independent processes with their own lifecycle).

use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use qcs_circuit::hash::Fnv64;
use qcs_json::Json;

use crate::frame::FrameDecoder;
use crate::protocol::{error_response, read_frame, write_frame, write_json, Request, Source};

/// Tuning knobs for [`Router::start`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Shard daemon addresses (`host:port`), in declaration order. Ring
    /// positions depend only on the index, so a config listing the same
    /// shards in the same order always produces the same routing.
    pub shards: Vec<String>,
    /// Virtual nodes per shard on the consistent-hash ring.
    pub replicas: usize,
    /// How often the health prober pings every shard.
    pub health_interval: Duration,
    /// Budget for opening a connection to a shard.
    pub connect_timeout: Duration,
    /// Budget for one forwarded request's response (compiles included).
    pub io_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            replicas: 64,
            health_interval: Duration::from_millis(250),
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(120),
        }
    }
}

/// How often client-connection reads re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A consistent-hash ring over shard indices.
///
/// Pure data: health filtering happens at walk time, so the ring itself
/// never changes after construction (no rehashing, no locks).
struct HashRing {
    /// `(point, shard_idx)` sorted by point.
    points: Vec<(u64, usize)>,
    shard_count: usize,
}

impl HashRing {
    fn new(shard_count: usize, replicas: usize) -> HashRing {
        let mut points: Vec<(u64, usize)> = (0..shard_count)
            .flat_map(|shard| {
                (0..replicas.max(1)).map(move |replica| {
                    let mut h = Fnv64::new();
                    h.write_str("qcs-router-ring")
                        .write_usize(shard)
                        .write_usize(replica);
                    (h.finish(), shard)
                })
            })
            .collect();
        points.sort_unstable();
        HashRing {
            points,
            shard_count,
        }
    }

    /// Shard indices in ring-walk order from `key`'s successor point:
    /// each shard appears exactly once, the owner first.
    fn walk(&self, key: u64) -> Vec<usize> {
        let start = self
            .points
            .partition_point(|&(point, _)| point < key)
            .checked_rem(self.points.len())
            .unwrap_or(0);
        let mut seen = vec![false; self.shard_count];
        let mut order = Vec::with_capacity(self.shard_count);
        for offset in 0..self.points.len() {
            let (_, shard) = self.points[(start + offset) % self.points.len()];
            if !seen[shard] {
                seen[shard] = true;
                order.push(shard);
                if order.len() == self.shard_count {
                    break;
                }
            }
        }
        order
    }
}

/// The routing key: a stable hash of the fields that determine which
/// shard's cache a request belongs to. Mirrors the shard-side cache key
/// inputs (source, device, mapper config) without resolving the circuit,
/// so the router never parses QASM or generates workloads.
fn route_key(request: &Request) -> u64 {
    let mut h = Fnv64::new();
    match request {
        Request::Compile(c) => {
            h.write_str("compile");
            match &c.source {
                Source::Qasm(text) => h.write_str("qasm").write_str(text),
                Source::Workload(spec) => h.write_str("workload").write_str(spec),
            };
            h.write_str(&c.device)
                .write_str(&c.config.placer)
                .write_str(&c.config.router);
        }
        Request::CompileSuite(s) => {
            h.write_str("suite")
                .write_usize(s.count)
                .write_usize(s.max_qubits)
                .write_usize(s.max_gates)
                .write_u64(s.seed)
                .write_str(&s.device)
                .write_str(&s.config.placer)
                .write_str(&s.config.router);
        }
        Request::Stats | Request::Ping | Request::Shutdown => {}
    }
    h.finish()
}

struct ShardState {
    addr: String,
    resolved: Mutex<Option<SocketAddr>>,
    healthy: AtomicBool,
    forwarded: AtomicU64,
}

struct RouterShared {
    config: RouterConfig,
    local_addr: SocketAddr,
    shutdown: AtomicBool,
    ring: HashRing,
    shards: Vec<ShardState>,
    requests: AtomicU64,
    reroutes: AtomicU64,
    forward_errors: AtomicU64,
}

impl RouterShared {
    fn initiate_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept thread may be parked in accept(): poke it awake.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Resolves (and caches) a shard's socket address.
    fn shard_addr(&self, idx: usize) -> io::Result<SocketAddr> {
        let shard = &self.shards[idx];
        let mut cached = shard
            .resolved
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(addr) = *cached {
            return Ok(addr);
        }
        let addr = shard.addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "shard address resolved to nothing")
        })?;
        *cached = Some(addr);
        Ok(addr)
    }
}

/// The running router: address + thread handles.
pub struct RouterHandle {
    shared: Arc<RouterShared>,
    accept_thread: Option<JoinHandle<()>>,
    health_thread: Option<JoinHandle<()>>,
    client_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl RouterHandle {
    /// The router's bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Requests shutdown and joins every router thread.
    pub fn shutdown(mut self) -> usize {
        self.shared.initiate_shutdown();
        self.join_all()
    }

    /// Blocks until the router shuts down (via a protocol `shutdown`
    /// request) and joins every router thread.
    pub fn wait(mut self) -> usize {
        self.join_all()
    }

    fn join_all(&mut self) -> usize {
        let mut joined = 0;
        let threads = self
            .accept_thread
            .take()
            .into_iter()
            .chain(self.health_thread.take());
        for t in threads {
            if t.join().is_ok() {
                joined += 1;
            }
        }
        // Client threads observe the flag within one poll interval of
        // finishing their in-flight request.
        let clients = std::mem::take(
            &mut *self
                .client_threads
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        for t in clients {
            if t.join().is_ok() {
                joined += 1;
            }
        }
        joined
    }
}

/// Namespace for [`Router::start`].
pub struct Router;

impl Router {
    /// Binds the listener, probes the shards once (so the ring starts
    /// with real health), and spawns the accept + health threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; rejects an empty shard list.
    pub fn start(config: RouterConfig) -> io::Result<RouterHandle> {
        if config.shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one --shard",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let ring = HashRing::new(config.shards.len(), config.replicas);
        let shards = config
            .shards
            .iter()
            .map(|addr| ShardState {
                addr: addr.clone(),
                resolved: Mutex::new(None),
                // Optimistic until the first probe: a booting fleet
                // should route, not reject.
                healthy: AtomicBool::new(true),
                forwarded: AtomicU64::new(0),
            })
            .collect();
        let shared = Arc::new(RouterShared {
            config,
            local_addr,
            shutdown: AtomicBool::new(false),
            ring,
            shards,
            requests: AtomicU64::new(0),
            reroutes: AtomicU64::new(0),
            forward_errors: AtomicU64::new(0),
        });

        probe_all(&shared);

        let health_shared = Arc::clone(&shared);
        let health_thread = std::thread::Builder::new()
            .name("qcs-router-health".to_string())
            .spawn(move || health_loop(&health_shared))
            .expect("spawning the health thread");

        let client_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_clients = Arc::clone(&client_threads);
        let accept_thread = std::thread::Builder::new()
            .name("qcs-router-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared, &accept_clients))
            .expect("spawning the accept thread");

        Ok(RouterHandle {
            shared,
            accept_thread: Some(accept_thread),
            health_thread: Some(health_thread),
            client_threads,
        })
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<RouterShared>,
    client_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("qcs-router-client".to_string())
            .spawn(move || client_loop(stream, &shared))
            .expect("spawning a client thread");
        client_threads
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(handle);
    }
}

fn health_loop(shared: &RouterShared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        probe_all(shared);
        // Sleep in poll-sized slices so shutdown stays responsive.
        let mut remaining = shared.config.health_interval;
        while !remaining.is_zero() && !shared.shutdown.load(Ordering::SeqCst) {
            let slice = remaining.min(POLL_INTERVAL);
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}

/// Pings every shard once, updating health flags in both directions.
fn probe_all(shared: &RouterShared) {
    for idx in 0..shared.shards.len() {
        let healthy = probe_shard(shared, idx);
        shared.shards[idx].healthy.store(healthy, Ordering::SeqCst);
    }
}

fn probe_shard(shared: &RouterShared, idx: usize) -> bool {
    let Ok(addr) = shared.shard_addr(idx) else {
        return false;
    };
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, shared.config.connect_timeout) else {
        return false;
    };
    if stream
        .set_read_timeout(Some(shared.config.connect_timeout))
        .is_err()
        || stream
            .set_write_timeout(Some(shared.config.connect_timeout))
            .is_err()
    {
        return false;
    }
    if write_json(&mut stream, &Json::object([("type", "ping")])).is_err() {
        return false;
    }
    match read_frame(&mut stream) {
        Ok(Some(payload)) => {
            std::str::from_utf8(&payload)
                .ok()
                .and_then(|text| qcs_json::parse(text).ok())
                .and_then(|v| v.get("type").and_then(Json::as_str).map(str::to_string))
                .as_deref()
                == Some("pong")
        }
        _ => false,
    }
}

/// Reads one complete frame from a client, polling so shutdown stays
/// observable. Frames already decoded from earlier reads drain first.
/// `None` closes the connection (EOF, shutdown, I/O error, or a framing
/// error — after queueing an error response for the latter).
fn next_client_frame(
    stream: &mut TcpStream,
    decoder: &mut FrameDecoder,
    ready: &mut VecDeque<Vec<u8>>,
    shared: &RouterShared,
) -> Option<Vec<u8>> {
    loop {
        if let Some(frame) = ready.pop_front() {
            return Some(frame);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        let mut buf = [0u8; 16 * 1024];
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => {
                let mut frames = Vec::new();
                if let Err(e) = decoder.feed(&buf[..n], &mut frames) {
                    let _ = write_json(stream, &error_response(e.0));
                    return None;
                }
                ready.extend(frames);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}

fn client_loop(mut stream: TcpStream, shared: &RouterShared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));

    let mut decoder = FrameDecoder::new();
    let mut ready = VecDeque::new();
    // One pooled connection per shard, owned by this client thread:
    // pipelined requests from one client reuse warm shard connections
    // without any cross-thread locking.
    let mut pool: Vec<Option<TcpStream>> = (0..shared.shards.len()).map(|_| None).collect();

    while let Some(payload) = next_client_frame(&mut stream, &mut decoder, &mut ready, shared) {
        shared.requests.fetch_add(1, Ordering::SeqCst);
        let keep_going = match Request::parse(&payload) {
            Err(e) => write_json(&mut stream, &error_response(e.to_string())).is_ok(),
            Ok(Request::Ping) => write_json(&mut stream, &Json::object([("type", "pong")])).is_ok(),
            Ok(Request::Stats) => write_json(&mut stream, &router_stats_json(shared)).is_ok(),
            Ok(Request::Shutdown) => {
                let _ = write_json(&mut stream, &Json::object([("type", "ok")]));
                shared.initiate_shutdown();
                false
            }
            Ok(request @ (Request::Compile(_) | Request::CompileSuite(_))) => {
                let response = forward(shared, &payload, route_key(&request), &mut pool);
                write_frame(&mut stream, &response).is_ok()
            }
        };
        if !keep_going || shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Forwards a request payload to the shard owning `key`, replaying down
/// the ring-walk order on failure. Returns the shard's response payload,
/// or an `error` response when every shard failed.
fn forward(
    shared: &RouterShared,
    payload: &[u8],
    key: u64,
    pool: &mut [Option<TcpStream>],
) -> Vec<u8> {
    let walk = shared.ring.walk(key);
    // Healthy shards first (in ring order), then the rest: when the
    // prober has everything marked down (a fleet-wide blip, or probes
    // racing a restart) the router still tries rather than failing fast.
    let attempts: Vec<usize> = walk
        .iter()
        .copied()
        .filter(|&i| shared.shards[i].healthy.load(Ordering::SeqCst))
        .chain(
            walk.iter()
                .copied()
                .filter(|&i| !shared.shards[i].healthy.load(Ordering::SeqCst)),
        )
        .collect();
    for (attempt, &idx) in attempts.iter().enumerate() {
        // Two tries per shard: a pooled connection can be stale (the
        // shard restarted since the last request) without the shard
        // being down — reconnect once before writing the shard off.
        for _ in 0..2 {
            match forward_once(shared, idx, payload, &mut pool[idx]) {
                Ok(response) => {
                    shared.shards[idx].forwarded.fetch_add(1, Ordering::SeqCst);
                    if attempt > 0 {
                        shared.reroutes.fetch_add(1, Ordering::SeqCst);
                    }
                    return response;
                }
                Err(_) => {
                    pool[idx] = None;
                }
            }
        }
        shared.shards[idx].healthy.store(false, Ordering::SeqCst);
    }
    shared.forward_errors.fetch_add(1, Ordering::SeqCst);
    error_response("no shard available for request")
        .to_compact_string()
        .into_bytes()
}

/// One forwarding attempt over this client's pooled connection to shard
/// `idx`, opening it if needed.
fn forward_once(
    shared: &RouterShared,
    idx: usize,
    payload: &[u8],
    slot: &mut Option<TcpStream>,
) -> io::Result<Vec<u8>> {
    if slot.is_none() {
        let addr = shared.shard_addr(idx)?;
        let stream = TcpStream::connect_timeout(&addr, shared.config.connect_timeout)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(shared.config.io_timeout))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        *slot = Some(stream);
    }
    let stream = slot.as_mut().expect("just filled");
    write_frame(stream, payload)?;
    match read_frame(stream)? {
        Some(response) => Ok(response),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "shard closed before responding",
        )),
    }
}

fn router_stats_json(shared: &RouterShared) -> Json {
    Json::object([
        ("type", Json::from("stats")),
        ("role", Json::from("router")),
        (
            "requests",
            Json::from(shared.requests.load(Ordering::SeqCst)),
        ),
        (
            "reroutes",
            Json::from(shared.reroutes.load(Ordering::SeqCst)),
        ),
        (
            "forward_errors",
            Json::from(shared.forward_errors.load(Ordering::SeqCst)),
        ),
        (
            "shards",
            Json::Array(
                shared
                    .shards
                    .iter()
                    .map(|s| {
                        Json::object([
                            ("addr", Json::from(s.addr.clone())),
                            ("healthy", Json::from(s.healthy.load(Ordering::SeqCst))),
                            ("forwarded", Json::from(s.forwarded.load(Ordering::SeqCst))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CompileRequest;
    use qcs_core::config::MapperConfig;

    #[test]
    fn ring_walk_visits_every_shard_once_owner_first() {
        let ring = HashRing::new(5, 64);
        for key in [0u64, 1, u64::MAX, 0xdead_beef, 42] {
            let walk = ring.walk(key);
            assert_eq!(walk.len(), 5);
            let mut sorted = walk.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn ring_is_deterministic_across_constructions() {
        let a = HashRing::new(3, 64);
        let b = HashRing::new(3, 64);
        for key in 0..200u64 {
            assert_eq!(
                a.walk(key.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                b.walk(key.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            );
        }
    }

    #[test]
    fn ring_spreads_keys_reasonably_evenly() {
        let ring = HashRing::new(4, 64);
        let mut counts = [0usize; 4];
        for key in 0..4000u64 {
            let mut h = Fnv64::new();
            h.write_u64(key);
            counts[ring.walk(h.finish())[0]] += 1;
        }
        for &c in &counts {
            // Perfectly even would be 1000; virtual nodes keep every
            // shard within a loose factor of that.
            assert!(c > 400 && c < 1800, "skewed split: {counts:?}");
        }
    }

    #[test]
    fn removing_a_shard_only_moves_its_own_keys() {
        // Consistent hashing's defining property: keys whose owner
        // survives keep their owner when another shard dies (the walk
        // just skips the dead one).
        let ring = HashRing::new(4, 64);
        for key in 0..500u64 {
            let mut h = Fnv64::new();
            h.write_u64(key);
            let walk = ring.walk(h.finish());
            let dead = 2usize;
            let rerouted_owner = walk.iter().copied().find(|&s| s != dead).unwrap();
            if walk[0] != dead {
                assert_eq!(walk[0], rerouted_owner, "surviving owner must not move");
            }
        }
    }

    #[test]
    fn route_key_depends_on_job_identity_only() {
        let base = CompileRequest {
            source: Source::Workload("ghz:8".to_string()),
            device: "surface17".to_string(),
            config: MapperConfig::default(),
            deadline_ms: None,
            request_id: None,
        };
        let k1 = route_key(&Request::Compile(base.clone()));
        // Request id and deadline are delivery metadata, not identity:
        // a retry with a fresh deadline must land on the same shard.
        let mut retry = base.clone();
        retry.request_id = Some("retry-1".to_string());
        retry.deadline_ms = Some(5000);
        assert_eq!(k1, route_key(&Request::Compile(retry)));
        let mut other = base;
        other.device = "line:5".to_string();
        assert_ne!(k1, route_key(&Request::Compile(other)));
    }
}
