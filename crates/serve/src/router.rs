//! The sharding front-end: consistent-hash request routing across a
//! fleet of `qcs-serve` daemon shards.
//!
//! One compilation cache per daemon stops scaling the moment one host's
//! worker pool saturates. The router splits the keyspace instead of the
//! cache: every `compile` / `compile_suite` request is hashed by its
//! *job identity* (source + device + mapper config — the same fields
//! that feed the shard's own cache key) and forwarded to the shard that
//! owns that point on a consistent-hash ring. Identical requests always
//! land on the same shard, so each shard's LRU cache stays hot for its
//! slice of the keyspace and the fleet-wide hit rate matches a single
//! giant cache without any cross-shard coordination.
//!
//! **The ring.** Each shard contributes [`RouterConfig::replicas`]
//! virtual nodes — FNV-1a points on a sorted `u64` circle. A request key
//! binary-searches to its successor point and walks clockwise; the walk
//! order enumerates every shard exactly once (first visit wins), so the
//! first *healthy* shard on the walk is the owner and the rest form the
//! deterministic fallback order. Virtual nodes keep the load split even
//! (±a few percent at 64 replicas) and minimize keyspace movement when
//! a shard dies: only the dead shard's slice reroutes.
//!
//! **Failure handling.** Forwarding is retried down the walk order: a
//! shard that refuses connections or breaks mid-exchange is marked
//! unhealthy, its pooled connection dropped, and the request replayed to
//! the next candidate. Replaying is safe because shard requests are
//! idempotent — compilation is a pure function plus a cache. A
//! background probe thread pings every shard around each
//! [`RouterConfig::health_interval`] (with jitter, and exponential
//! backoff while a shard stays down, so a fleet of routers never
//! thundering-herds a recovering shard) and readmits an unhealthy shard
//! only after **two consecutive** probe successes. `kill -9` on a shard
//! under load therefore costs zero accepted requests —
//! `ci_shard_smoke.sh` enforces exactly that.
//!
//! **Circuit breakers.** Health probes are a 250ms-granularity liveness
//! signal; request outcomes are faster and richer. Each shard also has a
//! closed→open→half-open breaker driven by consecutive forward failures:
//! an open breaker takes the shard out of the primary rotation until its
//! cooldown expires, then admits exactly one half-open probe request
//! whose outcome closes or re-opens it (with doubled cooldown). The
//! fallback pass ignores breakers — in a total outage the router still
//! tries everything rather than failing fast on principle.
//!
//! **Hedged retries.** A request whose key has been served before is
//! *cache-hit class*: the owning shard will answer from its LRU in
//! microseconds unless something is wrong with it. For those requests
//! the router arms a hedge: if the owner has not answered within a
//! p99-derived delay, the same request is fired at the next healthy
//! shard and the first response wins (the loser's connection is dropped
//! — a response may not be reused out of order). Hedging is restricted
//! to hit-class requests because duplicating a *cold* compile would
//! double real work for latency that is dominated by the compile itself.
//!
//! **Admission control.** Each shard has a bounded in-flight window at
//! the router ([`RouterConfig::max_in_flight`]): a shard that stops
//! answering cannot accumulate an unbounded pile of router-side
//! connections, it simply drops out of the rotation until responses (or
//! timeouts) drain its window. When *every* shard's window is full the
//! client gets a `retry_after_ms` shed response.
//!
//! **Deadline propagation.** A `deadline_ms` on a compile request is the
//! request's *total* end-to-end budget. The router subtracts its own
//! elapsed time and rewrites the member to the remaining budget before
//! each forward attempt, so the shard sees only what is actually left;
//! a budget that is exhausted (or provably insufficient against the
//! observed forward p95) is refused up front with a structured
//! `deadline_exceeded` error instead of burning a forward on it.
//!
//! **What the router answers itself.** `ping` (liveness), `stats` (its
//! own counters plus per-shard health — shard cache stats come from the
//! shards directly), and `shutdown` (stops the router; shards are
//! independent processes with their own lifecycle).

use std::collections::{HashSet, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qcs_circuit::hash::Fnv64;
use qcs_json::Json;
use qcs_rng::{RngCore, SplitMix64};
use qcs_sys::{poll_fds, PollFd, POLLIN};

use crate::frame::FrameDecoder;
use crate::histogram::LatencyHistogram;
use crate::protocol::{
    deadline_response, error_response, read_frame, rewrite_deadline_ms, shed_response, write_frame,
    write_json, Request, Source,
};

/// Tuning knobs for [`Router::start`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Shard daemon addresses (`host:port`), in declaration order. Ring
    /// positions depend only on the index, so a config listing the same
    /// shards in the same order always produces the same routing.
    pub shards: Vec<String>,
    /// Virtual nodes per shard on the consistent-hash ring.
    pub replicas: usize,
    /// Baseline probe cadence; actual probes add deterministic jitter
    /// and back off exponentially while a shard stays down.
    pub health_interval: Duration,
    /// Cap on the unhealthy-probe backoff.
    pub probe_backoff_max: Duration,
    /// Budget for opening a connection to a shard.
    pub connect_timeout: Duration,
    /// Budget for one forwarded request's response (compiles included).
    pub io_timeout: Duration,
    /// Consecutive forward failures that trip a shard's breaker open.
    pub breaker_threshold: u32,
    /// First open-state cooldown; doubles on each failed half-open
    /// probe, up to [`RouterConfig::breaker_cooldown_max`].
    pub breaker_cooldown: Duration,
    /// Cap on the breaker cooldown growth.
    pub breaker_cooldown_max: Duration,
    /// Fixed hedge delay for cache-hit-class requests. `None` derives it
    /// from the observed hit-class forward p99 (clamped to
    /// [1ms, 100ms]); `Some(d)` pins it (benches pin it high so hedges
    /// never fire nondeterministically).
    pub hedge_after: Option<Duration>,
    /// Hit-class latency observations required before a derived hedge
    /// delay is trusted.
    pub hedge_min_observations: u64,
    /// Per-shard bound on requests the router allows in flight.
    pub max_in_flight: usize,
    /// Seed for deterministic probe jitter.
    pub jitter_seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            shards: Vec::new(),
            replicas: 64,
            health_interval: Duration::from_millis(250),
            probe_backoff_max: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(120),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(250),
            breaker_cooldown_max: Duration::from_secs(5),
            hedge_after: None,
            hedge_min_observations: 32,
            max_in_flight: 32,
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

/// How often client-connection reads re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// A consistent-hash ring over shard indices.
///
/// Pure data: health filtering happens at walk time, so the ring itself
/// never changes after construction (no rehashing, no locks).
struct HashRing {
    /// `(point, shard_idx)` sorted by point.
    points: Vec<(u64, usize)>,
    shard_count: usize,
}

impl HashRing {
    fn new(shard_count: usize, replicas: usize) -> HashRing {
        let mut points: Vec<(u64, usize)> = (0..shard_count)
            .flat_map(|shard| {
                (0..replicas.max(1)).map(move |replica| {
                    let mut h = Fnv64::new();
                    h.write_str("qcs-router-ring")
                        .write_usize(shard)
                        .write_usize(replica);
                    (h.finish(), shard)
                })
            })
            .collect();
        points.sort_unstable();
        HashRing {
            points,
            shard_count,
        }
    }

    /// Shard indices in ring-walk order from `key`'s successor point:
    /// each shard appears exactly once, the owner first.
    fn walk(&self, key: u64) -> Vec<usize> {
        let start = self
            .points
            .partition_point(|&(point, _)| point < key)
            .checked_rem(self.points.len())
            .unwrap_or(0);
        let mut seen = vec![false; self.shard_count];
        let mut order = Vec::with_capacity(self.shard_count);
        for offset in 0..self.points.len() {
            let (_, shard) = self.points[(start + offset) % self.points.len()];
            if !seen[shard] {
                seen[shard] = true;
                order.push(shard);
                if order.len() == self.shard_count {
                    break;
                }
            }
        }
        order
    }
}

/// Bound on the canonical-route-key memo: enough to cover any realistic
/// working set of distinct request texts, small enough to never matter
/// for memory (two u64 per entry).
const CANON_KEY_MEMO_CAP: usize = 16_384;

/// A bounded text-hash → canonical-route-key memo. Canonicalizing a
/// circuit costs real CPU (parse + relabel + normal-order); memoizing on
/// the cheap text hash means each distinct request body pays it once per
/// router. Oldest entries age out first.
struct CanonKeyMemo {
    map: std::collections::HashMap<u64, u64>,
    order: VecDeque<u64>,
}

impl CanonKeyMemo {
    fn new() -> CanonKeyMemo {
        CanonKeyMemo {
            map: std::collections::HashMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, text_key: u64) -> Option<u64> {
        self.map.get(&text_key).copied()
    }

    fn note(&mut self, text_key: u64, canon_key: u64) {
        if self.map.insert(text_key, canon_key).is_some() {
            return;
        }
        self.order.push_back(text_key);
        if self.order.len() > CANON_KEY_MEMO_CAP {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
    }
}

/// The *semantic* routing key for single compiles: the job's canonical
/// digest (see [`crate::compile::Job::canonicalize`]), so structurally
/// equivalent requests — renamed, relabeled, reordered — land on the
/// same shard and hit that shard's semantic cache instead of warming a
/// cold twin elsewhere. Falls back to the plain text-hash key when the
/// request does not resolve (the shard will reject it with a proper
/// error anyway). Other request kinds keep the text-hash key.
fn semantic_route_key(request: &Request, shared: &RouterShared) -> u64 {
    let text_key = route_key(request);
    let Request::Compile(_) = request else {
        return text_key;
    };
    if let Some(known) = lock_memo(shared).get(text_key) {
        return known;
    }
    let canon_key = canonical_route_key(request).unwrap_or(text_key);
    lock_memo(shared).note(text_key, canon_key);
    canon_key
}

/// The canonical routing key of a single compile, or `None` when the
/// request does not resolve to a job.
fn canonical_route_key(request: &Request) -> Option<u64> {
    let Request::Compile(c) = request else {
        return None;
    };
    let job = crate::compile::Job::resolve(c).ok()?;
    Some(
        job.canonicalize(&qcs_circuit::canon::CanonConfig::default())
            .digest,
    )
}

fn lock_memo(shared: &RouterShared) -> std::sync::MutexGuard<'_, CanonKeyMemo> {
    shared
        .canon_keys
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The routing key: a stable hash of the fields that determine which
/// shard's cache a request belongs to. Mirrors the shard-side cache key
/// inputs (source, device, mapper config) without resolving the circuit,
/// so the router never parses QASM or generates workloads.
fn route_key(request: &Request) -> u64 {
    let mut h = Fnv64::new();
    match request {
        Request::Compile(c) => {
            h.write_str("compile");
            match &c.source {
                Source::Qasm(text) => h.write_str("qasm").write_str(text),
                Source::Workload(spec) => h.write_str("workload").write_str(spec),
            };
            h.write_str(&c.device)
                .write_str(&c.config.placer)
                .write_str(&c.config.router);
            if c.race {
                // Forced races are a distinct cache identity shard-side
                // (see `Job::digest`), so they route as one too.
                h.write_str("race");
            }
        }
        Request::CompileSuite(s) => {
            h.write_str("suite")
                .write_usize(s.count)
                .write_usize(s.max_qubits)
                .write_usize(s.max_gates)
                .write_u64(s.seed)
                .write_str(&s.device)
                .write_str(&s.config.placer)
                .write_str(&s.config.router);
        }
        Request::Stats | Request::Ping | Request::Shutdown => {}
    }
    h.finish()
}

/// Per-shard circuit-breaker phases. `Closed` counts consecutive
/// failures; `Open` refuses primary-pass traffic until its cooldown
/// expires; `HalfOpen` admits exactly one probe request whose outcome
/// decides between closing and re-opening with a doubled cooldown.
enum BreakerPhase {
    Closed { failures: u32 },
    Open { until: Instant, streak: u32 },
    HalfOpen { streak: u32, probing: bool },
}

/// What a breaker says about admitting one request right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerAdmit {
    /// Closed: forward normally.
    Yes,
    /// Half-open: forward, and this request *is* the probe.
    Probe,
    /// Open (or a half-open probe is already out): skip this shard on
    /// the primary pass.
    No,
}

struct Breaker {
    phase: Mutex<BreakerPhase>,
    opens: AtomicU64,
}

impl Breaker {
    fn new() -> Breaker {
        Breaker {
            phase: Mutex::new(BreakerPhase::Closed { failures: 0 }),
            opens: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerPhase> {
        self.phase.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn admit(&self, now: Instant) -> BreakerAdmit {
        let mut phase = self.lock();
        match &mut *phase {
            BreakerPhase::Closed { .. } => BreakerAdmit::Yes,
            BreakerPhase::Open { until, streak } => {
                if now >= *until {
                    let streak = *streak;
                    *phase = BreakerPhase::HalfOpen {
                        streak,
                        probing: true,
                    };
                    BreakerAdmit::Probe
                } else {
                    BreakerAdmit::No
                }
            }
            BreakerPhase::HalfOpen { probing, .. } => {
                if *probing {
                    BreakerAdmit::No
                } else {
                    *probing = true;
                    BreakerAdmit::Probe
                }
            }
        }
    }

    /// A forward to this shard completed. Success from any phase closes
    /// the breaker — even `Open`, which a fallback-pass attempt can
    /// reach: the shard evidently works, so waiting out the cooldown
    /// would only prolong the brown-out.
    fn on_success(&self) {
        *self.lock() = BreakerPhase::Closed { failures: 0 };
    }

    fn on_failure(&self, config: &RouterConfig, now: Instant) {
        let mut phase = self.lock();
        let reopen = |streak: u32| {
            let exp = streak.min(5);
            let cooldown = config
                .breaker_cooldown
                .saturating_mul(1u32 << exp)
                .min(config.breaker_cooldown_max);
            BreakerPhase::Open {
                until: now + cooldown,
                streak: streak.saturating_add(1),
            }
        };
        match &mut *phase {
            BreakerPhase::Closed { failures } => {
                *failures += 1;
                if *failures >= config.breaker_threshold.max(1) {
                    *phase = reopen(0);
                    self.opens.fetch_add(1, Ordering::SeqCst);
                }
            }
            BreakerPhase::HalfOpen { streak, .. } => {
                let streak = *streak;
                *phase = reopen(streak);
                self.opens.fetch_add(1, Ordering::SeqCst);
            }
            // Already open: fallback-pass failures carry no new signal.
            BreakerPhase::Open { .. } => {}
        }
    }

    fn phase_name(&self) -> &'static str {
        match &*self.lock() {
            BreakerPhase::Closed { .. } => "closed",
            BreakerPhase::Open { .. } => "open",
            BreakerPhase::HalfOpen { .. } => "half-open",
        }
    }
}

struct ShardState {
    addr: String,
    resolved: Mutex<Option<SocketAddr>>,
    healthy: AtomicBool,
    forwarded: AtomicU64,
    breaker: Breaker,
    /// Requests currently forwarded to this shard, fleet-wide across
    /// client threads; bounded by [`RouterConfig::max_in_flight`].
    in_flight: AtomicUsize,
}

/// RAII guard for one unit of a shard's in-flight window.
struct InFlightSlot<'a> {
    counter: &'a AtomicUsize,
}

impl Drop for InFlightSlot<'_> {
    fn drop(&mut self) {
        self.counter.fetch_sub(1, Ordering::SeqCst);
    }
}

fn try_acquire_slot(counter: &AtomicUsize, cap: usize) -> Option<InFlightSlot<'_>> {
    counter
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |current| {
            (current < cap).then_some(current + 1)
        })
        .ok()
        .map(|_| InFlightSlot { counter })
}

/// Bound on remembered routing keys for hit-class detection: covers any
/// realistic working set of distinct circuits while staying ~1 MiB.
const SEEN_KEYS_CAP: usize = 65_536;

/// A bounded memory of routing keys that have been served successfully —
/// the definition of "cache-hit class" for hedging. Oldest age out first.
struct SeenKeys {
    set: HashSet<u64>,
    order: VecDeque<u64>,
}

impl SeenKeys {
    fn new() -> SeenKeys {
        SeenKeys {
            set: HashSet::new(),
            order: VecDeque::new(),
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.set.contains(&key)
    }

    fn note(&mut self, key: u64) {
        if !self.set.insert(key) {
            return;
        }
        self.order.push_back(key);
        if self.order.len() > SEEN_KEYS_CAP {
            if let Some(oldest) = self.order.pop_front() {
                self.set.remove(&oldest);
            }
        }
    }
}

struct RouterShared {
    config: RouterConfig,
    local_addr: SocketAddr,
    shutdown: AtomicBool,
    ring: HashRing,
    shards: Vec<ShardState>,
    requests: AtomicU64,
    reroutes: AtomicU64,
    forward_errors: AtomicU64,
    /// Requests refused because their end-to-end budget ran out (or
    /// provably would) before forwarding.
    deadline_rejected: AtomicU64,
    /// Requests shed because every shard's in-flight window was full.
    admission_shed: AtomicU64,
    hedges_fired: AtomicU64,
    hedges_won: AtomicU64,
    seen_keys: Mutex<SeenKeys>,
    /// Forward latency of cache-hit-class requests — the distribution
    /// the hedge delay and the deadline p95 gate are derived from.
    hit_latency: Mutex<LatencyHistogram>,
    /// Text-hash → canonical routing key memo (see [`CanonKeyMemo`]).
    canon_keys: Mutex<CanonKeyMemo>,
}

impl RouterShared {
    fn initiate_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept thread may be parked in accept(): poke it awake.
        let _ = TcpStream::connect(self.local_addr);
    }

    /// Resolves (and caches) a shard's socket address.
    fn shard_addr(&self, idx: usize) -> io::Result<SocketAddr> {
        let shard = &self.shards[idx];
        let mut cached = shard
            .resolved
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(addr) = *cached {
            return Ok(addr);
        }
        let addr = shard.addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "shard address resolved to nothing")
        })?;
        *cached = Some(addr);
        Ok(addr)
    }
}

/// The running router: address + thread handles.
pub struct RouterHandle {
    shared: Arc<RouterShared>,
    accept_thread: Option<JoinHandle<()>>,
    health_thread: Option<JoinHandle<()>>,
    client_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl RouterHandle {
    /// The router's bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Requests shutdown and joins every router thread.
    pub fn shutdown(mut self) -> usize {
        self.shared.initiate_shutdown();
        self.join_all()
    }

    /// Blocks until the router shuts down (via a protocol `shutdown`
    /// request) and joins every router thread.
    pub fn wait(mut self) -> usize {
        self.join_all()
    }

    fn join_all(&mut self) -> usize {
        let mut joined = 0;
        let threads = self
            .accept_thread
            .take()
            .into_iter()
            .chain(self.health_thread.take());
        for t in threads {
            if t.join().is_ok() {
                joined += 1;
            }
        }
        // Client threads observe the flag within one poll interval of
        // finishing their in-flight request.
        let clients = std::mem::take(
            &mut *self
                .client_threads
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner()),
        );
        for t in clients {
            if t.join().is_ok() {
                joined += 1;
            }
        }
        joined
    }
}

/// Namespace for [`Router::start`].
pub struct Router;

impl Router {
    /// Binds the listener, probes the shards once (so the ring starts
    /// with real health), and spawns the accept + health threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors; rejects an empty shard list.
    pub fn start(config: RouterConfig) -> io::Result<RouterHandle> {
        if config.shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one --shard",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let ring = HashRing::new(config.shards.len(), config.replicas);
        let shards = config
            .shards
            .iter()
            .map(|addr| ShardState {
                addr: addr.clone(),
                resolved: Mutex::new(None),
                // Optimistic until the first probe: a booting fleet
                // should route, not reject.
                healthy: AtomicBool::new(true),
                forwarded: AtomicU64::new(0),
                breaker: Breaker::new(),
                in_flight: AtomicUsize::new(0),
            })
            .collect();
        let shared = Arc::new(RouterShared {
            config,
            local_addr,
            shutdown: AtomicBool::new(false),
            ring,
            shards,
            requests: AtomicU64::new(0),
            reroutes: AtomicU64::new(0),
            forward_errors: AtomicU64::new(0),
            deadline_rejected: AtomicU64::new(0),
            admission_shed: AtomicU64::new(0),
            hedges_fired: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            seen_keys: Mutex::new(SeenKeys::new()),
            hit_latency: Mutex::new(LatencyHistogram::default()),
            canon_keys: Mutex::new(CanonKeyMemo::new()),
        });

        probe_all(&shared);

        let health_shared = Arc::clone(&shared);
        let health_thread = std::thread::Builder::new()
            .name("qcs-router-health".to_string())
            .spawn(move || health_loop(&health_shared))
            .expect("spawning the health thread");

        let client_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_clients = Arc::clone(&client_threads);
        let accept_thread = std::thread::Builder::new()
            .name("qcs-router-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared, &accept_clients))
            .expect("spawning the accept thread");

        Ok(RouterHandle {
            shared,
            accept_thread: Some(accept_thread),
            health_thread: Some(health_thread),
            client_threads,
        })
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<RouterShared>,
    client_threads: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("qcs-router-client".to_string())
            .spawn(move || client_loop(stream, &shared))
            .expect("spawning a client thread");
        client_threads
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .push(handle);
    }
}

/// Per-shard prober bookkeeping, local to the health thread.
struct ProbeState {
    consecutive_successes: u32,
    consecutive_failures: u32,
    next_due: Instant,
    /// What the health flag said the last time we looked — detects
    /// forward()-driven demotions between probes.
    was_healthy: bool,
}

/// Deterministic probe jitter in `[0, interval/4]`: spreads a fleet of
/// routers' probes so a recovering shard never sees them in lockstep.
fn probe_jitter(rng: &mut SplitMix64, interval: Duration) -> Duration {
    let span = ((interval / 4).as_millis() as u64).max(1);
    Duration::from_millis(rng.next_u64() % span)
}

/// The backoff before the next probe of a shard that has failed
/// `consecutive_failures` (>= 1) probes in a row: the base interval
/// doubled per failure, capped at `probe_backoff_max`.
fn probe_backoff(config: &RouterConfig, consecutive_failures: u32) -> Duration {
    let interval = config.health_interval.max(Duration::from_millis(1));
    let exp = consecutive_failures.saturating_sub(1).min(5);
    interval
        .saturating_mul(1u32 << exp)
        .min(config.probe_backoff_max.max(interval))
}

fn health_loop(shared: &RouterShared) {
    let mut rng = SplitMix64::new(shared.config.jitter_seed);
    let start = Instant::now();
    let mut states: Vec<ProbeState> = shared
        .shards
        .iter()
        .map(|s| {
            let healthy = s.healthy.load(Ordering::SeqCst);
            ProbeState {
                // A shard the startup probe found healthy is fully
                // admitted; anything else earns its way in with two
                // consecutive successes.
                consecutive_successes: if healthy { 2 } else { 0 },
                consecutive_failures: 0,
                next_due: start,
                was_healthy: healthy,
            }
        })
        .collect();
    while !shared.shutdown.load(Ordering::SeqCst) {
        let now = Instant::now();
        for (idx, state) in states.iter_mut().enumerate() {
            let shard = &shared.shards[idx];
            let flagged = shard.healthy.load(Ordering::SeqCst);
            if state.was_healthy && !flagged {
                // A forward failure demoted this shard since our last
                // probe: readmission needs two *fresh* successes, even
                // if our own probes never saw it down.
                state.consecutive_successes = 0;
                state.was_healthy = false;
            }
            if now < state.next_due {
                continue;
            }
            let interval = shared.config.health_interval.max(Duration::from_millis(1));
            if probe_shard(shared, idx) {
                state.consecutive_failures = 0;
                state.consecutive_successes = state.consecutive_successes.saturating_add(1);
                if state.consecutive_successes >= 2 {
                    shard.healthy.store(true, Ordering::SeqCst);
                    state.was_healthy = true;
                }
                state.next_due = now + interval + probe_jitter(&mut rng, interval);
            } else {
                state.consecutive_successes = 0;
                state.consecutive_failures = state.consecutive_failures.saturating_add(1);
                shard.healthy.store(false, Ordering::SeqCst);
                state.was_healthy = false;
                state.next_due = now
                    + probe_backoff(&shared.config, state.consecutive_failures)
                    + probe_jitter(&mut rng, interval);
            }
        }
        // Tick in poll-sized slices so shutdown stays responsive.
        let interval = shared.config.health_interval.max(Duration::from_millis(1));
        std::thread::sleep(POLL_INTERVAL.min(interval));
    }
}

/// Pings every shard once, updating health flags in both directions.
fn probe_all(shared: &RouterShared) {
    for idx in 0..shared.shards.len() {
        let healthy = probe_shard(shared, idx);
        shared.shards[idx].healthy.store(healthy, Ordering::SeqCst);
    }
}

fn probe_shard(shared: &RouterShared, idx: usize) -> bool {
    let Ok(addr) = shared.shard_addr(idx) else {
        return false;
    };
    let Ok(mut stream) = TcpStream::connect_timeout(&addr, shared.config.connect_timeout) else {
        return false;
    };
    if stream
        .set_read_timeout(Some(shared.config.connect_timeout))
        .is_err()
        || stream
            .set_write_timeout(Some(shared.config.connect_timeout))
            .is_err()
    {
        return false;
    }
    if write_json(&mut stream, &Json::object([("type", "ping")])).is_err() {
        return false;
    }
    match read_frame(&mut stream) {
        Ok(Some(payload)) => {
            std::str::from_utf8(&payload)
                .ok()
                .and_then(|text| qcs_json::parse(text).ok())
                .and_then(|v| v.get("type").and_then(Json::as_str).map(str::to_string))
                .as_deref()
                == Some("pong")
        }
        _ => false,
    }
}

/// Reads one complete frame from a client, polling so shutdown stays
/// observable. Frames already decoded from earlier reads drain first.
/// `None` closes the connection (EOF, shutdown, I/O error, or a framing
/// error — after queueing an error response for the latter).
fn next_client_frame(
    stream: &mut TcpStream,
    decoder: &mut FrameDecoder,
    ready: &mut VecDeque<Vec<u8>>,
    shared: &RouterShared,
) -> Option<Vec<u8>> {
    loop {
        if let Some(frame) = ready.pop_front() {
            return Some(frame);
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return None;
        }
        let mut buf = [0u8; 16 * 1024];
        match stream.read(&mut buf) {
            Ok(0) => return None,
            Ok(n) => {
                let mut frames = Vec::new();
                if let Err(e) = decoder.feed(&buf[..n], &mut frames) {
                    let _ = write_json(stream, &error_response(e.0));
                    return None;
                }
                ready.extend(frames);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
}

fn client_loop(mut stream: TcpStream, shared: &RouterShared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));

    let mut decoder = FrameDecoder::new();
    let mut ready = VecDeque::new();
    // One pooled connection per shard, owned by this client thread:
    // pipelined requests from one client reuse warm shard connections
    // without any cross-thread locking.
    let mut pool: Vec<Option<TcpStream>> = (0..shared.shards.len()).map(|_| None).collect();

    while let Some(payload) = next_client_frame(&mut stream, &mut decoder, &mut ready, shared) {
        let arrival = Instant::now();
        shared.requests.fetch_add(1, Ordering::SeqCst);
        let keep_going = match Request::parse(&payload) {
            Err(e) => write_json(&mut stream, &error_response(e.to_string())).is_ok(),
            Ok(Request::Ping) => write_json(&mut stream, &Json::object([("type", "pong")])).is_ok(),
            Ok(Request::Stats) => write_json(&mut stream, &router_stats_json(shared)).is_ok(),
            Ok(Request::Shutdown) => {
                let _ = write_json(&mut stream, &Json::object([("type", "ok")]));
                shared.initiate_shutdown();
                false
            }
            Ok(request @ (Request::Compile(_) | Request::CompileSuite(_))) => {
                // The deadline is the request's *total* remaining
                // budget; `arrival` anchors the router's share of it.
                let deadline = match &request {
                    Request::Compile(c) => c.deadline_ms.map(Duration::from_millis),
                    _ => None,
                };
                // Only single compiles hedge: a duplicated suite is
                // never hit-class work, it is a whole benchmark run.
                let hedgeable = matches!(request, Request::Compile(_));
                let ctx = ForwardCtx {
                    key: semantic_route_key(&request, shared),
                    arrival,
                    deadline,
                    hedgeable,
                };
                let response = forward(shared, &payload, &ctx, &mut pool);
                write_frame(&mut stream, &response).is_ok()
            }
        };
        if !keep_going || shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Per-request routing context threaded through [`forward`].
struct ForwardCtx {
    key: u64,
    /// When the request frame was read off the client socket.
    arrival: Instant,
    /// The request's *total* end-to-end budget, if it declared one.
    deadline: Option<Duration>,
    /// Whether this request class may hedge (single compiles only).
    hedgeable: bool,
}

impl ForwardCtx {
    /// Remaining end-to-end budget; `None` when no deadline was given.
    fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|budget| budget.saturating_sub(self.arrival.elapsed()))
    }
}

fn lock_or_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The hedge delay: the configured pin, or the observed hit-class
/// forward p99 clamped to [1ms, 100ms] once enough observations exist.
fn hedge_delay(shared: &RouterShared) -> Option<Duration> {
    if let Some(pinned) = shared.config.hedge_after {
        return Some(pinned);
    }
    let hist = lock_or_recover(&shared.hit_latency);
    if hist.count() < shared.config.hedge_min_observations.max(1) {
        return None;
    }
    let p99 = Duration::from_micros(hist.quantile_upper_micros(0.99));
    Some(p99.clamp(Duration::from_millis(1), Duration::from_millis(100)))
}

/// Observed hit-class forward p95 in microseconds, once trustworthy.
fn hit_forward_p95(shared: &RouterShared) -> Option<u64> {
    let hist = lock_or_recover(&shared.hit_latency);
    (hist.count() >= shared.config.hedge_min_observations.max(1))
        .then(|| hist.quantile_upper_micros(0.95))
}

fn json_bytes(value: Json) -> Vec<u8> {
    value.to_compact_string().into_bytes()
}

/// What one (possibly hedged) forward attempt produced.
struct AttemptOutcome {
    response: Vec<u8>,
    /// Which shard's response this is.
    winner: usize,
    /// True when the primary leg hard-failed during a hedge (so the
    /// caller charges its breaker) even though the backup delivered.
    primary_failed: bool,
}

/// Forwards a request payload to the shard owning `ctx.key`, replaying
/// down the ring-walk order on failure. Applies deadline checks,
/// per-shard admission windows and circuit breakers, and hedges
/// cache-hit-class requests. Returns the winning shard's response
/// payload, or a structured error when no shard could serve.
fn forward(
    shared: &RouterShared,
    payload: &[u8],
    ctx: &ForwardCtx,
    pool: &mut [Option<TcpStream>],
) -> Vec<u8> {
    let hit_class = lock_or_recover(&shared.seen_keys).contains(ctx.key);

    // Deadline gate: refuse work whose remaining budget is already gone
    // or (for hit-class requests, where the router's forward time is the
    // whole story) provably insufficient against the observed p95 —
    // better a fast structured refusal than a doomed forward.
    if let Some(remaining) = ctx.remaining() {
        if remaining.is_zero() {
            shared.deadline_rejected.fetch_add(1, Ordering::SeqCst);
            return json_bytes(deadline_response("deadline exhausted before forwarding"));
        }
        if hit_class {
            if let Some(p95) = hit_forward_p95(shared) {
                if Duration::from_micros(p95) > remaining {
                    shared.deadline_rejected.fetch_add(1, Ordering::SeqCst);
                    return json_bytes(deadline_response(format!(
                        "remaining budget of {} ms cannot cover the observed forward p95 of {} us",
                        remaining.as_millis(),
                        p95
                    )));
                }
            }
        }
    }

    let walk = shared.ring.walk(ctx.key);
    // Healthy shards first (in ring order), then the rest: when the
    // prober has everything marked down (a fleet-wide blip, or probes
    // racing a restart) the router still tries rather than failing fast.
    let candidates: Vec<usize> = walk
        .iter()
        .copied()
        .filter(|&i| shared.shards[i].healthy.load(Ordering::SeqCst))
        .chain(
            walk.iter()
                .copied()
                .filter(|&i| !shared.shards[i].healthy.load(Ordering::SeqCst)),
        )
        .collect();

    let hedge_after = if ctx.hedgeable && hit_class {
        hedge_delay(shared)
    } else {
        None
    };

    let started = Instant::now();
    let mut attempted = false;
    for (position, &idx) in candidates.iter().enumerate() {
        let shard = &shared.shards[idx];
        // Admission before the breaker: a half-open probe admission must
        // never be stranded by a full in-flight window.
        let Some(_slot) = try_acquire_slot(&shard.in_flight, shared.config.max_in_flight.max(1))
        else {
            continue;
        };
        let fallback = !shard.healthy.load(Ordering::SeqCst);
        let admit = if fallback {
            // Total-outage pass: breakers steer traffic away from sick
            // shards, they do not veto the only options left.
            BreakerAdmit::Yes
        } else {
            shard.breaker.admit(Instant::now())
        };
        if admit == BreakerAdmit::No {
            continue;
        }

        // Rewrite the deadline to the remaining budget for every attempt
        // so the shard only ever sees what is actually left.
        let rewritten;
        let body: &[u8] = match ctx.remaining() {
            None => payload,
            Some(remaining) if remaining.is_zero() => {
                shared.deadline_rejected.fetch_add(1, Ordering::SeqCst);
                return json_bytes(deadline_response("deadline exhausted during forwarding"));
            }
            Some(remaining) => match rewrite_deadline_ms(payload, remaining.as_millis() as u64) {
                Some(bytes) => {
                    rewritten = bytes;
                    &rewritten
                }
                None => payload,
            },
        };

        // Hedge only the first, healthy, closed-breaker attempt, and
        // only when a distinct healthy backup exists to hedge *to*.
        let backup = match (position, fallback, admit, hedge_after) {
            (0, false, BreakerAdmit::Yes, Some(_)) => candidates
                .get(1)
                .copied()
                .filter(|&b| shared.shards[b].healthy.load(Ordering::SeqCst)),
            _ => None,
        };

        attempted = true;
        let outcome = match (backup, hedge_after) {
            (Some(backup), Some(delay)) => forward_hedged(shared, idx, backup, body, delay, pool),
            _ => forward_with_retry(shared, idx, body, &mut pool[idx]).map(|response| {
                AttemptOutcome {
                    response,
                    winner: idx,
                    primary_failed: false,
                }
            }),
        };
        match outcome {
            Ok(outcome) => {
                let winner = &shared.shards[outcome.winner];
                winner.forwarded.fetch_add(1, Ordering::SeqCst);
                winner.breaker.on_success();
                if outcome.primary_failed {
                    shard.breaker.on_failure(&shared.config, Instant::now());
                    shard.healthy.store(false, Ordering::SeqCst);
                }
                if position > 0 {
                    shared.reroutes.fetch_add(1, Ordering::SeqCst);
                }
                if ctx.hedgeable {
                    if hit_class {
                        let micros =
                            u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                        lock_or_recover(&shared.hit_latency).record(micros);
                    }
                    lock_or_recover(&shared.seen_keys).note(ctx.key);
                }
                return outcome.response;
            }
            Err(_) => {
                shard.breaker.on_failure(&shared.config, Instant::now());
                shard.healthy.store(false, Ordering::SeqCst);
                pool[idx] = None;
            }
        }
    }
    if !attempted {
        // Every candidate was skipped without a wire attempt: the
        // in-flight windows are full (or every breaker is open against
        // healthy-flagged shards). Shed with a back-off hint rather than
        // queueing unbounded work.
        shared.admission_shed.fetch_add(1, Ordering::SeqCst);
        return json_bytes(shed_response(
            "router admission windows full; retry shortly",
            50,
        ));
    }
    shared.forward_errors.fetch_add(1, Ordering::SeqCst);
    json_bytes(error_response("no shard available for request"))
}

/// One logical forward to shard `idx` over this client's pooled
/// connection, retrying once on a fresh connection: a pooled socket can
/// be stale (the shard restarted since the last request) without the
/// shard being down.
fn forward_with_retry(
    shared: &RouterShared,
    idx: usize,
    payload: &[u8],
    slot: &mut Option<TcpStream>,
) -> io::Result<Vec<u8>> {
    let mut last_err = None;
    for _ in 0..2 {
        match forward_once(shared, idx, payload, slot) {
            Ok(response) => return Ok(response),
            Err(e) => {
                *slot = None;
                last_err = Some(e);
            }
        }
    }
    Err(last_err.unwrap_or_else(|| io::Error::other("forward failed")))
}

/// One forwarding attempt over this client's pooled connection to shard
/// `idx`, opening it if needed.
fn forward_once(
    shared: &RouterShared,
    idx: usize,
    payload: &[u8],
    slot: &mut Option<TcpStream>,
) -> io::Result<Vec<u8>> {
    if slot.is_none() {
        *slot = Some(connect_shard(shared, idx)?);
    }
    let stream = slot.as_mut().expect("just filled");
    write_frame(stream, payload)?;
    match read_frame(stream)? {
        Some(response) => Ok(response),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "shard closed before responding",
        )),
    }
}

fn connect_shard(shared: &RouterShared, idx: usize) -> io::Result<TcpStream> {
    let addr = shared.shard_addr(idx)?;
    let stream = TcpStream::connect_timeout(&addr, shared.config.connect_timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(shared.config.io_timeout))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    Ok(stream)
}

/// Takes (or opens) the pooled connection to shard `idx` and writes one
/// request frame on it, reconnecting once if the pooled socket rejects
/// the write. Ownership of the stream moves to the caller — the hedged
/// reader decides whether it comes back to the pool.
fn send_request(
    shared: &RouterShared,
    idx: usize,
    slot: &mut Option<TcpStream>,
    payload: &[u8],
) -> io::Result<TcpStream> {
    for _ in 0..2 {
        let mut stream = match slot.take() {
            Some(stream) => stream,
            None => connect_shard(shared, idx)?,
        };
        if write_frame(&mut stream, payload).is_ok() {
            return Ok(stream);
        }
    }
    Err(io::Error::new(
        io::ErrorKind::BrokenPipe,
        "could not write request to shard",
    ))
}

/// A hedged forward for a cache-hit-class request: the primary shard
/// gets `delay` to answer on its own; past that, the same payload fires
/// at `backup` and the first *complete* response wins. The loser still
/// owes a response on its connection, so only the winner's socket goes
/// back to the pool — the other is dropped.
///
/// Errors mean the primary leg failed (after a fresh-connection retry)
/// and no backup response arrived either; the caller replays down the
/// walk order as for any failed attempt.
fn forward_hedged(
    shared: &RouterShared,
    primary: usize,
    backup: usize,
    payload: &[u8],
    delay: Duration,
    pool: &mut [Option<TcpStream>],
) -> io::Result<AttemptOutcome> {
    let started = Instant::now();
    let overall_deadline = started + shared.config.io_timeout;
    let hedge_at = started + delay;

    let mut primary_stream = Some(send_request(shared, primary, &mut pool[primary], payload)?);
    // Mirror the unhedged path's stale-pool tolerance: one reconnect.
    let mut primary_retries_left = 1u32;
    let mut primary_failed = false;
    let mut backup_stream: Option<TcpStream> = None;
    let mut _backup_slot = None;
    let mut backup_fired = false;
    let mut backup_failed = false;

    loop {
        let now = Instant::now();
        if now >= overall_deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "hedged forward timed out",
            ));
        }
        if !backup_fired && !primary_failed && now >= hedge_at {
            // The primary has had its p99-derived chance: fire the hedge
            // (unless the backup's admission window is full — a hedge is
            // opportunistic, never worth displacing first-try traffic).
            backup_fired = true;
            match try_acquire_slot(
                &shared.shards[backup].in_flight,
                shared.config.max_in_flight.max(1),
            ) {
                None => backup_failed = true,
                Some(slot) => match send_request(shared, backup, &mut pool[backup], payload) {
                    Ok(stream) => {
                        _backup_slot = Some(slot);
                        backup_stream = Some(stream);
                        shared.hedges_fired.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(_) => backup_failed = true,
                },
            }
        }
        if primary_failed && (backup_failed || backup_stream.is_none()) {
            return Err(io::Error::other("both hedge legs failed"));
        }

        let mut fds = Vec::with_capacity(2);
        let mut legs = Vec::with_capacity(2);
        if let Some(stream) = primary_stream.as_ref() {
            fds.push(PollFd::new(stream.as_raw_fd(), POLLIN));
            legs.push(primary);
        }
        if let Some(stream) = backup_stream.as_ref() {
            fds.push(PollFd::new(stream.as_raw_fd(), POLLIN));
            legs.push(backup);
        }
        let wait = if backup_fired || primary_failed {
            overall_deadline
                .saturating_duration_since(now)
                .min(POLL_INTERVAL)
        } else {
            hedge_at.saturating_duration_since(now).min(POLL_INTERVAL)
        };
        let _ = poll_fds(&mut fds, Some(wait));

        // Primary first: a free response always beats a hedged one.
        for (slot_idx, &leg) in legs.iter().enumerate() {
            if !fds[slot_idx].readable() {
                continue;
            }
            if leg == primary {
                let mut stream = primary_stream.take().expect("primary leg polled");
                match read_frame(&mut stream) {
                    Ok(Some(response)) => {
                        // Exactly one request, one response: the socket
                        // is position-clean and may rejoin the pool.
                        pool[primary] = Some(stream);
                        return Ok(AttemptOutcome {
                            response,
                            winner: primary,
                            primary_failed: false,
                        });
                    }
                    _ => {
                        if primary_retries_left > 0 {
                            primary_retries_left -= 1;
                            match send_request(shared, primary, &mut pool[primary], payload) {
                                Ok(fresh) => primary_stream = Some(fresh),
                                Err(_) => primary_failed = true,
                            }
                        } else {
                            primary_failed = true;
                        }
                    }
                }
                break;
            }
            let mut stream = backup_stream.take().expect("backup leg polled");
            match read_frame(&mut stream) {
                Ok(Some(response)) => {
                    shared.hedges_won.fetch_add(1, Ordering::SeqCst);
                    pool[backup] = Some(stream);
                    return Ok(AttemptOutcome {
                        response,
                        winner: backup,
                        primary_failed,
                    });
                }
                _ => backup_failed = true,
            }
            break;
        }
    }
}

fn router_stats_json(shared: &RouterShared) -> Json {
    Json::object([
        ("type", Json::from("stats")),
        ("role", Json::from("router")),
        (
            "requests",
            Json::from(shared.requests.load(Ordering::SeqCst)),
        ),
        (
            "reroutes",
            Json::from(shared.reroutes.load(Ordering::SeqCst)),
        ),
        (
            "forward_errors",
            Json::from(shared.forward_errors.load(Ordering::SeqCst)),
        ),
        (
            "resilience",
            Json::object([
                (
                    "deadline_rejected",
                    Json::from(shared.deadline_rejected.load(Ordering::SeqCst)),
                ),
                (
                    "admission_shed",
                    Json::from(shared.admission_shed.load(Ordering::SeqCst)),
                ),
                (
                    "hedges_fired",
                    Json::from(shared.hedges_fired.load(Ordering::SeqCst)),
                ),
                (
                    "hedges_won",
                    Json::from(shared.hedges_won.load(Ordering::SeqCst)),
                ),
                (
                    "hedge_delay_micros",
                    Json::from(
                        hedge_delay(shared)
                            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX))
                            .unwrap_or(0),
                    ),
                ),
            ]),
        ),
        (
            "shards",
            Json::Array(
                shared
                    .shards
                    .iter()
                    .map(|s| {
                        Json::object([
                            ("addr", Json::from(s.addr.clone())),
                            ("healthy", Json::from(s.healthy.load(Ordering::SeqCst))),
                            ("forwarded", Json::from(s.forwarded.load(Ordering::SeqCst))),
                            ("breaker", Json::from(s.breaker.phase_name())),
                            (
                                "breaker_opens",
                                Json::from(s.breaker.opens.load(Ordering::SeqCst)),
                            ),
                            (
                                "in_flight",
                                Json::from(s.in_flight.load(Ordering::SeqCst) as u64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CompileRequest;
    use qcs_core::config::MapperConfig;

    #[test]
    fn ring_walk_visits_every_shard_once_owner_first() {
        let ring = HashRing::new(5, 64);
        for key in [0u64, 1, u64::MAX, 0xdead_beef, 42] {
            let walk = ring.walk(key);
            assert_eq!(walk.len(), 5);
            let mut sorted = walk.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn ring_is_deterministic_across_constructions() {
        let a = HashRing::new(3, 64);
        let b = HashRing::new(3, 64);
        for key in 0..200u64 {
            assert_eq!(
                a.walk(key.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                b.walk(key.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            );
        }
    }

    #[test]
    fn ring_spreads_keys_reasonably_evenly() {
        let ring = HashRing::new(4, 64);
        let mut counts = [0usize; 4];
        for key in 0..4000u64 {
            let mut h = Fnv64::new();
            h.write_u64(key);
            counts[ring.walk(h.finish())[0]] += 1;
        }
        for &c in &counts {
            // Perfectly even would be 1000; virtual nodes keep every
            // shard within a loose factor of that.
            assert!(c > 400 && c < 1800, "skewed split: {counts:?}");
        }
    }

    #[test]
    fn removing_a_shard_only_moves_its_own_keys() {
        // Consistent hashing's defining property: keys whose owner
        // survives keep their owner when another shard dies (the walk
        // just skips the dead one).
        let ring = HashRing::new(4, 64);
        for key in 0..500u64 {
            let mut h = Fnv64::new();
            h.write_u64(key);
            let walk = ring.walk(h.finish());
            let dead = 2usize;
            let rerouted_owner = walk.iter().copied().find(|&s| s != dead).unwrap();
            if walk[0] != dead {
                assert_eq!(walk[0], rerouted_owner, "surviving owner must not move");
            }
        }
    }

    fn test_config() -> RouterConfig {
        RouterConfig {
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(100),
            breaker_cooldown_max: Duration::from_millis(500),
            ..RouterConfig::default()
        }
    }

    #[test]
    fn breaker_trips_after_threshold_and_recovers_via_half_open() {
        let config = test_config();
        let breaker = Breaker::new();
        let t0 = Instant::now();
        assert_eq!(breaker.admit(t0), BreakerAdmit::Yes);
        breaker.on_failure(&config, t0);
        breaker.on_failure(&config, t0);
        assert_eq!(breaker.admit(t0), BreakerAdmit::Yes, "below threshold");
        breaker.on_failure(&config, t0);
        assert_eq!(breaker.phase_name(), "open");
        assert_eq!(breaker.opens.load(Ordering::SeqCst), 1);
        assert_eq!(breaker.admit(t0), BreakerAdmit::No, "cooldown not elapsed");
        // Past the cooldown: exactly one half-open probe is admitted.
        let after = t0 + config.breaker_cooldown + Duration::from_millis(1);
        assert_eq!(breaker.admit(after), BreakerAdmit::Probe);
        assert_eq!(breaker.phase_name(), "half-open");
        assert_eq!(breaker.admit(after), BreakerAdmit::No, "probe already out");
        breaker.on_success();
        assert_eq!(breaker.phase_name(), "closed");
        assert_eq!(breaker.admit(after), BreakerAdmit::Yes);
    }

    #[test]
    fn breaker_failed_probe_doubles_cooldown_up_to_cap() {
        let config = test_config();
        let breaker = Breaker::new();
        let t0 = Instant::now();
        for _ in 0..3 {
            breaker.on_failure(&config, t0);
        }
        // Fail half-open probes repeatedly: each reopen doubles the
        // cooldown until the cap pins it.
        let mut now = t0;
        let mut previous_until = t0;
        for round in 0..6u32 {
            now += Duration::from_secs(1);
            assert_eq!(breaker.admit(now), BreakerAdmit::Probe, "round {round}");
            breaker.on_failure(&config, now);
            let until = match &*breaker.lock() {
                BreakerPhase::Open { until, .. } => *until,
                other_phase => panic!(
                    "expected open after failed probe, got {}",
                    match other_phase {
                        BreakerPhase::Closed { .. } => "closed",
                        BreakerPhase::HalfOpen { .. } => "half-open",
                        BreakerPhase::Open { .. } => unreachable!(),
                    }
                ),
            };
            let cooldown = until - now;
            let expected = config
                .breaker_cooldown
                .saturating_mul(1u32 << (round + 1).min(5))
                .min(config.breaker_cooldown_max);
            assert_eq!(cooldown, expected, "round {round}");
            previous_until = until;
        }
        assert!(previous_until - now <= config.breaker_cooldown_max);
        // One success out of half-open closes it regardless of streak.
        now += Duration::from_secs(1);
        assert_eq!(breaker.admit(now), BreakerAdmit::Probe);
        breaker.on_success();
        assert_eq!(breaker.phase_name(), "closed");
    }

    #[test]
    fn breaker_success_from_open_closes_immediately() {
        // A fallback-pass forward can succeed against an open breaker;
        // real success is stronger evidence than any cooldown.
        let config = test_config();
        let breaker = Breaker::new();
        let t0 = Instant::now();
        for _ in 0..3 {
            breaker.on_failure(&config, t0);
        }
        assert_eq!(breaker.phase_name(), "open");
        breaker.on_success();
        assert_eq!(breaker.phase_name(), "closed");
    }

    #[test]
    fn in_flight_slots_are_bounded_and_release_on_drop() {
        let counter = AtomicUsize::new(0);
        let a = try_acquire_slot(&counter, 2).expect("first slot");
        let b = try_acquire_slot(&counter, 2).expect("second slot");
        assert!(try_acquire_slot(&counter, 2).is_none(), "window full");
        drop(a);
        let c = try_acquire_slot(&counter, 2).expect("slot freed by drop");
        drop(b);
        drop(c);
        assert_eq!(counter.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn seen_keys_remember_and_evict_oldest() {
        let mut seen = SeenKeys::new();
        seen.note(7);
        seen.note(7); // duplicate must not occupy a second slot
        assert!(seen.contains(7));
        for key in 0..(SEEN_KEYS_CAP as u64) {
            seen.note(1_000_000 + key);
        }
        assert!(!seen.contains(7), "oldest key evicted at capacity");
        assert!(seen.contains(1_000_000 + SEEN_KEYS_CAP as u64 - 1));
        assert_eq!(seen.set.len(), SEEN_KEYS_CAP);
        assert_eq!(seen.order.len(), SEEN_KEYS_CAP);
    }

    #[test]
    fn probe_backoff_doubles_and_caps() {
        let mut config = test_config();
        config.health_interval = Duration::from_millis(100);
        config.probe_backoff_max = Duration::from_millis(900);
        assert_eq!(probe_backoff(&config, 1), Duration::from_millis(100));
        assert_eq!(probe_backoff(&config, 2), Duration::from_millis(200));
        assert_eq!(probe_backoff(&config, 3), Duration::from_millis(400));
        assert_eq!(probe_backoff(&config, 4), Duration::from_millis(800));
        assert_eq!(
            probe_backoff(&config, 5),
            Duration::from_millis(900),
            "capped"
        );
        assert_eq!(probe_backoff(&config, 60), Duration::from_millis(900));
    }

    #[test]
    fn probe_jitter_is_deterministic_and_bounded() {
        let interval = Duration::from_millis(200);
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            let ja = probe_jitter(&mut a, interval);
            assert_eq!(ja, probe_jitter(&mut b, interval));
            assert!(ja < interval / 4 + Duration::from_millis(1));
        }
    }

    #[test]
    fn route_key_depends_on_job_identity_only() {
        let base = CompileRequest {
            source: Source::Workload("ghz:8".to_string()),
            device: "surface17".to_string(),
            config: MapperConfig::default(),
            deadline_ms: None,
            request_id: None,
            race: false,
        };
        let k1 = route_key(&Request::Compile(base.clone()));
        // Request id and deadline are delivery metadata, not identity:
        // a retry with a fresh deadline must land on the same shard.
        let mut retry = base.clone();
        retry.request_id = Some("retry-1".to_string());
        retry.deadline_ms = Some(5000);
        assert_eq!(k1, route_key(&Request::Compile(retry)));
        let mut other = base.clone();
        other.device = "line:5".to_string();
        assert_ne!(k1, route_key(&Request::Compile(other)));
        // A forced race is a distinct cache identity, so it routes as one.
        let mut raced = base;
        raced.race = true;
        assert_ne!(k1, route_key(&Request::Compile(raced)));
    }

    #[test]
    fn canonical_route_key_collapses_structural_twins() {
        let request = |qasm: &str| {
            Request::Compile(CompileRequest {
                source: Source::Qasm(qasm.to_string()),
                device: "surface17".to_string(),
                config: MapperConfig::default(),
                deadline_ms: None,
                request_id: None,
                race: false,
            })
        };
        // The same circuit under a qubit relabeling (and different text):
        // distinct text keys, one canonical routing key — so both land on
        // the shard whose semantic cache can serve them.
        let a = request("qreg q[3]; h q[0]; cx q[0],q[1]; cx q[1],q[2];");
        let b = request("qreg q[3]; h q[2]; cx q[2],q[1]; cx q[1],q[0];");
        assert_ne!(route_key(&a), route_key(&b));
        assert_eq!(
            canonical_route_key(&a).unwrap(),
            canonical_route_key(&b).unwrap()
        );
        // A genuinely different circuit routes elsewhere.
        let c = request("qreg q[3]; x q[0]; cx q[0],q[1]; cx q[1],q[2];");
        assert_ne!(
            canonical_route_key(&a).unwrap(),
            canonical_route_key(&c).unwrap()
        );
        // Unresolvable requests have no canonical key (the caller falls
        // back to the text hash).
        let mut bad = request("qreg q[3]; h q[0];");
        if let Request::Compile(c) = &mut bad {
            c.device = "warp-core".to_string();
        }
        assert!(canonical_route_key(&bad).is_none());

        let memo_cycle = {
            let mut memo = CanonKeyMemo::new();
            memo.note(1, 100);
            assert_eq!(memo.get(1), Some(100));
            for i in 2..(CANON_KEY_MEMO_CAP as u64 + 3) {
                memo.note(i, i);
            }
            memo.get(1)
        };
        assert_eq!(memo_cycle, None, "oldest memo entries age out");
    }
}
