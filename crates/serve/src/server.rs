//! The daemon: TCP listener, connection worker pool, dispatch, stats.
//!
//! Architecture (one paragraph): an *accept thread* owns the listener
//! and pushes accepted sockets into a bounded queue; a fixed pool of
//! *connection workers* claims sockets from that queue and serves each
//! connection's frames until the peer closes, a deadline fires, or
//! shutdown is requested. Batch (`compile_suite`) jobs fan out across
//! `qcs_bench::parallel::run_claimed`, the same claim-by-atomic engine
//! the offline suite harness uses, so one heavy request still exploits
//! every core while results stay in deterministic input order.
//!
//! Robustness properties, each covered by a test:
//!
//! * **Read deadline** — a frame that stalls mid-transfer earns an
//!   `error` response and a closed connection rather than a stuck worker.
//! * **Request deadline** — `deadline_ms` turns an over-budget job into
//!   an `error` response (the compile result, if any, is still cached).
//! * **Connection limit** — sockets beyond `max_connections` receive an
//!   immediate `error` frame with a `retry_after_ms` hint instead of
//!   unbounded queueing (load shedding; counted in `stats`).
//! * **Panic isolation** — a compile that panics (a compiler bug, or an
//!   injected `qcs-faults` failpoint) turns into an `error` response on
//!   that one connection; the worker, its queue and the shared cache all
//!   survive, and the panic is counted in `stats`.
//! * **Clean shutdown** — a `shutdown` request (or
//!   [`ServerHandle::shutdown`]) stops the accept loop, drains workers
//!   and joins every thread; no thread outlives the handle. Threads that
//!   died panicking are recorded in [`ShutdownStats`] rather than
//!   re-panicking the caller.

use std::collections::{HashSet, VecDeque};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qcs_json::Json;
use qcs_workloads::suite::{generate_suite, SuiteConfig};

use qcs_faults::Hit;

use crate::cache::ResultCache;
use crate::compile::{run_job, Job};
use crate::histogram::LatencyHistogram;
use crate::persist::Store;
use crate::protocol::{
    error_response, shed_response, write_frame, write_json, CompileRequest, Request, SuiteRequest,
    MAX_FRAME_BYTES,
};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Connection worker count.
    pub workers: usize,
    /// Maximum simultaneously admitted connections (queued + active).
    pub max_connections: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
    /// Mid-frame read deadline: a started frame must finish arriving
    /// within this budget.
    pub frame_deadline: Duration,
    /// Directory for the crash-safe persistent cache (WAL + snapshot,
    /// see [`crate::persist`]). `None` keeps the cache memory-only; with
    /// a directory, the daemon replays it at startup and comes back warm
    /// after any restart — including `kill -9`.
    pub persist_dir: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: qcs_bench::default_workers().clamp(2, 16),
            max_connections: 64,
            cache_bytes: 64 << 20,
            frame_deadline: Duration::from_secs(5),
            persist_dir: None,
        }
    }
}

/// How often blocked reads and idle workers re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Back-off hint handed to load-shed clients.
const SHED_RETRY_MS: u64 = 100;

/// Locks a mutex, recovering from poisoning. Every shared structure here
/// (queue, cache, stats) maintains its invariants between operations, so
/// a panic that unwound through a guard — e.g. an injected failpoint —
/// leaves consistent data behind and serving can continue.
fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Renders a caught panic payload into a one-line message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct ServeStats {
    total: LatencyHistogram,
    decompose: LatencyHistogram,
    place: LatencyHistogram,
    route: LatencyHistogram,
    schedule: LatencyHistogram,
}

impl ServeStats {
    fn new() -> Self {
        ServeStats {
            total: LatencyHistogram::default(),
            decompose: LatencyHistogram::default(),
            place: LatencyHistogram::default(),
            route: LatencyHistogram::default(),
            schedule: LatencyHistogram::default(),
        }
    }
}

/// Bound on remembered request ids: enough to catch any realistic retry
/// window, small enough to never matter for memory.
const SEEN_IDS_CAP: usize = 4096;

/// A bounded memory of client request ids, for telling retries apart
/// from new requests. Oldest ids age out first.
struct SeenIds {
    set: HashSet<String>,
    order: VecDeque<String>,
}

impl SeenIds {
    fn new() -> Self {
        SeenIds {
            set: HashSet::new(),
            order: VecDeque::new(),
        }
    }

    /// Records `id`; returns true when it was already known (a retry).
    fn note(&mut self, id: &str) -> bool {
        if self.set.contains(id) {
            return true;
        }
        self.set.insert(id.to_string());
        self.order.push_back(id.to_string());
        if self.order.len() > SEEN_IDS_CAP {
            if let Some(oldest) = self.order.pop_front() {
                self.set.remove(&oldest);
            }
        }
        false
    }
}

struct Shared {
    config: ServerConfig,
    local_addr: SocketAddr,
    shutdown: AtomicBool,
    queue: Mutex<Vec<TcpStream>>,
    queue_signal: Condvar,
    active: AtomicUsize,
    jobs_served: AtomicU64,
    jobs_panicked: AtomicU64,
    connections_panicked: AtomicU64,
    connections_shed: AtomicU64,
    requests_retried: AtomicU64,
    persist_errors: AtomicU64,
    seen_ids: Mutex<SeenIds>,
    cache: Mutex<ResultCache>,
    persist: Option<Mutex<Store>>,
    stats: Mutex<ServeStats>,
}

impl Shared {
    fn initiate_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // already shutting down
        }
        self.queue_signal.notify_all();
        // The accept thread may be parked in accept(): poke it awake.
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// What the daemon's threads reported at join time.
///
/// Panic isolation means worker threads normally survive even panicking
/// jobs; a nonzero [`threads_panicked`](ShutdownStats::threads_panicked)
/// therefore signals a bug in the serving loop itself, not in a job.
/// Shutdown still completes cleanly either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShutdownStats {
    /// Daemon threads that exited normally.
    pub threads_joined: usize,
    /// Daemon threads that died panicking (their panic is swallowed at
    /// join time so shutdown always completes).
    pub threads_panicked: usize,
}

/// The running daemon: address + thread handles.
///
/// Dropping the handle without calling [`shutdown`](ServerHandle::shutdown)
/// or [`wait`](ServerHandle::wait) detaches the threads (the daemon keeps
/// running until a protocol `shutdown` arrives).
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The daemon's bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Requests shutdown and joins every daemon thread.
    pub fn shutdown(mut self) -> ShutdownStats {
        self.shared.initiate_shutdown();
        self.join_all()
    }

    /// Blocks until the daemon shuts down (via a protocol `shutdown`
    /// request) and joins every daemon thread.
    pub fn wait(mut self) -> ShutdownStats {
        self.join_all()
    }

    fn join_all(&mut self) -> ShutdownStats {
        let mut stats = ShutdownStats::default();
        let threads = self
            .accept_thread
            .take()
            .into_iter()
            .chain(self.worker_threads.drain(..));
        for t in threads {
            match t.join() {
                Ok(()) => stats.threads_joined += 1,
                Err(_) => stats.threads_panicked += 1,
            }
        }
        stats
    }
}

/// Namespace for [`Server::start`].
pub struct Server;

impl Server {
    /// Binds the listener, spawns the accept thread and worker pool, and
    /// returns a handle.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind failure, unparsable address).
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        assert!(config.workers > 0, "worker count must be at least 1");
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;

        // Warm restart: replay the persist directory into the in-memory
        // cache before the first connection is accepted. Recovery order
        // is LRU-faithful, so the warmed cache evicts the same way the
        // pre-crash one would have.
        let mut cache = ResultCache::new(config.cache_bytes);
        let persist = match &config.persist_dir {
            Some(dir) => {
                let (store, recovered) = Store::open(Path::new(dir))?;
                for record in recovered {
                    cache.insert(record.digest, record.key, record.payload);
                }
                Some(Mutex::new(store))
            }
            None => None,
        };

        let shared = Arc::new(Shared {
            config,
            local_addr,
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(Vec::new()),
            queue_signal: Condvar::new(),
            active: AtomicUsize::new(0),
            jobs_served: AtomicU64::new(0),
            jobs_panicked: AtomicU64::new(0),
            connections_panicked: AtomicU64::new(0),
            connections_shed: AtomicU64::new(0),
            requests_retried: AtomicU64::new(0),
            persist_errors: AtomicU64::new(0),
            seen_ids: Mutex::new(SeenIds::new()),
            cache: Mutex::new(cache),
            persist,
            stats: Mutex::new(ServeStats::new()),
        });

        let worker_threads = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qcs-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a worker thread")
            })
            .collect();

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("qcs-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawning the accept thread");

        Ok(ServerHandle {
            shared,
            accept_thread: Some(accept_thread),
            worker_threads,
        })
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break; // the stream (often the shutdown self-poke) is dropped
        }
        let Ok(stream) = stream else { continue };
        let mut queue = lock_recovering(&shared.queue);
        let admitted = queue.len() + shared.active.load(Ordering::SeqCst);
        if admitted >= shared.config.max_connections {
            drop(queue);
            shared.connections_shed.fetch_add(1, Ordering::SeqCst);
            reject_connection(stream);
            continue;
        }
        queue.push(stream);
        drop(queue);
        shared.queue_signal.notify_one();
    }
    // Accept loop is done: wake every worker so they can observe the
    // flag and drain.
    shared.queue_signal.notify_all();
}

/// Tells an over-limit client why it is being turned away and when to
/// come back.
fn reject_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = write_json(
        &mut stream,
        &shed_response("server at connection capacity, retry later", SHED_RETRY_MS),
    );
}

fn worker_loop(shared: &Shared) {
    loop {
        let stream = {
            let mut queue = lock_recovering(&shared.queue);
            loop {
                if let Some(stream) = queue.pop() {
                    break Some(stream);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = shared
                    .queue_signal
                    .wait_timeout(queue, POLL_INTERVAL)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                queue = q;
            }
        };
        let Some(stream) = stream else { return };
        shared.active.fetch_add(1, Ordering::SeqCst);
        // A panic that escapes the per-job isolation in `serve_compile`
        // (connection bookkeeping, an injected `serve.connection` fault)
        // costs that one connection, never the worker: catch it, count
        // it, keep claiming sockets.
        let caught =
            std::panic::catch_unwind(AssertUnwindSafe(|| handle_connection(stream, shared)));
        if caught.is_err() {
            shared.connections_panicked.fetch_add(1, Ordering::SeqCst);
        }
        shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Outcome of one cancellable frame read.
enum FrameRead {
    Frame(Vec<u8>),
    /// Peer closed between frames.
    Closed,
    /// Shutdown was requested while waiting.
    Shutdown,
    /// The frame stalled past the deadline or the stream broke; the
    /// contained message (if any) should be sent before closing.
    Abort(Option<String>),
}

/// Reads exactly `buf.len()` bytes, polling so shutdown stays
/// observable. `started_at` is the moment the current frame's first byte
/// arrived (None while idle: idle connections wait indefinitely).
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    started_at: &mut Option<Instant>,
    deadline: Duration,
    shutdown: &AtomicBool,
) -> Result<usize, FrameRead> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Ok(filled),
            Ok(n) => {
                filled += n;
                started_at.get_or_insert_with(Instant::now);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Err(FrameRead::Shutdown);
                }
                if let Some(start) = *started_at {
                    if start.elapsed() > deadline {
                        return Err(FrameRead::Abort(Some(format!(
                            "read deadline exceeded: frame incomplete after {} ms",
                            deadline.as_millis()
                        ))));
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return Err(FrameRead::Abort(None)),
        }
    }
    Ok(filled)
}

fn read_request_frame(stream: &mut TcpStream, shared: &Shared) -> FrameRead {
    let deadline = shared.config.frame_deadline;
    let mut started_at: Option<Instant> = None;

    let mut len_buf = [0u8; 4];
    match read_full(
        stream,
        &mut len_buf,
        &mut started_at,
        deadline,
        &shared.shutdown,
    ) {
        Ok(4) => {}
        Ok(0) => return FrameRead::Closed,
        Ok(_) => return FrameRead::Abort(None), // truncated mid-prefix
        Err(outcome) => return outcome,
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return FrameRead::Abort(Some(format!(
            "frame length {len} exceeds protocol maximum of {MAX_FRAME_BYTES} bytes"
        )));
    }
    let mut payload = vec![0u8; len];
    match read_full(
        stream,
        &mut payload,
        &mut started_at,
        deadline,
        &shared.shutdown,
    ) {
        Ok(n) if n == len => FrameRead::Frame(payload),
        Ok(_) => FrameRead::Abort(None),
        Err(outcome) => outcome,
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    // Chaos-test failpoint: lets the harness kill or stall a connection
    // wholesale to prove the worker pool survives.
    let _ = qcs_faults::hit("serve.connection");
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));

    loop {
        let payload = match read_request_frame(&mut stream, shared) {
            FrameRead::Frame(payload) => payload,
            FrameRead::Closed | FrameRead::Shutdown => return,
            FrameRead::Abort(message) => {
                if let Some(message) = message {
                    let _ = write_json(&mut stream, &error_response(message));
                }
                return;
            }
        };

        let request = match Request::parse(&payload) {
            Ok(request) => request,
            Err(e) => {
                // Malformed request: answer and keep the connection — the
                // framing is intact, so the stream is still in sync.
                if write_json(&mut stream, &error_response(e.to_string())).is_err() {
                    return;
                }
                continue;
            }
        };

        let keep_going = match request {
            Request::Ping => write_json(&mut stream, &Json::object([("type", "pong")])).is_ok(),
            Request::Stats => write_json(&mut stream, &stats_json(shared)).is_ok(),
            Request::Shutdown => {
                let _ = write_json(&mut stream, &Json::object([("type", "ok")]));
                shared.initiate_shutdown();
                false
            }
            Request::Compile(request) => serve_compile(&mut stream, shared, &request),
            Request::CompileSuite(request) => serve_suite(&mut stream, shared, &request),
        };
        if !keep_going || shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Compiles one job through the cache; returns the canonical payload or
/// a client-presentable error string. Records histograms and counters.
fn compile_via_cache(shared: &Shared, request: &CompileRequest) -> Result<Arc<Vec<u8>>, String> {
    let started = Instant::now();
    let deadline = request.deadline_ms.map(Duration::from_millis);
    let over_deadline = |when: &str| {
        deadline
            .filter(|&d| started.elapsed() > d)
            .map(|d| format!("deadline of {} ms exceeded {when}", d.as_millis()))
    };

    let mut job = Job::resolve(request).map_err(|e| e.to_string())?;
    // Chaos-test failpoint, deliberately *before* the cache lookup so
    // every request — cache hit or miss — can be made to fail. Panics
    // unwind into `serve_compile`'s isolation; triggers mutate the job
    // (e.g. a `degrade:...` calibration outage).
    match qcs_faults::hit("serve.worker.job") {
        Hit::Pass => {}
        Hit::Error(message) => return Err(format!("injected fault: {message}")),
        Hit::Triggered(tag) => job.apply_trigger(&tag).map_err(|e| e.to_string())?,
    }
    let digest = job.digest();
    let full_key = job.full_key();

    let cached = lock_recovering(&shared.cache).get(digest, &full_key);
    let payload = match cached {
        Some(payload) => payload,
        None => {
            if let Some(message) = over_deadline("before compilation started") {
                return Err(message);
            }
            let output = run_job(&job).map_err(|e| e.to_string())?;
            let payload = Arc::new(output.payload);
            lock_recovering(&shared.cache).insert(
                digest,
                full_key.clone(),
                payload.as_ref().clone(),
            );
            persist_entry(shared, digest, &full_key, &payload);
            let timing = output.timing;
            let mut stats = lock_recovering(&shared.stats);
            stats.decompose.record(timing.decompose_micros as u64);
            stats.place.record(timing.place_micros as u64);
            stats.route.record(timing.route_micros as u64);
            stats.schedule.record(timing.schedule_micros as u64);
            payload
        }
    };

    shared.jobs_served.fetch_add(1, Ordering::SeqCst);
    lock_recovering(&shared.stats)
        .total
        .record(started.elapsed().as_micros() as u64);

    if let Some(message) = over_deadline("by the finished job") {
        return Err(message);
    }
    Ok(payload)
}

/// Durably logs a fresh cache entry into the persist store (when one is
/// configured), folding the WAL into a snapshot once it outgrows the
/// threshold. Persistence failures are counted in `persist_errors` but
/// never fail the request: the daemon keeps serving from memory.
fn persist_entry(shared: &Shared, digest: u64, key: &[u8], payload: &[u8]) {
    let Some(persist) = &shared.persist else {
        return;
    };
    let mut store = lock_recovering(persist);
    if store.append(digest, key, payload).is_err() {
        shared.persist_errors.fetch_add(1, Ordering::SeqCst);
    }
    if store.should_compact() {
        let entries = lock_recovering(&shared.cache).entries_by_recency();
        if store.compact(&entries).is_err() {
            shared.persist_errors.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// The canonical payload with the client's request id spliced in as the
/// first member. The cached bytes stay id-free (they are shared across
/// clients); only this one response copy carries the echo.
fn payload_with_request_id(payload: &[u8], id: &str) -> Vec<u8> {
    let id_json = Json::from(id.to_string()).to_compact_string();
    let mut out = Vec::with_capacity(payload.len() + id_json.len() + 16);
    out.extend_from_slice(b"{\"request_id\":");
    out.extend_from_slice(id_json.as_bytes());
    out.push(b',');
    out.extend_from_slice(&payload[1..]);
    out
}

/// Prepends a `request_id` member to an error-shaped response when the
/// request carried one.
fn tag_request_id(value: Json, id: &Option<String>) -> Json {
    match (value, id) {
        (Json::Object(mut members), Some(id)) => {
            members.insert(0, ("request_id".to_string(), Json::from(id.clone())));
            Json::Object(members)
        }
        (value, _) => value,
    }
}

fn serve_compile(stream: &mut TcpStream, shared: &Shared, request: &CompileRequest) -> bool {
    // A request id seen before marks a client retry — worth counting
    // separately from organic traffic when reading stats after an
    // incident.
    if let Some(id) = &request.request_id {
        if lock_recovering(&shared.seen_ids).note(id) {
            shared.requests_retried.fetch_add(1, Ordering::SeqCst);
        }
    }
    // Panic isolation: a compile that panics — a pipeline bug or an
    // injected failpoint — becomes a structured error frame on this one
    // connection. The worker, the queue and the cache all survive, and
    // the shared locks recover from any poisoning the unwind caused.
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| compile_via_cache(shared, request)));
    match outcome {
        Ok(Ok(payload)) => match &request.request_id {
            Some(id) => write_frame(stream, &payload_with_request_id(&payload, id)).is_ok(),
            None => write_frame(stream, &payload).is_ok(),
        },
        Ok(Err(message)) => write_json(
            stream,
            &tag_request_id(error_response(message), &request.request_id),
        )
        .is_ok(),
        Err(panic) => {
            shared.jobs_panicked.fetch_add(1, Ordering::SeqCst);
            let message = format!("compilation panicked: {}", panic_message(panic.as_ref()));
            write_json(
                stream,
                &tag_request_id(error_response(message), &request.request_id),
            )
            .is_ok()
        }
    }
}

fn serve_suite(stream: &mut TcpStream, shared: &Shared, request: &SuiteRequest) -> bool {
    if request.count == 0 || request.count > 10_000 {
        return write_json(stream, &error_response("suite count must be in 1..=10000")).is_ok();
    }
    let device = match crate::catalog::resolve_device(&request.device) {
        Ok(device) => device,
        Err(e) => return write_json(stream, &error_response(e.to_string())).is_ok(),
    };
    let benchmarks = generate_suite(&SuiteConfig {
        count: request.count,
        max_qubits: request.max_qubits,
        max_gates: request.max_gates,
        seed: request.seed,
    });

    // Fan the batch across the claim-by-atomic pool; each item goes
    // through the same cache path as a single request, and the slot
    // discipline keeps results in deterministic input order.
    let results = qcs_bench::run_claimed(&benchmarks, shared.config.workers, |_, benchmark| {
        let job = Job {
            circuit: benchmark.circuit.clone(),
            device: device.clone(),
            config: request.config.clone(),
        };
        let digest = job.digest();
        let full_key = job.full_key();
        let cached = lock_recovering(&shared.cache).get(digest, &full_key);
        let outcome: Result<Arc<Vec<u8>>, String> = match cached {
            Some(payload) => Ok(payload),
            None => {
                // Same panic isolation as the single-compile path: one
                // panicking benchmark yields one error row, not a dead
                // batch engine.
                match std::panic::catch_unwind(AssertUnwindSafe(|| run_job(&job))) {
                    Ok(Ok(output)) => {
                        let payload = Arc::new(output.payload);
                        lock_recovering(&shared.cache).insert(
                            digest,
                            full_key.clone(),
                            payload.as_ref().clone(),
                        );
                        persist_entry(shared, digest, &full_key, &payload);
                        Ok(payload)
                    }
                    Ok(Err(e)) => Err(e.to_string()),
                    Err(panic) => {
                        shared.jobs_panicked.fetch_add(1, Ordering::SeqCst);
                        Err(format!(
                            "compilation panicked: {}",
                            panic_message(panic.as_ref())
                        ))
                    }
                }
            }
        };
        match outcome {
            Ok(payload) => {
                shared.jobs_served.fetch_add(1, Ordering::SeqCst);
                let text = std::str::from_utf8(&payload).expect("payloads are UTF-8");
                let value = qcs_json::parse(text).expect("payloads are valid JSON");
                Json::object([
                    ("name", Json::from(benchmark.name.clone())),
                    ("result", value),
                ])
            }
            Err(message) => Json::object([
                ("name", Json::from(benchmark.name.clone())),
                ("result", error_response(message)),
            ]),
        }
    });

    let response = Json::object([
        ("type", Json::from("suite_result")),
        ("results", Json::Array(results)),
    ]);
    write_json(stream, &response).is_ok()
}

fn stats_json(shared: &Shared) -> Json {
    let cache = lock_recovering(&shared.cache).stats();
    let stats = lock_recovering(&shared.stats);
    let mut value = Json::object([
        ("type", Json::from("stats")),
        (
            "jobs",
            Json::from(shared.jobs_served.load(Ordering::SeqCst)),
        ),
        (
            "active_connections",
            Json::from(shared.active.load(Ordering::SeqCst)),
        ),
        (
            "requests_retried",
            Json::from(shared.requests_retried.load(Ordering::SeqCst)),
        ),
        (
            "faults",
            Json::object([
                (
                    "jobs_panicked",
                    Json::from(shared.jobs_panicked.load(Ordering::SeqCst)),
                ),
                (
                    "connections_panicked",
                    Json::from(shared.connections_panicked.load(Ordering::SeqCst)),
                ),
                (
                    "connections_shed",
                    Json::from(shared.connections_shed.load(Ordering::SeqCst)),
                ),
            ]),
        ),
        (
            "cache",
            Json::object([
                ("hits", Json::from(cache.hits)),
                ("misses", Json::from(cache.misses)),
                ("evictions", Json::from(cache.evictions)),
                ("hash_conflicts", Json::from(cache.hash_conflicts)),
                ("entries", Json::from(cache.entries)),
                ("bytes", Json::from(cache.bytes)),
                ("hit_rate", Json::from(cache.hit_rate())),
            ]),
        ),
        (
            "latency_micros",
            Json::object([
                ("total", stats.total.to_json()),
                ("decompose", stats.decompose.to_json()),
                ("place", stats.place.to_json()),
                ("route", stats.route.to_json()),
                ("schedule", stats.schedule.to_json()),
            ]),
        ),
    ]);
    if let Some(persist) = &shared.persist {
        let p = lock_recovering(persist).stats();
        if let Json::Object(members) = &mut value {
            members.push((
                "persist".to_string(),
                Json::object([
                    ("records_recovered", Json::from(p.records_recovered)),
                    (
                        "corrupt_records_skipped",
                        Json::from(p.corrupt_records_skipped),
                    ),
                    ("torn_tails_truncated", Json::from(p.torn_tails_truncated)),
                    ("appends", Json::from(p.appends)),
                    (
                        "append_errors",
                        Json::from(shared.persist_errors.load(Ordering::SeqCst)),
                    ),
                    ("compactions", Json::from(p.compactions)),
                    ("wal_bytes", Json::from(p.wal_bytes)),
                    ("snapshot_bytes", Json::from(p.snapshot_bytes)),
                ]),
            ));
        }
    }
    value
}
