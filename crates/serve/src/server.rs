//! The daemon: TCP listener, event-loop pool, compute workers, stats.
//!
//! Architecture (one paragraph): an *accept thread* owns the listener,
//! applies the connection limit, and hands admitted sockets round-robin
//! to a small fixed pool of *event-loop threads* (see [`crate::event`]).
//! Each loop multiplexes its connections through `poll(2)` with
//! non-blocking I/O: per-connection [`crate::frame::FrameDecoder`] state
//! machines accumulate partial frames across wakeups, cheap control
//! requests (`ping`, `stats`, `shutdown`) are answered inline, and
//! compute requests (`compile`, `compile_suite`) are queued to a pool of
//! *compute workers* whose responses flow back to the owning loop for
//! buffered, backpressured writes. Batch (`compile_suite`) jobs still
//! fan out across `qcs_bench::parallel::run_claimed`, the same
//! claim-by-atomic engine the offline suite harness uses.
//!
//! The payoff over the previous thread-per-connection design: a worker
//! is occupied only while *computing*, never while a connection sits
//! idle or dribbles bytes — so slow peers cost a few hundred bytes of
//! buffer instead of a captive thread, and the daemon sustains hundreds
//! of concurrent connections with a handful of threads.
//!
//! Robustness properties, each covered by a test:
//!
//! * **Read deadline** — a frame that stalls mid-transfer earns an
//!   `error` response and a closed connection rather than a stuck loop.
//! * **Request deadline** — `deadline_ms` turns an over-budget job into
//!   an `error` response (the compile result, if any, is still cached).
//! * **Connection limit** — sockets beyond `max_connections` receive an
//!   immediate `error` frame with a `retry_after_ms` hint instead of
//!   unbounded queueing (load shedding; counted in `stats`).
//! * **Panic isolation** — a compile that panics (a compiler bug, or an
//!   injected `qcs-faults` failpoint) turns into an `error` response on
//!   that one connection; the worker, its queue and the shared cache all
//!   survive, and the panic is counted in `stats`.
//! * **Clean shutdown** — a `shutdown` request (or
//!   [`ServerHandle::shutdown`]) stops the accept loop, drains workers
//!   and event loops, and joins every thread; no thread outlives the
//!   handle. Threads that died panicking are recorded in
//!   [`ShutdownStats`] rather than re-panicking the caller.

use std::collections::{HashSet, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use qcs_json::Json;
use qcs_workloads::suite::{generate_suite, SuiteConfig};

use qcs_faults::Hit;

use qcs_circuit::canon::CanonConfig;
use qcs_circuit::hash::circuit_digest;
use qcs_circuit::qasm;
use qcs_rng::SeedableRng;

use crate::cache::{CanonicalHit, CanonicalInfo, ResultCache};
use crate::compile::{run_job, CanonicalJob, Job};
use crate::event::{spawn_loops, LoopShared};
use crate::histogram::LatencyHistogram;
use crate::persist::Store;
use crate::protocol::{
    error_response, shed_response, write_json, CompileRequest, Request, SuiteRequest,
};

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Compute worker count (threads that run compilations).
    pub workers: usize,
    /// Event-loop thread count (threads that own connections and their
    /// non-blocking I/O). Two loops are plenty up to thousands of mostly
    /// idle connections; raise it only when frame decoding itself is the
    /// bottleneck.
    pub event_loops: usize,
    /// Maximum simultaneously admitted connections.
    pub max_connections: usize,
    /// Result-cache byte budget.
    pub cache_bytes: usize,
    /// Mid-frame read deadline: a started frame must finish arriving
    /// within this budget.
    pub frame_deadline: Duration,
    /// Directory for the crash-safe persistent cache (WAL + snapshot,
    /// see [`crate::persist`]). `None` keeps the cache memory-only; with
    /// a directory, the daemon replays it at startup and comes back warm
    /// after any restart — including `kill -9`.
    pub persist_dir: Option<String>,
    /// Semantic caching: on an exact-key miss, reduce the circuit to
    /// canonical form ([`qcs_circuit::canon`]) and serve a structurally
    /// equivalent cached result — relabeled, re-verified — when one
    /// exists. Off turns the cache back into a pure exact-key store.
    pub semantic_cache: bool,
    /// Snap rotation angles to a fixed grid before canonicalizing, so
    /// near-identical parameterized circuits share a canonical identity.
    /// **Approximate serving, off by default**: bucketed hits skip the
    /// statevector equivalence re-check (deliberately — they are not
    /// exactly equivalent) and rely on the structural key guard only.
    pub bucket_angles: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: qcs_bench::default_workers().clamp(2, 16),
            event_loops: 2,
            max_connections: 64,
            cache_bytes: 64 << 20,
            frame_deadline: Duration::from_secs(5),
            persist_dir: None,
            semantic_cache: true,
            bucket_angles: false,
        }
    }
}

/// How often idle workers re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Back-off hint handed to load-shed clients.
const SHED_RETRY_MS: u64 = 100;

/// Locks a mutex, recovering from poisoning. Every shared structure here
/// (job queue, cache, stats) maintains its invariants between
/// operations, so a panic that unwound through a guard — e.g. an
/// injected failpoint — leaves consistent data behind and serving can
/// continue.
pub(crate) fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Renders a caught panic payload into a one-line message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Per-stage cold-compile histograms for one `placer/router` pipeline.
/// Separating strategies keeps the predictive deadline rejection honest:
/// a trivial/trivial compile must not be refused against a p95 that sabre
/// traffic inflated, and a sabre request must not sneak past a p95 that
/// trivial traffic diluted.
#[derive(Default)]
struct StageStats {
    decompose: LatencyHistogram,
    place: LatencyHistogram,
    route: LatencyHistogram,
    schedule: LatencyHistogram,
}

impl StageStats {
    fn record(&mut self, timing: &qcs_core::mapper::StageTiming) {
        self.decompose.record(timing.decompose_micros as u64);
        self.place.record(timing.place_micros as u64);
        self.route.record(timing.route_micros as u64);
        self.schedule.record(timing.schedule_micros as u64);
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("decompose", self.decompose.to_json()),
            ("place", self.place.to_json()),
            ("route", self.route.to_json()),
            ("schedule", self.schedule.to_json()),
        ])
    }
}

/// Counters for the mapper portfolio (auto-strategy and raced jobs).
#[derive(Default)]
struct PortfolioCounters {
    /// Jobs that ran through the portfolio (cache misses only; hits
    /// never re-run the selector).
    jobs: u64,
    /// Serving mode tallies, matching `PortfolioMode::as_str`.
    selected: u64,
    raced: u64,
    cheapest: u64,
    ladder: u64,
    /// Runs where the selector panicked or was error-injected.
    selector_failed: u64,
    /// Lanes launched into races / lanes discarded across all runs.
    lanes_raced: u64,
    lanes_discarded: u64,
    /// Runs whose path was altered by the deadline budget (served but
    /// not cached).
    budget_limited: u64,
    /// Serving-lane tally by lane name (`ladder` for the last resort).
    wins: std::collections::BTreeMap<String, u64>,
}

impl PortfolioCounters {
    fn record(&mut self, report: &qcs_core::portfolio::PortfolioReport) {
        use qcs_core::portfolio::PortfolioMode;
        self.jobs += 1;
        match report.mode {
            PortfolioMode::Selected => self.selected += 1,
            PortfolioMode::Raced => self.raced += 1,
            PortfolioMode::Cheapest => self.cheapest += 1,
            PortfolioMode::Ladder => self.ladder += 1,
        }
        self.selector_failed += u64::from(report.selector_failed);
        self.lanes_raced += report.raced as u64;
        self.lanes_discarded += report.discarded as u64;
        self.budget_limited += u64::from(report.budget_limited);
        *self.wins.entry(report.lane.clone()).or_insert(0) += 1;
    }

    fn to_json(&self) -> Json {
        let wins = self
            .wins
            .iter()
            .map(|(lane, count)| (lane.clone(), Json::from(*count)))
            .collect();
        Json::object([
            ("jobs", Json::from(self.jobs)),
            ("selected", Json::from(self.selected)),
            ("raced", Json::from(self.raced)),
            ("cheapest", Json::from(self.cheapest)),
            ("ladder", Json::from(self.ladder)),
            ("selector_failed", Json::from(self.selector_failed)),
            ("lanes_raced", Json::from(self.lanes_raced)),
            ("lanes_discarded", Json::from(self.lanes_discarded)),
            ("budget_limited", Json::from(self.budget_limited)),
            ("wins", Json::Object(wins)),
        ])
    }
}

struct ServeStats {
    total: LatencyHistogram,
    /// Aggregate per-stage histograms across every strategy (the
    /// long-standing `latency_micros` members).
    stages: StageStats,
    /// The same stages keyed by the `placer/router` pipeline that
    /// actually served, for strategy-aware deadline prediction.
    by_strategy: std::collections::BTreeMap<String, StageStats>,
    portfolio: PortfolioCounters,
    /// Cost of the canonicalization stages themselves (qubit relabeling
    /// and commutation normal-ordering), recorded on every exact-key
    /// miss while semantic caching is on — the price paid for the shot
    /// at a canonical hit.
    relabel: LatencyHistogram,
    normalize: LatencyHistogram,
}

impl ServeStats {
    fn new() -> Self {
        ServeStats {
            total: LatencyHistogram::default(),
            stages: StageStats::default(),
            by_strategy: std::collections::BTreeMap::new(),
            portfolio: PortfolioCounters::default(),
            relabel: LatencyHistogram::default(),
            normalize: LatencyHistogram::default(),
        }
    }
}

/// Bound on remembered request ids: enough to catch any realistic retry
/// window, small enough to never matter for memory.
const SEEN_IDS_CAP: usize = 4096;

/// A bounded memory of client request ids, for telling retries apart
/// from new requests. Oldest ids age out first.
struct SeenIds {
    set: HashSet<String>,
    order: VecDeque<String>,
}

impl SeenIds {
    fn new() -> Self {
        SeenIds {
            set: HashSet::new(),
            order: VecDeque::new(),
        }
    }

    /// Records `id`; returns true when it was already known (a retry).
    fn note(&mut self, id: &str) -> bool {
        if self.set.contains(id) {
            return true;
        }
        self.set.insert(id.to_string());
        self.order.push_back(id.to_string());
        if self.order.len() > SEEN_IDS_CAP {
            if let Some(oldest) = self.order.pop_front() {
                self.set.remove(&oldest);
            }
        }
        false
    }
}

/// One compute job queued from an event loop to the worker pool. The
/// `(loop_idx, token)` pair routes the finished response back to the
/// connection that asked.
pub(crate) struct WorkItem {
    pub(crate) loop_idx: usize,
    pub(crate) token: u64,
    pub(crate) request: Request,
}

pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    local_addr: SocketAddr,
    pub(crate) shutdown: AtomicBool,
    jobs: Mutex<VecDeque<WorkItem>>,
    job_signal: Condvar,
    /// Admitted (not yet reaped) connections, across all event loops.
    pub(crate) active: AtomicUsize,
    loops: OnceLock<Vec<Arc<LoopShared>>>,
    jobs_served: AtomicU64,
    jobs_panicked: AtomicU64,
    pub(crate) connections_panicked: AtomicU64,
    connections_shed: AtomicU64,
    connections_admitted: AtomicU64,
    requests_retried: AtomicU64,
    /// Requests rejected because their end-to-end deadline budget ran
    /// out (or provably would) — total, and the subset refused *before*
    /// any compilation work was spent on them.
    deadline_rejected: AtomicU64,
    deadline_rejected_precompile: AtomicU64,
    /// Injected transport faults observed by the event loops.
    pub(crate) transport_faults: AtomicU64,
    persist_errors: AtomicU64,
    /// Requests served from a structurally equivalent cache entry (a
    /// canonical hit that passed replay + re-verification).
    canonical_hits: AtomicU64,
    /// Canonical hits that *failed* replay or re-verification and fell
    /// back to a cold compile. Nonzero means the canonical index aimed
    /// at an entry the verifier refused — always safe (the client gets
    /// a fresh compile), but worth watching.
    canonical_rejected: AtomicU64,
    /// Complete request frames decoded off sockets.
    pub(crate) frames_in: AtomicU64,
    /// Response frames queued to write buffers.
    pub(crate) frames_out: AtomicU64,
    /// Times a read batch ended with a frame still incomplete (the
    /// partial-frame accumulation path).
    pub(crate) partial_reads: AtomicU64,
    /// Times an event loop was woken through its loopback waker.
    pub(crate) wakeups: AtomicU64,
    seen_ids: Mutex<SeenIds>,
    cache: Mutex<ResultCache>,
    persist: Option<Mutex<Store>>,
    stats: Mutex<ServeStats>,
}

impl Shared {
    fn event_loops(&self) -> &[Arc<LoopShared>] {
        self.loops.get().map(Vec::as_slice).unwrap_or(&[])
    }

    /// Queues a compute job for the worker pool (called from event
    /// loops).
    pub(crate) fn enqueue_job(&self, item: WorkItem) {
        lock_recovering(&self.jobs).push_back(item);
        self.job_signal.notify_one();
    }

    pub(crate) fn initiate_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // already shutting down
        }
        self.job_signal.notify_all();
        for event_loop in self.event_loops() {
            event_loop.wake();
        }
        // The accept thread may be parked in accept(): poke it awake.
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// What the daemon's threads reported at join time.
///
/// Panic isolation means worker threads normally survive even panicking
/// jobs; a nonzero [`threads_panicked`](ShutdownStats::threads_panicked)
/// therefore signals a bug in the serving loop itself, not in a job.
/// Shutdown still completes cleanly either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShutdownStats {
    /// Daemon threads that exited normally.
    pub threads_joined: usize,
    /// Daemon threads that died panicking (their panic is swallowed at
    /// join time so shutdown always completes).
    pub threads_panicked: usize,
}

/// The running daemon: address + thread handles.
///
/// Dropping the handle without calling [`shutdown`](ServerHandle::shutdown)
/// or [`wait`](ServerHandle::wait) detaches the threads (the daemon keeps
/// running until a protocol `shutdown` arrives).
pub struct ServerHandle {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    loop_threads: Vec<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The daemon's bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Requests shutdown and joins every daemon thread.
    pub fn shutdown(mut self) -> ShutdownStats {
        self.shared.initiate_shutdown();
        self.join_all()
    }

    /// Blocks until the daemon shuts down (via a protocol `shutdown`
    /// request) and joins every daemon thread.
    pub fn wait(mut self) -> ShutdownStats {
        self.join_all()
    }

    fn join_all(&mut self) -> ShutdownStats {
        let mut stats = ShutdownStats::default();
        let threads = self
            .accept_thread
            .take()
            .into_iter()
            .chain(self.loop_threads.drain(..))
            .chain(self.worker_threads.drain(..));
        for t in threads {
            match t.join() {
                Ok(()) => stats.threads_joined += 1,
                Err(_) => stats.threads_panicked += 1,
            }
        }
        stats
    }
}

/// Namespace for [`Server::start`].
pub struct Server;

impl Server {
    /// Binds the listener, spawns the event-loop pool, the compute
    /// worker pool and the accept thread, and returns a handle.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind failure, unparsable address).
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        assert!(config.workers > 0, "worker count must be at least 1");
        assert!(
            config.event_loops > 0,
            "event-loop count must be at least 1"
        );
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;

        // Warm restart: replay the persist directory into the in-memory
        // cache before the first connection is accepted. Recovery order
        // is LRU-faithful, so the warmed cache evicts the same way the
        // pre-crash one would have.
        let mut cache = ResultCache::new(config.cache_bytes);
        let persist = match &config.persist_dir {
            Some(dir) => {
                let (store, recovered) = Store::open(Path::new(dir))?;
                for record in recovered {
                    // v2 records re-warm the canonical index too, so a
                    // restarted daemon serves canonical hits immediately.
                    cache.insert_with_canonical(
                        record.digest,
                        record.key,
                        record.payload,
                        record.canonical,
                    );
                }
                Some(Mutex::new(store))
            }
            None => None,
        };

        let shared = Arc::new(Shared {
            config,
            local_addr,
            shutdown: AtomicBool::new(false),
            jobs: Mutex::new(VecDeque::new()),
            job_signal: Condvar::new(),
            active: AtomicUsize::new(0),
            loops: OnceLock::new(),
            jobs_served: AtomicU64::new(0),
            jobs_panicked: AtomicU64::new(0),
            connections_panicked: AtomicU64::new(0),
            connections_shed: AtomicU64::new(0),
            connections_admitted: AtomicU64::new(0),
            requests_retried: AtomicU64::new(0),
            deadline_rejected: AtomicU64::new(0),
            deadline_rejected_precompile: AtomicU64::new(0),
            transport_faults: AtomicU64::new(0),
            persist_errors: AtomicU64::new(0),
            canonical_hits: AtomicU64::new(0),
            canonical_rejected: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            partial_reads: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
            seen_ids: Mutex::new(SeenIds::new()),
            cache: Mutex::new(cache),
            persist,
            stats: Mutex::new(ServeStats::new()),
        });

        let (loop_shared, loop_threads) = spawn_loops(&shared, shared.config.event_loops)?;
        shared
            .loops
            .set(loop_shared)
            .unwrap_or_else(|_| unreachable!("loops are set exactly once, here"));

        let worker_threads = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qcs-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a worker thread")
            })
            .collect();

        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("qcs-serve-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .expect("spawning the accept thread");

        Ok(ServerHandle {
            shared,
            accept_thread: Some(accept_thread),
            loop_threads,
            worker_threads,
        })
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    let loops = shared.event_loops();
    let mut next_loop = 0usize;
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break; // the stream (often the shutdown self-poke) is dropped
        }
        let Ok(stream) = stream else { continue };
        if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
            shared.connections_shed.fetch_add(1, Ordering::SeqCst);
            reject_connection(stream);
            continue;
        }
        // Admit: the counter covers the connection until its owning loop
        // reaps it (including registration-failpoint deaths).
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.connections_admitted.fetch_add(1, Ordering::SeqCst);
        loops[next_loop].inject(stream);
        next_loop = (next_loop + 1) % loops.len();
    }
}

/// Tells an over-limit client why it is being turned away and when to
/// come back.
fn reject_connection(mut stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = write_json(
        &mut stream,
        &shed_response("server at connection capacity, retry later", SHED_RETRY_MS),
    );
}

fn worker_loop(shared: &Shared) {
    loop {
        let item = {
            let mut jobs = lock_recovering(&shared.jobs);
            loop {
                if let Some(item) = jobs.pop_front() {
                    break Some(item);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = shared
                    .job_signal
                    .wait_timeout(jobs, POLL_INTERVAL)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                jobs = q;
            }
        };
        let Some(item) = item else { return };
        // Belt and braces: the per-job catch in `respond_compile` should
        // make this outer catch unreachable, but a worker must never die
        // — it would strand every connection whose jobs it was serving.
        let response = std::panic::catch_unwind(AssertUnwindSafe(|| match &item.request {
            Request::Compile(request) => respond_compile(shared, request),
            Request::CompileSuite(request) => respond_suite(shared, request),
            // Control requests are answered inline by the event loops
            // and never reach the job queue.
            Request::Stats | Request::Ping | Request::Shutdown => {
                error_response("internal error: control request routed to a compute worker")
                    .to_compact_string()
                    .into_bytes()
            }
        }))
        .unwrap_or_else(|panic| {
            shared.jobs_panicked.fetch_add(1, Ordering::SeqCst);
            error_response(format!(
                "request handler panicked: {}",
                panic_message(panic.as_ref())
            ))
            .to_compact_string()
            .into_bytes()
        });
        if let Some(event_loop) = shared.event_loops().get(item.loop_idx) {
            event_loop.complete(item.token, response);
        }
    }
}

/// A client-presentable serving error, optionally carrying a
/// machine-readable code (today only
/// [`crate::protocol::CODE_DEADLINE_EXCEEDED`]).
struct ServeError {
    code: Option<&'static str>,
    message: String,
}

impl ServeError {
    fn plain(message: impl Into<String>) -> ServeError {
        ServeError {
            code: None,
            message: message.into(),
        }
    }

    fn deadline(message: impl Into<String>) -> ServeError {
        ServeError {
            code: Some(crate::protocol::CODE_DEADLINE_EXCEEDED),
            message: message.into(),
        }
    }

    fn response(&self) -> Json {
        match self.code {
            Some(code) => crate::protocol::coded_error_response(code, self.message.clone()),
            None => error_response(self.message.clone()),
        }
    }
}

/// Minimum cold compiles a histogram needs before its p95 is trusted
/// for predictive rejection.
const MIN_PREDICTION_OBSERVATIONS: u64 = 8;

/// Sum of the per-stage p95 upper bounds of `stages`, or 0 until enough
/// cold compiles have been observed to trust it. Stage histograms record
/// *misses only* (hits skip them entirely), so this never inflates from
/// cache traffic.
fn stage_p95_sum(stages: &StageStats) -> u64 {
    if stages.decompose.count() < MIN_PREDICTION_OBSERVATIONS {
        return 0;
    }
    stages.decompose.quantile_upper_micros(0.95)
        + stages.place.quantile_upper_micros(0.95)
        + stages.route.quantile_upper_micros(0.95)
        + stages.schedule.quantile_upper_micros(0.95)
}

/// The cold-compile cost a fresh miss should be budgeted for,
/// strategy-aware: the requested pipeline's own per-stage p95s when that
/// strategy has been observed enough, otherwise the cross-strategy
/// aggregate (which a trained strategy histogram always refines — a
/// sabre request is judged against sabre history, not against a p95
/// diluted by trivial traffic).
fn predicted_cold_micros(stats: &ServeStats, strategy: &str) -> u64 {
    match stats.by_strategy.get(strategy) {
        Some(stages) => {
            let own = stage_p95_sum(stages);
            if own > 0 {
                own
            } else {
                stage_p95_sum(&stats.stages)
            }
        }
        None => stage_p95_sum(&stats.stages),
    }
}

/// Compiles one job through the cache; returns the canonical payload or
/// a client-presentable error. Records histograms and counters.
///
/// Deadline discipline: `deadline_ms` is the request's *remaining*
/// end-to-end budget (the router already subtracted its own elapsed
/// time). A cache miss whose remaining budget cannot cover the requested
/// strategy's observed per-stage p95 cold cost is refused up front — a
/// structured `deadline_exceeded` beats burning a worker on a doomed
/// job. Portfolio (`auto`/`race`) jobs are never deadline-rejected:
/// their remaining budget flows into the racing engine, which degrades
/// *inside* it and always returns a verified result.
fn compile_via_cache(
    shared: &Shared,
    request: &CompileRequest,
) -> Result<Arc<Vec<u8>>, ServeError> {
    let started = Instant::now();
    let deadline = request.deadline_ms.map(Duration::from_millis);
    let over_deadline = |when: &str| {
        deadline
            .filter(|&d| started.elapsed() > d)
            .map(|d| format!("deadline of {} ms exceeded {when}", d.as_millis()))
    };

    let mut job = Job::resolve(request).map_err(|e| ServeError::plain(e.to_string()))?;
    // Chaos-test failpoint, deliberately *before* the cache lookup so
    // every request — cache hit or miss — can be made to fail. Panics
    // unwind into `respond_compile`'s isolation; triggers mutate the job
    // (e.g. a `degrade:...` calibration outage).
    match qcs_faults::hit("serve.worker.job") {
        Hit::Pass => {}
        Hit::Error(message) => return Err(ServeError::plain(format!("injected fault: {message}"))),
        Hit::Triggered(tag) => job
            .apply_trigger(&tag)
            .map_err(|e| ServeError::plain(e.to_string()))?,
    }
    let digest = job.digest();
    let full_key = job.full_key();

    let cached = lock_recovering(&shared.cache).get(digest, &full_key);
    // On an exact miss, try the semantic layer: a canonical-form hit is
    // replayed (relabeled + re-verified) and served; otherwise the
    // canonical identity is kept so the cold compile below can register
    // it for future twins.
    let (cached, canonical_job) = match cached {
        Some(payload) => (Some(payload), None),
        None => try_canonical(shared, &job, digest, &full_key),
    };
    let payload = match cached {
        Some(payload) => payload,
        None => {
            // Predictive rejection applies to fixed-pipeline jobs only:
            // a portfolio job spends whatever budget is left degrading
            // gracefully instead of being refused.
            if !job.portfolio() {
                if let Some(message) = over_deadline("before compilation started") {
                    shared.deadline_rejected.fetch_add(1, Ordering::SeqCst);
                    shared
                        .deadline_rejected_precompile
                        .fetch_add(1, Ordering::SeqCst);
                    return Err(ServeError::deadline(message));
                }
                if let Some(d) = deadline {
                    let remaining = d.saturating_sub(started.elapsed());
                    let strategy = format!("{}/{}", job.config.placer, job.config.router);
                    let predicted =
                        predicted_cold_micros(&lock_recovering(&shared.stats), &strategy);
                    if predicted > 0 && Duration::from_micros(predicted) > remaining {
                        shared.deadline_rejected.fetch_add(1, Ordering::SeqCst);
                        shared
                            .deadline_rejected_precompile
                            .fetch_add(1, Ordering::SeqCst);
                        return Err(ServeError::deadline(format!(
                            "remaining budget of {} ms cannot cover {strategy}'s observed \
                             cold-compile p95 of {} us; rejected before compilation",
                            remaining.as_millis(),
                            predicted
                        )));
                    }
                }
            }
            let remaining = deadline.map(|d| d.saturating_sub(started.elapsed()));
            let output = crate::compile::run_job_with_deadline(&job, remaining)
                .map_err(|e| ServeError::plain(e.to_string()))?;
            let payload = Arc::new(output.payload);
            if output.cacheable {
                // The fresh entry registers its canonical identity (when
                // semantic caching computed one) so structurally
                // equivalent future requests can hit it.
                let info = canonical_job.map(|cjob| CanonicalInfo {
                    digest: cjob.digest,
                    key: Arc::new(cjob.key),
                    relabel: Arc::new(cjob.form.relabel),
                    initial_layout: Arc::new(output.initial_layout.clone()),
                    final_layout: Arc::new(output.final_layout.clone()),
                });
                lock_recovering(&shared.cache).insert_with_canonical(
                    digest,
                    full_key.clone(),
                    payload.as_ref().clone(),
                    info.clone(),
                );
                persist_entry(shared, digest, &full_key, &payload, info.as_ref());
            }
            let timing = output.timing;
            let mut stats = lock_recovering(&shared.stats);
            stats.stages.record(&timing);
            stats
                .by_strategy
                .entry(output.strategy.clone())
                .or_default()
                .record(&timing);
            if let Some(report) = &output.portfolio {
                stats.portfolio.record(report);
            }
            payload
        }
    };

    shared.jobs_served.fetch_add(1, Ordering::SeqCst);
    lock_recovering(&shared.stats)
        .total
        .record(started.elapsed().as_micros() as u64);

    // A portfolio job that got this far produced a verified result
    // inside its budget by construction; only fixed-pipeline jobs can
    // finish over-deadline and be turned into a structured rejection.
    if !job.portfolio() {
        if let Some(message) = over_deadline("by the finished job") {
            shared.deadline_rejected.fetch_add(1, Ordering::SeqCst);
            return Err(ServeError::deadline(message));
        }
    }
    Ok(payload)
}

/// Devices small enough for the statevector equivalence re-check on a
/// canonical hit (mirrors the cold-compile verifier's
/// `equiv_max_qubits`). Wider devices rely on the structural guarantee
/// alone: byte-identical canonical key, bijective relabeling.
const SEMANTIC_VERIFY_MAX_QUBITS: usize = 12;

/// Semantic-cache lookup after an exact-key miss. Canonicalizes the
/// job (recording the stage costs), probes the canonical index, and on
/// a hit replays the cached twin's result for this circuit. Returns the
/// served payload, or — on a semantic miss — the canonical identity for
/// the cold compile to register with its fresh entry.
fn try_canonical(
    shared: &Shared,
    job: &Job,
    exact_digest: u64,
    exact_key: &[u8],
) -> (Option<Arc<Vec<u8>>>, Option<CanonicalJob>) {
    if !shared.config.semantic_cache {
        return (None, None);
    }
    let canon_config = CanonConfig {
        bucket_angles: shared.config.bucket_angles,
        ..CanonConfig::default()
    };
    let cjob = job.canonicalize(&canon_config);
    {
        let mut stats = lock_recovering(&shared.stats);
        stats.relabel.record(cjob.form.relabel_micros);
        stats.normalize.record(cjob.form.normalize_micros);
    }
    let hit = lock_recovering(&shared.cache).get_canonical(cjob.digest, &cjob.key);
    let Some(hit) = hit else {
        return (None, Some(cjob));
    };
    match replay_canonical(job, &cjob, &hit, shared.config.bucket_angles) {
        Ok(replay) => {
            shared.canonical_hits.fetch_add(1, Ordering::SeqCst);
            let payload = Arc::new(replay.payload);
            // Promote: the twin's result now also lives under *this*
            // job's exact identity, carrying its own relabeling and
            // layouts — the next rename of the same structure can chain
            // through it.
            let info = CanonicalInfo {
                digest: cjob.digest,
                key: Arc::new(cjob.key),
                relabel: Arc::new(cjob.form.relabel),
                initial_layout: Arc::new(replay.initial_layout),
                final_layout: Arc::new(replay.final_layout),
            };
            lock_recovering(&shared.cache).insert_with_canonical(
                exact_digest,
                exact_key.to_vec(),
                payload.as_ref().clone(),
                Some(info.clone()),
            );
            persist_entry(shared, exact_digest, exact_key, &payload, Some(&info));
            (Some(payload), None)
        }
        Err(_reason) => {
            // The replay refused (stale entry shape, failed equivalence,
            // panicking simulator). Fall back to a cold compile — the
            // client always gets a verified fresh result — and surface
            // the event in stats.
            shared.canonical_rejected.fetch_add(1, Ordering::SeqCst);
            (None, Some(cjob))
        }
    }
}

/// A successfully replayed canonical hit: the rewritten payload plus
/// the incoming twin's own layouts.
struct CanonicalReplay {
    payload: Vec<u8>,
    initial_layout: Vec<usize>,
    final_layout: Vec<usize>,
}

/// Replays a canonical hit for an incoming twin: composes the cached
/// mapping through both relabelings, re-verifies the mapped circuit
/// against *this* job's circuit, and rewrites the payload's identity
/// fields (digest, circuit name). Returns the payload bytes plus the
/// twin's own initial/final layouts.
///
/// # Errors
///
/// A one-line reason whenever anything about the cached entry cannot be
/// proven right for this circuit; the caller falls back to compiling.
fn replay_canonical(
    job: &Job,
    cjob: &CanonicalJob,
    hit: &CanonicalHit,
    bucket_angles: bool,
) -> Result<CanonicalReplay, String> {
    let width = job.circuit.qubit_count();
    let r_b = &cjob.form.relabel;
    if r_b.len() != width
        || hit.relabel.len() != width
        || hit.initial_layout.len() != width
        || hit.final_layout.len() != width
    {
        return Err("cached canonical entry width mismatch".to_string());
    }
    // Invert the cached twin's relabeling (original A → canonical).
    let mut inv_a = vec![usize::MAX; width];
    for (old, &new) in hit.relabel.iter().enumerate() {
        if new >= width || inv_a[new] != usize::MAX {
            return Err("cached relabeling is not a permutation".to_string());
        }
        inv_a[new] = old;
    }
    // This circuit's qubit v names the same wire as canonical qubit
    // r_b[v], which is the twin's qubit inv_a[r_b[v]] — so v inherits
    // that qubit's physical assignment.
    let mut initial = vec![0usize; width];
    let mut final_layout = vec![0usize; width];
    for v in 0..width {
        let c = r_b[v];
        if c >= width {
            return Err("relabeling out of range".to_string());
        }
        let a = inv_a[c];
        initial[v] = hit.initial_layout[a];
        final_layout[v] = hit.final_layout[a];
    }

    let text = std::str::from_utf8(&hit.payload).map_err(|e| format!("payload not UTF-8: {e}"))?;
    let mut value = qcs_json::parse(text).map_err(|e| format!("payload not JSON: {e}"))?;
    let qasm_text = value
        .get("qasm")
        .and_then(Json::as_str)
        .ok_or_else(|| "payload carries no qasm".to_string())?;

    // Statevector re-verification on small devices, exactly as the cold
    // path's verifier would: the cached *mapped* circuit, under the
    // composed layouts, must implement this request's circuit. Bucketed
    // angles are deliberately not exactly equivalent, so that opt-in
    // mode serves on the structural guarantee alone.
    let device_qubits = job.backend.qubit_count();
    if !bucket_angles && device_qubits <= SEMANTIC_VERIFY_MAX_QUBITS {
        let native = qasm::parse(qasm_text).map_err(|e| format!("cached qasm rejected: {e}"))?;
        let seed = circuit_digest(&job.circuit) ^ 0x5345_4D43; // "SEMC"
        let verdict = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let mut rng = qcs_rng::ChaCha8Rng::seed_from_u64(seed);
            qcs_sim::equiv::mapped_equivalent(
                &job.circuit,
                &native,
                device_qubits,
                &initial,
                &final_layout,
                2,
                &mut rng,
            )
        }));
        match verdict {
            Ok(Ok(())) => {}
            Ok(Err(e)) => return Err(format!("replayed mapping failed re-verification: {e}")),
            Err(_) => return Err("re-verification panicked".to_string()),
        }
    }

    // The payload's identity fields describe the twin; rewrite them for
    // this request so clients see their own digest and circuit name.
    value.set("digest", format!("{:016x}", job.digest()));
    if let Some(report) = value.get("report") {
        let mut report = report.clone();
        report.set("circuit_name", job.circuit.name().to_string());
        value.set("report", report);
    }
    Ok(CanonicalReplay {
        payload: value.to_compact_string().into_bytes(),
        initial_layout: initial,
        final_layout,
    })
}

/// Durably logs a fresh cache entry into the persist store (when one is
/// configured), folding the WAL into a snapshot once it outgrows the
/// threshold. Persistence failures are counted in `persist_errors` but
/// never fail the request: the daemon keeps serving from memory.
fn persist_entry(
    shared: &Shared,
    digest: u64,
    key: &[u8],
    payload: &[u8],
    canonical: Option<&CanonicalInfo>,
) {
    let Some(persist) = &shared.persist else {
        return;
    };
    let mut store = lock_recovering(persist);
    if store.append(digest, key, payload, canonical).is_err() {
        shared.persist_errors.fetch_add(1, Ordering::SeqCst);
    }
    if store.should_compact() {
        let entries = lock_recovering(&shared.cache).entries_by_recency();
        if store.compact(&entries).is_err() {
            shared.persist_errors.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// The canonical payload with the client's request id spliced in as the
/// first member. The cached bytes stay id-free (they are shared across
/// clients); only this one response copy carries the echo.
fn payload_with_request_id(payload: &[u8], id: &str) -> Vec<u8> {
    let id_json = Json::from(id.to_string()).to_compact_string();
    let mut out = Vec::with_capacity(payload.len() + id_json.len() + 16);
    out.extend_from_slice(b"{\"request_id\":");
    out.extend_from_slice(id_json.as_bytes());
    out.push(b',');
    out.extend_from_slice(&payload[1..]);
    out
}

/// Prepends a `request_id` member to an error-shaped response when the
/// request carried one.
fn tag_request_id(value: Json, id: &Option<String>) -> Json {
    match (value, id) {
        (Json::Object(mut members), Some(id)) => {
            members.insert(0, ("request_id".to_string(), Json::from(id.clone())));
            Json::Object(members)
        }
        (value, _) => value,
    }
}

/// Serves one `compile` request, returning the response payload bytes
/// (unframed — the owning event loop adds the length prefix).
fn respond_compile(shared: &Shared, request: &CompileRequest) -> Vec<u8> {
    // A request id seen before marks a client retry — worth counting
    // separately from organic traffic when reading stats after an
    // incident.
    if let Some(id) = &request.request_id {
        if lock_recovering(&shared.seen_ids).note(id) {
            shared.requests_retried.fetch_add(1, Ordering::SeqCst);
        }
    }
    // Panic isolation: a compile that panics — a pipeline bug or an
    // injected failpoint — becomes a structured error frame on this one
    // connection. The worker, the job queue and the cache all survive,
    // and the shared locks recover from any poisoning the unwind caused.
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| compile_via_cache(shared, request)));
    match outcome {
        Ok(Ok(payload)) => match &request.request_id {
            Some(id) => payload_with_request_id(&payload, id),
            None => payload.as_ref().clone(),
        },
        Ok(Err(err)) => tag_request_id(err.response(), &request.request_id)
            .to_compact_string()
            .into_bytes(),
        Err(panic) => {
            shared.jobs_panicked.fetch_add(1, Ordering::SeqCst);
            let message = format!("compilation panicked: {}", panic_message(panic.as_ref()));
            tag_request_id(error_response(message), &request.request_id)
                .to_compact_string()
                .into_bytes()
        }
    }
}

/// Serves one `compile_suite` request, returning the response payload
/// bytes (unframed).
fn respond_suite(shared: &Shared, request: &SuiteRequest) -> Vec<u8> {
    if request.count == 0 || request.count > 10_000 {
        return error_response("suite count must be in 1..=10000")
            .to_compact_string()
            .into_bytes();
    }
    let backend = match crate::catalog::resolve_backend(&request.device) {
        Ok(backend) => backend,
        Err(e) => {
            return error_response(e.to_string())
                .to_compact_string()
                .into_bytes()
        }
    };
    let benchmarks = generate_suite(&SuiteConfig {
        count: request.count,
        max_qubits: request.max_qubits,
        max_gates: request.max_gates,
        seed: request.seed,
    });

    // Fan the batch across the claim-by-atomic pool; each item goes
    // through the same cache path as a single request, and the slot
    // discipline keeps results in deterministic input order.
    let results = qcs_bench::run_claimed(&benchmarks, shared.config.workers, |_, benchmark| {
        let job = Job {
            circuit: benchmark.circuit.clone(),
            backend: backend.clone(),
            config: request.config.clone(),
            race: false,
        };
        let digest = job.digest();
        let full_key = job.full_key();
        let cached = lock_recovering(&shared.cache).get(digest, &full_key);
        let outcome: Result<Arc<Vec<u8>>, String> = match cached {
            Some(payload) => Ok(payload),
            None => {
                // Same panic isolation as the single-compile path: one
                // panicking benchmark yields one error row, not a dead
                // batch engine.
                match std::panic::catch_unwind(AssertUnwindSafe(|| run_job(&job))) {
                    Ok(Ok(output)) => {
                        let payload = Arc::new(output.payload);
                        // Suite jobs run unbounded, so portfolio results
                        // here are always complete — but honor the flag
                        // anyway so the invariant lives in one place.
                        if output.cacheable {
                            lock_recovering(&shared.cache).insert(
                                digest,
                                full_key.clone(),
                                payload.as_ref().clone(),
                            );
                            persist_entry(shared, digest, &full_key, &payload, None);
                        }
                        if let Some(report) = &output.portfolio {
                            lock_recovering(&shared.stats).portfolio.record(report);
                        }
                        Ok(payload)
                    }
                    Ok(Err(e)) => Err(e.to_string()),
                    Err(panic) => {
                        shared.jobs_panicked.fetch_add(1, Ordering::SeqCst);
                        Err(format!(
                            "compilation panicked: {}",
                            panic_message(panic.as_ref())
                        ))
                    }
                }
            }
        };
        match outcome {
            Ok(payload) => {
                shared.jobs_served.fetch_add(1, Ordering::SeqCst);
                let text = std::str::from_utf8(&payload).expect("payloads are UTF-8");
                let value = qcs_json::parse(text).expect("payloads are valid JSON");
                Json::object([
                    ("name", Json::from(benchmark.name.clone())),
                    ("result", value),
                ])
            }
            Err(message) => Json::object([
                ("name", Json::from(benchmark.name.clone())),
                ("result", error_response(message)),
            ]),
        }
    });

    let response = Json::object([
        ("type", Json::from("suite_result")),
        ("results", Json::Array(results)),
    ]);
    response.to_compact_string().into_bytes()
}

pub(crate) fn stats_json(shared: &Shared) -> Json {
    let cache = lock_recovering(&shared.cache).stats();
    let stats = lock_recovering(&shared.stats);
    let mut value = Json::object([
        ("type", Json::from("stats")),
        (
            "jobs",
            Json::from(shared.jobs_served.load(Ordering::SeqCst)),
        ),
        (
            "active_connections",
            Json::from(shared.active.load(Ordering::SeqCst)),
        ),
        (
            "requests_retried",
            Json::from(shared.requests_retried.load(Ordering::SeqCst)),
        ),
        (
            "deadline",
            Json::object([
                (
                    "rejected",
                    Json::from(shared.deadline_rejected.load(Ordering::SeqCst)),
                ),
                (
                    "rejected_precompile",
                    Json::from(shared.deadline_rejected_precompile.load(Ordering::SeqCst)),
                ),
                (
                    "predicted_cold_micros",
                    Json::from(stage_p95_sum(&stats.stages)),
                ),
                (
                    "predicted_cold_micros_by_strategy",
                    Json::Object(
                        stats
                            .by_strategy
                            .iter()
                            .map(|(strategy, stages)| {
                                (strategy.clone(), Json::from(stage_p95_sum(stages)))
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        ("portfolio", stats.portfolio.to_json()),
        (
            "transport",
            Json::object([
                ("event_loops", Json::from(shared.config.event_loops)),
                (
                    "connections_admitted",
                    Json::from(shared.connections_admitted.load(Ordering::SeqCst)),
                ),
                (
                    "frames_in",
                    Json::from(shared.frames_in.load(Ordering::SeqCst)),
                ),
                (
                    "frames_out",
                    Json::from(shared.frames_out.load(Ordering::SeqCst)),
                ),
                (
                    "partial_reads",
                    Json::from(shared.partial_reads.load(Ordering::SeqCst)),
                ),
                ("wakeups", Json::from(shared.wakeups.load(Ordering::SeqCst))),
            ]),
        ),
        (
            "faults",
            Json::object([
                (
                    "jobs_panicked",
                    Json::from(shared.jobs_panicked.load(Ordering::SeqCst)),
                ),
                (
                    "connections_panicked",
                    Json::from(shared.connections_panicked.load(Ordering::SeqCst)),
                ),
                (
                    "connections_shed",
                    Json::from(shared.connections_shed.load(Ordering::SeqCst)),
                ),
                (
                    "transport_faults",
                    Json::from(shared.transport_faults.load(Ordering::SeqCst)),
                ),
            ]),
        ),
        (
            "cache",
            Json::object([
                ("hits", Json::from(cache.hits)),
                ("misses", Json::from(cache.misses)),
                ("evictions", Json::from(cache.evictions)),
                ("hash_conflicts", Json::from(cache.hash_conflicts)),
                ("entries", Json::from(cache.entries)),
                ("bytes", Json::from(cache.bytes)),
                ("hit_rate", Json::from(cache.hit_rate())),
            ]),
        ),
        (
            "semantic",
            Json::object([
                ("enabled", Json::from(shared.config.semantic_cache)),
                ("bucket_angles", Json::from(shared.config.bucket_angles)),
                (
                    "canonical_hits",
                    Json::from(shared.canonical_hits.load(Ordering::SeqCst)),
                ),
                ("exact_hits", Json::from(cache.hits)),
                // Requests that missed both layers (the cache counts a
                // canonically-served request as an exact miss first).
                (
                    "misses",
                    Json::from(
                        cache
                            .misses
                            .saturating_sub(shared.canonical_hits.load(Ordering::SeqCst)),
                    ),
                ),
                (
                    "canonical_rejected",
                    Json::from(shared.canonical_rejected.load(Ordering::SeqCst)),
                ),
                ("canonical_conflicts", Json::from(cache.canonical_conflicts)),
                ("canonical_entries", Json::from(cache.canonical_entries)),
                ("relabel_micros", stats.relabel.to_json()),
                ("normalize_micros", stats.normalize.to_json()),
            ]),
        ),
        (
            "latency_micros",
            Json::object([
                ("total", stats.total.to_json()),
                ("decompose", stats.stages.decompose.to_json()),
                ("place", stats.stages.place.to_json()),
                ("route", stats.stages.route.to_json()),
                ("schedule", stats.stages.schedule.to_json()),
                (
                    "by_strategy",
                    Json::Object(
                        stats
                            .by_strategy
                            .iter()
                            .map(|(strategy, stages)| (strategy.clone(), stages.to_json()))
                            .collect(),
                    ),
                ),
            ]),
        ),
    ]);
    if let Some(persist) = &shared.persist {
        let p = lock_recovering(persist).stats();
        if let Json::Object(members) = &mut value {
            members.push((
                "persist".to_string(),
                Json::object([
                    ("records_recovered", Json::from(p.records_recovered)),
                    (
                        "legacy_records_recovered",
                        Json::from(p.legacy_records_recovered),
                    ),
                    (
                        "corrupt_records_skipped",
                        Json::from(p.corrupt_records_skipped),
                    ),
                    ("torn_tails_truncated", Json::from(p.torn_tails_truncated)),
                    ("appends", Json::from(p.appends)),
                    (
                        "append_errors",
                        Json::from(shared.persist_errors.load(Ordering::SeqCst)),
                    ),
                    ("compactions", Json::from(p.compactions)),
                    ("wal_bytes", Json::from(p.wal_bytes)),
                    ("snapshot_bytes", Json::from(p.snapshot_bytes)),
                ]),
            ));
        }
    }
    value
}
