//! Chaos suite: the daemon under deterministic fault injection.
//!
//! One sequential test (the `qcs-faults` registry is process-global, so
//! phases must not interleave) drives the acceptance scenario from the
//! degraded-operation work: with worker panics injected and a device
//! with ~10% of couplers disabled, 100 concurrent compile requests all
//! get either a result byte-identical to a fault-free in-process
//! `Mapper` run on the same degraded device, or a structured error
//! frame — zero dropped connections — and `stats` accounts for every
//! injected failure. Expectations are computed *before* any failpoint
//! is armed, since the in-process pipeline shares this process's
//! registry.

use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use qcs_core::config::MapperConfig;
use qcs_faults::{arm, reset, FaultAction, Policy};
use qcs_json::Json;
use qcs_serve::compile::{run_job, Job};
use qcs_serve::protocol::{read_frame, write_frame, CompileRequest, Source};
use qcs_serve::server::{Server, ServerConfig};

/// ~10% of surface-17's couplers disabled, deterministically.
const DEGRADED_DEVICE: &str = "degraded:0:0.1:11:surface17";

fn connect(addr: SocketAddr) -> TcpStream {
    TcpStream::connect(addr).expect("daemon accepts connections")
}

fn exchange(stream: &mut TcpStream, request: &str) -> Vec<u8> {
    write_frame(stream, request.as_bytes()).expect("request frame written");
    read_frame(stream)
        .expect("response frame read")
        .expect("daemon replied before closing")
}

fn exchange_json(stream: &mut TcpStream, request: &str) -> Json {
    let payload = exchange(stream, request);
    qcs_json::parse(std::str::from_utf8(&payload).unwrap()).expect("response is JSON")
}

fn response_type(value: &Json) -> &str {
    value.get("type").and_then(Json::as_str).unwrap_or("?")
}

fn fault_counter(stats: &Json, key: &str) -> usize {
    stats
        .get("faults")
        .and_then(|f| f.get(key))
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("stats carries faults.{key}"))
}

/// (request JSON, expected fault-free response bytes) for `count`
/// distinct workloads on the degraded device, from the in-process
/// pipeline. MUST run with no failpoints armed.
fn degraded_expectations(count: usize) -> Vec<(String, Vec<u8>)> {
    assert!(
        qcs_faults::armed_sites().is_empty(),
        "compute before arming"
    );
    (0..count)
        .map(|i| {
            let spec = format!("ghz:{}", 4 + (i % 10));
            let request = format!(
                r#"{{"type":"compile","workload":"{spec}","device":"{DEGRADED_DEVICE}","placer":"trivial","router":"lookahead"}}"#
            );
            let job = Job::resolve(&CompileRequest {
                source: Source::Workload(spec),
                device: DEGRADED_DEVICE.to_string(),
                config: MapperConfig::new("trivial", "lookahead"),
                deadline_ms: None,
                request_id: None,
                race: false,
            })
            .expect("degraded device resolves");
            let expected = run_job(&job).expect("degraded jobs compile").payload;
            (request, expected)
        })
        .collect()
}

#[test]
fn daemon_serves_through_injected_faults() {
    reset();
    let expectations = degraded_expectations(10);

    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        event_loops: 2,
        max_connections: 128,
        cache_bytes: 8 << 20,
        frame_deadline: Duration::from_secs(5),
        persist_dir: None,
        semantic_cache: true,
        bucket_angles: false,
    })
    .expect("daemon starts");
    let addr = handle.local_addr();
    let mut control = connect(addr);

    // Phase 1 — a panicking compile is isolated: the request gets a
    // structured error frame, the next request on the same connection a
    // real result, and the panic shows up in stats.
    arm("serve.worker.job", FaultAction::Panic, Policy::Once);
    let mut victim = connect(addr);
    let reply = exchange_json(&mut victim, &expectations[0].0);
    assert_eq!(response_type(&reply), "error");
    assert!(reply
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("panicked"));
    let payload = exchange(&mut victim, &expectations[0].0);
    assert_eq!(
        payload, expectations[0].1,
        "post-panic response must match the fault-free in-process run"
    );
    drop(victim);
    reset();
    let stats = exchange_json(&mut control, r#"{"type":"stats"}"#);
    assert_eq!(fault_counter(&stats, "jobs_panicked"), 1);

    // Phase 2 — injected I/O-style errors surface verbatim as error
    // frames and never poison later requests.
    arm(
        "serve.worker.job",
        FaultAction::Error("disk on fire".into()),
        Policy::Once,
    );
    let reply = exchange_json(&mut control, &expectations[1].0);
    assert_eq!(response_type(&reply), "error");
    assert!(reply
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("disk on fire"));
    reset();

    // Phase 3 — a connection-level panic costs that connection only:
    // the worker survives, the next client is served, and the panic is
    // counted separately from job panics.
    arm("serve.connection", FaultAction::Panic, Policy::Once);
    let mut doomed = connect(addr);
    assert_eq!(
        read_frame(&mut doomed).expect("clean close"),
        None,
        "panicked connection closes without a frame"
    );
    drop(doomed);
    reset();
    let stats = exchange_json(&mut control, r#"{"type":"stats"}"#);
    assert_eq!(fault_counter(&stats, "connections_panicked"), 1);
    assert_eq!(fault_counter(&stats, "jobs_panicked"), 1, "unchanged");

    // Phase 4 — the acceptance hammer: 100 concurrent requests against
    // the degraded device while a seeded failpoint panics ~15% of jobs.
    // Every request must get a frame (no drops): either the byte-exact
    // fault-free result or a structured injected-panic error.
    let panicked = AtomicUsize::new(0);
    arm(
        "serve.worker.job",
        FaultAction::Panic,
        Policy::Seeded {
            probability: 0.15,
            seed: 4242,
        },
    );
    std::thread::scope(|scope| {
        for t in 0..10 {
            let panicked = &panicked;
            let expectations = &expectations;
            scope.spawn(move || {
                let mut stream = connect(addr);
                for (request, expected) in expectations {
                    let response = exchange(&mut stream, request);
                    if response == *expected {
                        continue;
                    }
                    let value = qcs_json::parse(std::str::from_utf8(&response).unwrap()).unwrap();
                    assert_eq!(
                        response_type(&value),
                        "error",
                        "thread {t}: response neither expected bytes nor an error frame"
                    );
                    assert!(
                        value
                            .get("message")
                            .and_then(Json::as_str)
                            .unwrap()
                            .contains("panicked"),
                        "thread {t}: unexplained error during hammer"
                    );
                    panicked.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    let injected = qcs_faults::fired("serve.worker.job") as usize;
    reset();
    assert_eq!(qcs_faults::hits("serve.worker.job"), 0, "reset clears");
    assert!(injected > 0, "seeded policy fired during 100 requests");
    assert_eq!(
        panicked.load(Ordering::SeqCst),
        injected,
        "every injected panic produced exactly one error frame"
    );
    let stats = exchange_json(&mut control, r#"{"type":"stats"}"#);
    assert_eq!(
        fault_counter(&stats, "jobs_panicked"),
        1 + injected,
        "stats account for every injected panic"
    );

    // Phase 5 — the degrade *trigger*: the daemon compiles against a
    // device degraded mid-flight, and the payload is byte-identical to
    // requesting the degraded spec directly (already cached fault-free).
    arm(
        "serve.worker.job",
        FaultAction::Trigger("degrade:0:0.1:11".into()),
        Policy::Once,
    );
    let request = r#"{"type":"compile","workload":"ghz:4","device":"surface17","placer":"trivial","router":"lookahead"}"#;
    let payload = exchange(&mut control, request);
    reset();
    assert_eq!(
        payload, expectations[0].1,
        "mid-flight degradation equals the degraded:catalog spec result"
    );

    // Phase 6 — determinism replay: the same seeded policy over the same
    // sequential request sequence yields the identical byte-for-byte
    // response transcript, twice.
    let transcript = || -> Vec<Vec<u8>> {
        arm(
            "serve.worker.job",
            FaultAction::Panic,
            Policy::Seeded {
                probability: 0.4,
                seed: 99,
            },
        );
        let mut stream = connect(addr);
        let out = expectations
            .iter()
            .map(|(request, _)| exchange(&mut stream, request))
            .collect();
        reset();
        out
    };
    let first = transcript();
    let second = transcript();
    assert_eq!(
        first, second,
        "same seed, same request order, same transcript"
    );

    // Shutdown: despite every injected panic, no daemon thread died.
    let ok = exchange_json(&mut control, r#"{"type":"shutdown"}"#);
    assert_eq!(response_type(&ok), "ok");
    let shutdown = handle.wait();
    assert_eq!(
        shutdown.threads_panicked, 0,
        "panic isolation kept every worker alive"
    );
    assert_eq!(
        shutdown.threads_joined, 11,
        "8 workers + 2 event loops + 1 accept thread"
    );
}
