//! End-to-end exercise of the compilation daemon.
//!
//! One sequential test walks the whole lifecycle — liveness, a
//! multi-threaded compile sweep checked byte-for-byte against in-process
//! `Mapper` output, a second sweep that must be served from cache,
//! protocol error paths, read deadlines, the connection limit, and a
//! clean shutdown that leaks no threads. Sequencing everything in one
//! test keeps the thread-count accounting and cache-statistics deltas
//! deterministic.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use qcs_core::config::MapperConfig;
use qcs_json::Json;
use qcs_serve::compile::{run_job, Job};
use qcs_serve::protocol::{read_frame, write_frame, CompileRequest, Source};
use qcs_serve::server::{Server, ServerConfig};

/// Current thread count of this process (Linux; 0 elsewhere, which
/// disables the leak check).
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status
                .lines()
                .find(|line| line.starts_with("Threads:"))
                .and_then(|line| line.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

fn connect(addr: SocketAddr) -> TcpStream {
    TcpStream::connect(addr).expect("daemon accepts connections")
}

/// Sends one JSON request and returns the raw response payload.
fn exchange(stream: &mut TcpStream, request: &str) -> Vec<u8> {
    write_frame(stream, request.as_bytes()).expect("request frame written");
    read_frame(stream)
        .expect("response frame read")
        .expect("daemon replied before closing")
}

fn exchange_json(stream: &mut TcpStream, request: &str) -> Json {
    let payload = exchange(stream, request);
    qcs_json::parse(std::str::from_utf8(&payload).unwrap()).expect("response is JSON")
}

fn response_type(value: &Json) -> &str {
    value.get("type").and_then(Json::as_str).unwrap_or("?")
}

/// The sweep workloads: distinct jobs covering every generator family.
fn sweep_specs() -> Vec<String> {
    let mut specs: Vec<String> = (4..=9).map(|n| format!("ghz:{n}")).collect();
    specs.extend((3..=6).map(|n| format!("qft:{n}")));
    specs.extend((4..=7).map(|n| format!("wstate:{n}")));
    specs.push("grover:3".to_string());
    specs.push("random:8:120:0.35:5".to_string());
    specs
}

/// (request JSON, expected response bytes) for every sweep workload,
/// where the expectation comes from the in-process pipeline.
fn sweep_expectations() -> Vec<(String, Vec<u8>)> {
    sweep_specs()
        .into_iter()
        .map(|spec| {
            let request = format!(
                r#"{{"type":"compile","workload":"{spec}","device":"surface17","placer":"trivial","router":"lookahead"}}"#
            );
            let job = Job::resolve(&CompileRequest {
                source: Source::Workload(spec),
                device: "surface17".to_string(),
                config: MapperConfig::new("trivial", "lookahead"),
                deadline_ms: None,
                request_id: None,
                race: false,
            })
            .expect("sweep workloads resolve");
            let expected = run_job(&job).expect("sweep workloads compile").payload;
            (request, expected)
        })
        .collect()
}

/// Runs the full sweep from `threads` client threads at once; every
/// response must be byte-identical to the in-process expectation.
fn hammer(addr: SocketAddr, expectations: &[(String, Vec<u8>)], threads: usize) {
    std::thread::scope(|scope| {
        for t in 0..threads {
            scope.spawn(move || {
                let mut stream = connect(addr);
                for (request, expected) in expectations {
                    let response = exchange(&mut stream, request);
                    assert_eq!(
                        &response, expected,
                        "thread {t}: daemon response diverged from in-process Mapper output"
                    );
                }
            });
        }
    });
}

fn cache_counters(stats: &Json) -> (usize, usize) {
    let cache = stats.get("cache").expect("stats has cache section");
    (
        cache.get("hits").and_then(Json::as_usize).unwrap(),
        cache.get("misses").and_then(Json::as_usize).unwrap(),
    )
}

#[test]
fn daemon_end_to_end() {
    let threads_before = thread_count();

    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        event_loops: 2,
        max_connections: 32,
        cache_bytes: 8 << 20,
        frame_deadline: Duration::from_millis(400),
        persist_dir: None,
        semantic_cache: true,
        bucket_angles: false,
    })
    .expect("daemon starts on an ephemeral port");
    let addr = handle.local_addr();

    // Liveness.
    let mut control = connect(addr);
    let pong = exchange_json(&mut control, r#"{"type":"ping"}"#);
    assert_eq!(response_type(&pong), "pong");

    // First sweep: 8 concurrent clients, byte-identical to in-process.
    let expectations = sweep_expectations();
    hammer(addr, &expectations, 8);

    let stats = exchange_json(&mut control, r#"{"type":"stats"}"#);
    assert_eq!(response_type(&stats), "stats");
    let jobs = stats.get("jobs").and_then(Json::as_usize).unwrap();
    assert_eq!(jobs, 8 * expectations.len(), "every sweep job was served");
    let (hits_before, misses_before) = cache_counters(&stats);
    assert!(misses_before >= expectations.len());
    let latency = stats
        .get("latency_micros")
        .expect("stats has latency section");
    assert!(
        latency
            .get("total")
            .and_then(|h| h.get("p99_micros"))
            .and_then(Json::as_usize)
            .unwrap()
            > 0,
        "latency histograms populated"
    );

    // Second identical sweep must be served (almost) entirely from cache.
    hammer(addr, &expectations, 8);
    let stats = exchange_json(&mut control, r#"{"type":"stats"}"#);
    let (hits_after, misses_after) = cache_counters(&stats);
    let hits = hits_after - hits_before;
    let misses = misses_after - misses_before;
    assert!(
        hits as f64 / (hits + misses).max(1) as f64 >= 0.9,
        "second sweep should be >=90% cache hits, got {hits} hits / {misses} misses"
    );

    // Suite batch: results arrive in deterministic input order, named.
    let suite = exchange_json(
        &mut control,
        r#"{"type":"compile_suite","count":4,"max_qubits":8,"max_gates":120,"seed":3,"placer":"trivial","router":"trivial"}"#,
    );
    assert_eq!(response_type(&suite), "suite_result");
    let Some(Json::Array(results)) = suite.get("results") else {
        panic!("suite_result carries a results array");
    };
    assert_eq!(results.len(), 4);
    for item in results {
        assert!(item.get("name").and_then(Json::as_str).is_some());
        assert_eq!(
            item.get("result").map(response_type),
            Some("result"),
            "suite member compiled"
        );
    }

    // Error paths keep the connection alive: the framing survives a
    // malformed request, an unknown device, and a blown deadline.
    let bad = exchange_json(&mut control, "this is not json");
    assert_eq!(response_type(&bad), "error");
    let bad = exchange_json(
        &mut control,
        r#"{"type":"compile","workload":"ghz:4","device":"warp-core"}"#,
    );
    assert_eq!(response_type(&bad), "error");
    assert!(bad
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("warp-core"));
    // An impossible deadline on a not-yet-cached job.
    let bad = exchange_json(
        &mut control,
        r#"{"type":"compile","workload":"qft:11","deadline_ms":0}"#,
    );
    assert_eq!(response_type(&bad), "error");
    assert!(bad
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("deadline"));
    // ...and the connection still works afterwards.
    let pong = exchange_json(&mut control, r#"{"type":"ping"}"#);
    assert_eq!(response_type(&pong), "pong");

    // Read deadline: a frame that stalls mid-transfer gets an error and
    // a closed connection, not a wedged worker.
    let mut stalled = connect(addr);
    stalled.write_all(&100u32.to_be_bytes()).unwrap();
    stalled.write_all(b"only a few bytes").unwrap();
    stalled.flush().unwrap();
    let reply = read_frame(&mut stalled)
        .expect("deadline error frame")
        .unwrap();
    let reply = qcs_json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert_eq!(response_type(&reply), "error");
    assert!(reply
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("deadline"));
    assert_eq!(
        read_frame(&mut stalled).unwrap(),
        None,
        "daemon closed the stream"
    );

    // Clean shutdown via the protocol, then no leaked threads.
    let ok = exchange_json(&mut control, r#"{"type":"shutdown"}"#);
    assert_eq!(response_type(&ok), "ok");
    handle.wait();

    if threads_before > 0 {
        // Joined threads can take a beat to vanish from /proc.
        let mut threads_after = thread_count();
        for _ in 0..50 {
            if threads_after <= threads_before {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
            threads_after = thread_count();
        }
        assert!(
            threads_after <= threads_before,
            "daemon leaked threads: {threads_before} before, {threads_after} after"
        );
    }
}

#[test]
fn connection_limit_turns_excess_clients_away() {
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        event_loops: 1,
        max_connections: 1,
        cache_bytes: 1 << 20,
        frame_deadline: Duration::from_secs(2),
        persist_dir: None,
        semantic_cache: true,
        bucket_angles: false,
    })
    .expect("daemon starts");
    let addr = handle.local_addr();

    // Occupy the single admitted slot (a full round-trip guarantees the
    // connection is admitted, not still in flight).
    let mut first = connect(addr);
    let pong = exchange_json(&mut first, r#"{"type":"ping"}"#);
    assert_eq!(response_type(&pong), "pong");

    // The second connection is rejected with an explanatory frame.
    let mut second = connect(addr);
    let reply = read_frame(&mut second).expect("rejection frame").unwrap();
    let reply = qcs_json::parse(std::str::from_utf8(&reply).unwrap()).unwrap();
    assert_eq!(response_type(&reply), "error");
    assert!(reply
        .get("message")
        .and_then(Json::as_str)
        .unwrap()
        .contains("capacity"));

    drop(second);
    drop(first);
    handle.shutdown();
}

/// The shard-side deadline model has two gates for a cache miss: the
/// elapsed-budget check and the *predictive* check that compares the
/// remaining budget against the observed per-stage p95 cold cost. This
/// test drives enough cold compiles to make the prediction non-zero,
/// then shows a miss with an insufficient budget is refused before any
/// compilation happens — structured `deadline_exceeded`, precompile
/// counter bumped — while a generous budget still compiles the same job.
#[test]
fn cold_jobs_with_insufficient_budget_are_rejected_before_compiling() {
    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        event_loops: 1,
        max_connections: 8,
        cache_bytes: 8 << 20,
        frame_deadline: Duration::from_secs(5),
        persist_dir: None,
        semantic_cache: true,
        bucket_angles: false,
    })
    .expect("daemon starts");
    let addr = handle.local_addr();
    let mut control = connect(addr);

    // Ten distinct cold compiles: the per-stage histograms need at least
    // eight miss observations before the shard trusts its prediction.
    for n in 4..14 {
        let reply = exchange_json(
            &mut control,
            &format!(r#"{{"type":"compile","workload":"ghz:{n}"}}"#),
        );
        assert_eq!(response_type(&reply), "result", "cold compile {n} works");
    }

    let stats = exchange_json(&mut control, r#"{"type":"stats"}"#);
    let deadline_stats = stats.get("deadline").expect("stats carry deadline");
    let predicted = deadline_stats
        .get("predicted_cold_micros")
        .and_then(Json::as_usize)
        .unwrap();
    assert!(
        predicted > 0,
        "after 10 cold compiles the shard predicts a cold cost"
    );
    assert_eq!(
        deadline_stats.get("rejected").and_then(Json::as_usize),
        Some(0),
        "nothing rejected yet"
    );

    // A never-compiled workload whose budget cannot cover the predicted
    // cold cost. A zero budget trips the elapsed-time gate; a small
    // positive one (when the prediction is slow enough to leave room)
    // trips the predictive gate. Either way the job must be refused
    // *before* compilation.
    let budget_ms = (predicted as u64 / 1000) / 2;
    let reply = exchange_json(
        &mut control,
        &format!(r#"{{"type":"compile","workload":"qft:10","deadline_ms":{budget_ms}}}"#),
    );
    assert_eq!(response_type(&reply), "error");
    assert_eq!(
        reply.get("code").and_then(Json::as_str),
        Some("deadline_exceeded"),
        "rejection carries the machine-readable code: {reply:?}"
    );
    assert!(
        reply.get("retry_after_ms").is_none(),
        "deadline rejections are final, not retryable: {reply:?}"
    );

    let stats = exchange_json(&mut control, r#"{"type":"stats"}"#);
    let deadline_stats = stats.get("deadline").expect("stats carry deadline");
    assert_eq!(
        deadline_stats.get("rejected").and_then(Json::as_usize),
        Some(1)
    );
    assert_eq!(
        deadline_stats
            .get("rejected_precompile")
            .and_then(Json::as_usize),
        Some(1),
        "the rejection happened before compilation started"
    );

    // The same workload with a generous budget compiles fine — the
    // rejection was the budget's fault, not the job's.
    let reply = exchange_json(
        &mut control,
        r#"{"type":"compile","workload":"qft:10","deadline_ms":60000}"#,
    );
    assert_eq!(response_type(&reply), "result");

    handle.shutdown();
}
