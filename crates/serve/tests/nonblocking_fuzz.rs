//! Protocol fuzz for the non-blocking read path.
//!
//! The event-driven server assembles request frames from whatever byte
//! chunks the kernel delivers. These tests control that chunking from
//! the client side — one-byte dribbles, torn frames at every split
//! point, pipelined bursts, seeded random fragmentation — and assert the
//! responses are byte-identical to a clean whole-frame exchange, which
//! `tests/e2e.rs` separately proves byte-identical to the in-process
//! `Mapper` (the blocking-era contract). Chunking must be invisible.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use qcs_json::Json;
use qcs_rng::{Rng, SeedableRng, Xoshiro256StarStar};
use qcs_serve::protocol::{read_frame, write_frame, MAX_FRAME_BYTES};
use qcs_serve::server::{Server, ServerConfig, ServerHandle};

fn start_daemon() -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        event_loops: 2,
        max_connections: 32,
        cache_bytes: 8 << 20,
        frame_deadline: Duration::from_secs(5),
        persist_dir: None,
        semantic_cache: true,
        bucket_angles: false,
    })
    .expect("daemon starts")
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("daemon accepts connections");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

/// One clean whole-frame exchange: the reference every fragmented
/// delivery must reproduce byte-for-byte.
fn reference_response(addr: SocketAddr, request: &str) -> Vec<u8> {
    let mut stream = connect(addr);
    write_frame(&mut stream, request.as_bytes()).expect("request written");
    read_frame(&mut stream)
        .expect("response read")
        .expect("daemon replied")
}

/// A request frame as raw wire bytes (length prefix + payload).
fn frame_bytes(request: &str) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, request.as_bytes()).expect("in-memory frame");
    bytes
}

fn requests() -> Vec<String> {
    vec![
        r#"{"type":"ping"}"#.to_string(),
        r#"{"type":"compile","workload":"ghz:4"}"#.to_string(),
        r#"{"type":"compile","workload":"qft:3","device":"line:5"}"#.to_string(),
        r#"{"type":"compile","workload":"wstate:5","placer":"trivial","router":"lookahead"}"#
            .to_string(),
    ]
}

#[test]
fn one_byte_dribble_is_invisible() {
    let handle = start_daemon();
    let addr = handle.local_addr();

    for request in requests() {
        let expected = reference_response(addr, &request);
        let mut stream = connect(addr);
        for &byte in &frame_bytes(&request) {
            stream.write_all(&[byte]).expect("dribbled byte");
            stream.flush().expect("flush");
        }
        let response = read_frame(&mut stream)
            .expect("response read")
            .expect("daemon replied");
        assert_eq!(response, expected, "dribbled {request} diverged");
    }
    handle.shutdown();
}

#[test]
fn torn_frame_at_every_split_point_is_invisible() {
    let handle = start_daemon();
    let addr = handle.local_addr();

    let request = r#"{"type":"compile","workload":"ghz:4"}"#;
    let expected = reference_response(addr, request);
    let bytes = frame_bytes(request);

    // All splits ride one connection: each exchange leaves the decoder
    // at a frame boundary, so the splits also test frame-to-frame state
    // reset. The pause makes the tear real (two separate read events).
    let mut stream = connect(addr);
    for split in 0..=bytes.len() {
        stream.write_all(&bytes[..split]).expect("first fragment");
        stream.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(5));
        stream.write_all(&bytes[split..]).expect("second fragment");
        let response = read_frame(&mut stream)
            .expect("response read")
            .expect("daemon replied");
        assert_eq!(response, expected, "split at byte {split} diverged");
    }
    handle.shutdown();
}

#[test]
fn pipelined_burst_answers_in_order() {
    let handle = start_daemon();
    let addr = handle.local_addr();

    let requests = requests();
    let expected: Vec<Vec<u8>> = requests
        .iter()
        .map(|r| reference_response(addr, r))
        .collect();

    // Three rounds of the whole burst in a single write each: responses
    // must come back in request order every time (cold cache, warm
    // cache, warm again).
    let mut stream = connect(addr);
    for round in 0..3 {
        let mut burst = Vec::new();
        for request in &requests {
            burst.extend_from_slice(&frame_bytes(request));
        }
        stream.write_all(&burst).expect("burst written");
        for (i, want) in expected.iter().enumerate() {
            let response = read_frame(&mut stream)
                .expect("response read")
                .expect("daemon replied");
            assert_eq!(
                &response, want,
                "round {round}: response {i} out of order or diverged"
            );
        }
    }
    handle.shutdown();
}

#[test]
fn seeded_random_fragmentation_is_invisible() {
    let handle = start_daemon();
    let addr = handle.local_addr();

    let requests = requests();
    let expected: Vec<Vec<u8>> = requests
        .iter()
        .map(|r| reference_response(addr, r))
        .collect();

    let mut wire = Vec::new();
    for request in &requests {
        wire.extend_from_slice(&frame_bytes(request));
    }

    for seed in 0..8u64 {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let mut stream = connect(addr);
        let mut pos = 0;
        while pos < wire.len() {
            let take = rng.gen_range(1..=13usize).min(wire.len() - pos);
            stream.write_all(&wire[pos..pos + take]).expect("fragment");
            stream.flush().expect("flush");
            pos += take;
            if rng.gen_range(0..4u32) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        for (i, want) in expected.iter().enumerate() {
            let response = read_frame(&mut stream)
                .expect("response read")
                .expect("daemon replied");
            assert_eq!(&response, want, "seed {seed}: response {i} diverged");
        }
    }
    handle.shutdown();
}

#[test]
fn oversized_length_prefix_gets_error_then_close() {
    let handle = start_daemon();
    let addr = handle.local_addr();

    let mut stream = connect(addr);
    let oversized = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes();
    stream.write_all(&oversized).expect("bogus prefix written");

    let payload = read_frame(&mut stream)
        .expect("error frame read")
        .expect("daemon explains before closing");
    let value = qcs_json::parse(std::str::from_utf8(&payload).unwrap()).expect("error is JSON");
    assert_eq!(value.get("type").and_then(Json::as_str), Some("error"));
    assert!(
        value
            .get("message")
            .and_then(Json::as_str)
            .unwrap()
            .contains("exceeds protocol maximum"),
        "unexpected message: {value:?}"
    );
    // Framing sync is lost: the daemon must close, not guess.
    assert_eq!(read_frame(&mut stream).expect("clean EOF"), None);
    handle.shutdown();
}

#[test]
fn empty_frame_is_answered_and_the_connection_survives() {
    let handle = start_daemon();
    let addr = handle.local_addr();

    let mut stream = connect(addr);
    // A zero-length frame is well-framed but unparsable: error response,
    // connection stays usable.
    stream.write_all(&0u32.to_be_bytes()).expect("empty frame");
    let payload = read_frame(&mut stream)
        .expect("error frame read")
        .expect("daemon replied");
    let value = qcs_json::parse(std::str::from_utf8(&payload).unwrap()).expect("error is JSON");
    assert_eq!(value.get("type").and_then(Json::as_str), Some("error"));

    // Still in sync: a real request on the same connection works.
    write_frame(&mut stream, br#"{"type":"ping"}"#).expect("ping written");
    let pong = read_frame(&mut stream)
        .expect("pong read")
        .expect("daemon replied");
    assert!(std::str::from_utf8(&pong).unwrap().contains("pong"));
    handle.shutdown();
}
