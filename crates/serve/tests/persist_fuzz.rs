//! Corruption fuzzing for the persistent cache: seeded bit-flips and
//! truncations against WAL segments and snapshot files must never stop
//! the daemon from starting — damage is skipped, counted, and visible in
//! `stats`, and every previously-compiled circuit that survived comes
//! back byte-identical.

use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use qcs_json::Json;
use qcs_rng::{Rng, SeedableRng};
use qcs_serve::cache::EntryRef;
use qcs_serve::persist::{Store, MAGIC};
use qcs_serve::protocol::{read_frame, write_frame};
use qcs_serve::server::{Server, ServerConfig, ServerHandle};

/// A scratch directory removed on drop, unique per test + tag.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("qcs-persist-fuzz-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start_daemon(persist_dir: &Path) -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        event_loops: 1,
        max_connections: 16,
        cache_bytes: 8 << 20,
        frame_deadline: Duration::from_secs(2),
        persist_dir: Some(persist_dir.to_string_lossy().into_owned()),
        semantic_cache: true,
        bucket_angles: false,
    })
    .expect("daemon starts")
}

fn exchange(stream: &mut TcpStream, request: &str) -> Vec<u8> {
    write_frame(stream, request.as_bytes()).expect("request written");
    read_frame(stream)
        .expect("response read")
        .expect("daemon replied")
}

fn exchange_json(addr: SocketAddr, request: &str) -> Json {
    let mut stream = TcpStream::connect(addr).expect("daemon accepts");
    let payload = exchange(&mut stream, request);
    qcs_json::parse(std::str::from_utf8(&payload).unwrap()).expect("response is JSON")
}

fn specs() -> Vec<String> {
    (4..=9).map(|n| format!("ghz:{n}")).collect()
}

/// Compiles every spec once; returns the response payloads in order.
fn fill(addr: SocketAddr, specs: &[String]) -> Vec<Vec<u8>> {
    let mut stream = TcpStream::connect(addr).expect("daemon accepts");
    specs
        .iter()
        .map(|spec| {
            let request = format!(r#"{{"type":"compile","workload":"{spec}"}}"#);
            let payload = exchange(&mut stream, &request);
            assert!(
                payload.starts_with(br#"{"type":"result""#),
                "{spec} must compile: {}",
                String::from_utf8_lossy(&payload)
            );
            payload
        })
        .collect()
}

fn persist_counter(stats: &Json, field: &str) -> usize {
    stats
        .get("persist")
        .and_then(|p| p.get(field))
        .and_then(Json::as_usize)
        .unwrap_or_else(|| {
            panic!(
                "stats.persist.{field} missing: {}",
                stats.to_compact_string()
            )
        })
}

fn wal_file(dir: &Path) -> PathBuf {
    let mut wals: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .collect();
    wals.sort();
    wals.pop().expect("a WAL segment exists")
}

/// Seeded bit-flips inside the WAL: the restarted daemon must start,
/// count the damage in stats, and still serve everything on request.
#[test]
fn bit_flipped_wal_restarts_cleanly_and_reports_damage() {
    let specs = specs();
    for seed in 1u64..=6 {
        let tmp = TempDir::new(&format!("flip-{seed}"));
        let handle = start_daemon(tmp.path());
        fill(handle.local_addr(), &specs);
        handle.shutdown();

        // Flip a few bytes at seeded offsets, all strictly inside the
        // record stream (past the magic), so every flip damages some
        // record's framing, checksum or content.
        let wal = wal_file(tmp.path());
        let mut bytes = std::fs::read(&wal).unwrap();
        let mut rng = qcs_rng::ChaCha8Rng::seed_from_u64(0xF1_1B + seed);
        let flips = 1 + (seed as usize % 3);
        for _ in 0..flips {
            let offset = rng.gen_range(MAGIC.len()..bytes.len());
            let bit = rng.gen_range(0..8u32);
            bytes[offset] ^= 1 << bit;
        }
        std::fs::write(&wal, &bytes).unwrap();

        let handle = start_daemon(tmp.path());
        let addr = handle.local_addr();
        let stats = exchange_json(addr, r#"{"type":"stats"}"#);
        let recovered = persist_counter(&stats, "records_recovered");
        let corrupt = persist_counter(&stats, "corrupt_records_skipped");
        let torn = persist_counter(&stats, "torn_tails_truncated");
        assert!(
            corrupt + torn >= 1,
            "seed {seed}: flips inside the record stream must be detected \
             (recovered {recovered}, corrupt {corrupt}, torn {torn})"
        );
        assert!(
            recovered < specs.len(),
            "seed {seed}: damaged records cannot all be recovered"
        );
        // The daemon serves every spec regardless — surviving entries
        // from cache, damaged ones recompiled.
        let responses = fill(addr, &specs);
        assert_eq!(responses.len(), specs.len());
        handle.shutdown();
    }
}

/// Truncation mid-record (the torn-tail crash shape): exactly the last
/// record is lost, the truncation is counted, and a re-fill serves the
/// survivors as cache hits.
#[test]
fn truncated_wal_loses_only_the_torn_record() {
    for seed in 1u64..=4 {
        let tmp = TempDir::new(&format!("trunc-{seed}"));
        let specs = specs();
        let handle = start_daemon(tmp.path());
        let pre_kill = fill(handle.local_addr(), &specs);
        handle.shutdown();

        // Cut 1..=8 bytes off the end: strictly inside the final record
        // (records are far larger), so the tail is torn mid-bytes.
        let wal = wal_file(tmp.path());
        let bytes = std::fs::read(&wal).unwrap();
        let cut = 1 + (seed as usize % 8);
        std::fs::write(&wal, &bytes[..bytes.len() - cut]).unwrap();

        let handle = start_daemon(tmp.path());
        let addr = handle.local_addr();
        let stats = exchange_json(addr, r#"{"type":"stats"}"#);
        assert_eq!(
            persist_counter(&stats, "records_recovered"),
            specs.len() - 1
        );
        assert_eq!(persist_counter(&stats, "torn_tails_truncated"), 1);
        assert_eq!(persist_counter(&stats, "corrupt_records_skipped"), 0);

        let post_restart = fill(addr, &specs);
        assert_eq!(
            pre_kill, post_restart,
            "seed {seed}: surviving + recompiled payloads must be byte-identical"
        );
        let stats = exchange_json(addr, r#"{"type":"stats"}"#);
        let cache = stats.get("cache").unwrap();
        assert_eq!(
            cache.get("hits").and_then(Json::as_usize).unwrap(),
            specs.len() - 1,
            "seed {seed}: every recovered record is a warm hit"
        );
        assert_eq!(cache.get("misses").and_then(Json::as_usize).unwrap(), 1);
        handle.shutdown();
    }
}

/// Snapshot files get the same treatment, at the `Store` level: seeded
/// flips inside a compacted snapshot are skipped and counted, never
/// fatal.
#[test]
fn bit_flipped_snapshot_is_skipped_and_counted() {
    for seed in 1u64..=6 {
        let tmp = TempDir::new(&format!("snap-{seed}"));
        let entries: Vec<EntryRef> = (0..10u64)
            .map(|i| EntryRef {
                digest: i,
                key: Arc::new(format!("key-{i}").into_bytes()),
                payload: Arc::new(format!("payload-{i}").into_bytes()),
                canonical: None,
            })
            .collect();
        {
            let (mut store, _) = Store::open(tmp.path()).unwrap();
            for entry in &entries {
                store
                    .append(entry.digest, &entry.key, &entry.payload, None)
                    .unwrap();
            }
            store.compact(&entries).unwrap();
        }

        let snapshot = tmp.path().join("snapshot.qcs");
        let mut bytes = std::fs::read(&snapshot).unwrap();
        let mut rng = qcs_rng::ChaCha8Rng::seed_from_u64(0x5AA9 + seed);
        let offset = rng.gen_range(MAGIC.len()..bytes.len());
        bytes[offset] ^= 1 << rng.gen_range(0..8u32);
        std::fs::write(&snapshot, &bytes).unwrap();

        let (store, recovered) = Store::open(tmp.path()).unwrap();
        let stats = store.stats();
        assert!(
            stats.corrupt_records_skipped + stats.torn_tails_truncated >= 1,
            "seed {seed}: snapshot damage must be detected"
        );
        assert!(recovered.len() < entries.len(), "seed {seed}");
        // Everything recovered is genuine (undamaged) data.
        for record in &recovered {
            let entry = &entries[record.digest as usize];
            assert_eq!(record.digest, entry.digest);
            assert_eq!(&record.key, entry.key.as_ref());
            assert_eq!(&record.payload, entry.payload.as_ref());
        }
    }
}
