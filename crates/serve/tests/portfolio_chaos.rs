//! Portfolio chaos suite: the daemon's auto-strategy path under
//! deterministic fault injection at the portfolio failpoints
//! (`mapper.select`, `mapper.race.<lane>`).
//!
//! One sequential test (the `qcs-faults` registry is process-global, so
//! phases must not interleave — and this file is a separate process
//! from the transport chaos suite, so the two cannot fight over it)
//! proves the issue's acceptance scenario: a panicking, error-injected
//! or hung selector/lane produces **zero client-visible errors** — every
//! auto request gets a verified `result` frame, served by another lane
//! or a cheaper degradation stage. Each phase uses a distinct workload
//! so a cached result from an earlier phase can never mask a fault.

use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use qcs_faults::{arm, reset, FaultAction, Policy};
use qcs_json::Json;
use qcs_serve::server::{Server, ServerConfig};

fn connect(addr: SocketAddr) -> TcpStream {
    TcpStream::connect(addr).expect("daemon accepts connections")
}

fn exchange(stream: &mut TcpStream, request: &str) -> Json {
    qcs_serve::protocol::write_frame(stream, request.as_bytes()).expect("request frame written");
    let payload = qcs_serve::protocol::read_frame(stream)
        .expect("response frame read")
        .expect("daemon replied before closing");
    qcs_json::parse(std::str::from_utf8(&payload).unwrap()).expect("response is JSON")
}

/// Asserts the response is a verified `result` (never an error) and
/// returns the `(placer, router)` pipeline that served it.
fn assert_verified_result(response: &Json, context: &str) -> (String, String) {
    assert_eq!(
        response.get("type").and_then(Json::as_str),
        Some("result"),
        "{context}: expected a result frame, got {}",
        response.to_compact_string()
    );
    let report = response.get("report").expect("results embed a report");
    assert_eq!(
        report.get("verified").and_then(Json::as_bool),
        Some(true),
        "{context}: served result must be verified"
    );
    let field = |key: &str| {
        report
            .get(key)
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    (field("placer"), field("router"))
}

fn auto_request(workload: &str) -> String {
    format!(r#"{{"type":"compile","workload":"{workload}","placer":"auto","router":"auto"}}"#)
}

fn portfolio_counter(stats: &Json, key: &str) -> usize {
    stats
        .get("portfolio")
        .and_then(|p| p.get(key))
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("stats carries portfolio.{key}"))
}

#[test]
fn portfolio_faults_never_reach_clients() {
    reset();
    // The acceptance phase needs to know which lane the selector would
    // pick as primary, computed in-process *before* any failpoint is
    // armed (the selector shares this process's fault registry).
    let acceptance_circuit = qcs_workloads::qft::qft(7).unwrap();
    let primary = qcs_core::portfolio::Selector::default()
        .select(&acceptance_circuit)
        .expect("selection is total without faults")
        .lane;
    assert_ne!(
        primary, "trivial",
        "qft:7 must select an expensive lane for the mid-race panic to be meaningful"
    );

    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        event_loops: 2,
        max_connections: 32,
        cache_bytes: 8 << 20,
        frame_deadline: Duration::from_secs(5),
        persist_dir: None,
        semantic_cache: true,
        bucket_angles: false,
    })
    .expect("daemon starts");
    let addr = handle.local_addr();
    let mut control = connect(addr);

    // Phase 1 — panicking selector: the portfolio treats the circuit as
    // unconfident and races; the client sees a verified result.
    arm("mapper.select", FaultAction::Panic, Policy::Once);
    let reply = exchange(&mut control, &auto_request("qft:5"));
    assert_verified_result(&reply, "selector panic");
    reset();

    // Phase 2 — error-injected selector: same degradation, same outcome.
    arm(
        "mapper.select",
        FaultAction::Error("metrics store down".into()),
        Policy::Once,
    );
    let reply = exchange(&mut control, &auto_request("ghz:9"));
    assert_verified_result(&reply, "selector error");
    reset();

    // Phase 3 — hung selector: a 200 ms stall delays but never fails
    // the request.
    arm("mapper.select", FaultAction::Delay(200), Policy::Once);
    let reply = exchange(&mut control, &auto_request("wstate:8"));
    assert_verified_result(&reply, "selector hang");
    reset();

    // Phase 4 — the acceptance scenario: the selected primary lane
    // panics every time it launches (confident direct run and raced
    // alike). The daemon must answer with a verified result served by
    // *another* lane — no error frame of any kind.
    arm(
        &format!("mapper.race.{primary}"),
        FaultAction::Panic,
        Policy::Always,
    );
    let reply = exchange(&mut control, &auto_request("qft:7"));
    let (placer, router) = assert_verified_result(&reply, "primary lane panic");
    let primary_config = qcs_core::portfolio::lane_config(primary).unwrap();
    assert_ne!(
        (placer.as_str(), router.as_str()),
        (
            primary_config.placer.as_str(),
            primary_config.router.as_str()
        ),
        "the panicking primary lane must not have served"
    );
    let fired = qcs_faults::fired(&format!("mapper.race.{primary}"));
    reset();
    assert!(fired > 0, "the primary lane was actually launched and hit");

    // Phase 5 — hung lane under a deadline: sabre sleeps far past the
    // budget; the race is truncated and a cheaper lane's verified
    // result is served, well before the sleeping lane would wake.
    arm(
        "mapper.race.sabre",
        FaultAction::Delay(5_000),
        Policy::Always,
    );
    let started = Instant::now();
    let request = r#"{"type":"compile","workload":"qft:8","placer":"auto","router":"auto","deadline_ms":1500}"#;
    let reply = exchange(&mut control, request);
    let elapsed = started.elapsed();
    reset();
    let (placer, router) = assert_verified_result(&reply, "hung lane under deadline");
    assert_ne!(
        (placer.as_str(), router.as_str()),
        ("sabre", "lookahead"),
        "the sleeping sabre lane must not have served"
    );
    assert!(
        elapsed < Duration::from_millis(4_000),
        "the response must not wait out the 5 s lane stall (took {elapsed:?})"
    );

    // Phase 6 — a deadline no cold race can meet: the portfolio still
    // returns a verified cheapest-lane result, never deadline_exceeded.
    let request = r#"{"type":"compile","workload":"wstate:9","placer":"auto","router":"auto","deadline_ms":1}"#;
    let reply = exchange(&mut control, request);
    let (placer, router) = assert_verified_result(&reply, "hopeless deadline");
    assert_eq!((placer.as_str(), router.as_str()), ("trivial", "trivial"));
    assert_eq!(reply.get("code"), None, "no deadline_exceeded code");

    // The counters account for everything the phases injected.
    let stats = exchange(&mut control, r#"{"type":"stats"}"#);
    assert!(portfolio_counter(&stats, "jobs") >= 6);
    assert!(
        portfolio_counter(&stats, "selector_failed") >= 2,
        "phases 1 and 2 each failed the selector"
    );
    assert!(
        portfolio_counter(&stats, "lanes_discarded") >= 2,
        "panicked and timed-out lanes were discarded"
    );
    assert!(
        portfolio_counter(&stats, "budget_limited") >= 1,
        "phases 5/6 were budget-limited"
    );
    assert!(
        portfolio_counter(&stats, "cheapest") >= 1,
        "phase 6 degraded to the cheapest lane"
    );
    let wins = stats
        .get("portfolio")
        .and_then(|p| p.get("wins"))
        .expect("stats carries portfolio.wins");
    assert!(
        matches!(wins, Json::Object(members) if !members.is_empty()),
        "every served job recorded a winning lane"
    );
    // Zero deadline rejections: portfolio jobs degrade, they are never
    // refused against their budget.
    let rejected = stats
        .get("deadline")
        .and_then(|d| d.get("rejected"))
        .and_then(Json::as_usize)
        .unwrap();
    assert_eq!(rejected, 0, "no portfolio request was deadline-rejected");

    let ok = exchange(&mut control, r#"{"type":"shutdown"}"#);
    assert_eq!(ok.get("type").and_then(Json::as_str), Some("ok"));
    let shutdown = handle.wait();
    assert_eq!(
        shutdown.threads_panicked, 0,
        "panic isolation kept every daemon thread alive"
    );
    assert_eq!(
        shutdown.threads_joined, 7,
        "4 workers + 2 event loops + 1 accept thread"
    );
}
