//! Portfolio determinism suite: the auto-strategy serving path must be
//! a pure function of the job whenever no deadline truncates it.
//!
//! Unbounded portfolio runs wait for every lane, so the race winner is
//! the deterministic minimum of `(swaps, routed gates, lane order)` —
//! which makes the served bytes independent of worker count, wall-clock
//! and cache state. These tests pin that: the same auto suite is
//! byte-identical at 1 and 8 workers, auto compiles on the `degraded:`
//! and `dpqa:` backends match a fault-free in-process run byte for
//! byte, and an explicit `race` request has its own cache identity.

use std::net::TcpStream;
use std::time::Duration;

use qcs_core::config::MapperConfig;
use qcs_json::Json;
use qcs_serve::compile::{run_job, Job};
use qcs_serve::protocol::{read_frame, write_frame, CompileRequest, Source};
use qcs_serve::server::{Server, ServerConfig, ServerHandle};

fn start_daemon(workers: usize, event_loops: usize) -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        event_loops,
        max_connections: 32,
        cache_bytes: 8 << 20,
        frame_deadline: Duration::from_secs(5),
        persist_dir: None,
        semantic_cache: true,
        bucket_angles: false,
    })
    .expect("daemon starts")
}

fn exchange(stream: &mut TcpStream, request: &str) -> Vec<u8> {
    write_frame(stream, request.as_bytes()).expect("request frame written");
    read_frame(stream)
        .expect("response frame read")
        .expect("daemon replied before closing")
}

fn shutdown(handle: ServerHandle) {
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
    exchange(&mut stream, r#"{"type":"shutdown"}"#);
    handle.wait();
}

fn parse(payload: &[u8]) -> Json {
    qcs_json::parse(std::str::from_utf8(payload).unwrap()).expect("response is JSON")
}

#[test]
fn auto_suite_is_byte_identical_across_worker_counts() {
    let request = r#"{"type":"compile_suite","count":6,"max_qubits":9,"max_gates":160,"seed":11,"placer":"auto","router":"auto"}"#;

    let serial = start_daemon(1, 1);
    let mut stream = TcpStream::connect(serial.local_addr()).unwrap();
    let from_one_worker = exchange(&mut stream, request);
    drop(stream);
    shutdown(serial);

    let pooled = start_daemon(8, 2);
    let mut stream = TcpStream::connect(pooled.local_addr()).unwrap();
    let from_eight_workers = exchange(&mut stream, request);
    // And again on the same daemon: the cache-hit path serves the very
    // same bytes the cold path produced.
    let replay = exchange(&mut stream, request);
    drop(stream);
    shutdown(pooled);

    let value = parse(&from_one_worker);
    assert_eq!(
        value.get("type").and_then(Json::as_str),
        Some("suite_result")
    );
    assert_eq!(
        from_one_worker, from_eight_workers,
        "auto suite bytes must not depend on worker count"
    );
    assert_eq!(
        from_eight_workers, replay,
        "auto suite bytes must not depend on cache state"
    );
}

#[test]
fn auto_compiles_deterministically_on_alternate_backends() {
    // ~10% of surface-17's couplers disabled, deterministically — the
    // same spec the transport chaos suite uses — plus the movement
    // (neutral-atom) backend.
    for device in ["degraded:0:0.1:11:surface17", "dpqa:3x4"] {
        let workload = "qft:6";
        let job = Job::resolve(&CompileRequest {
            source: Source::Workload(workload.to_string()),
            device: device.to_string(),
            config: MapperConfig::new("auto", "auto"),
            deadline_ms: None,
            request_id: None,
            race: false,
        })
        .expect("device resolves");
        assert!(job.portfolio(), "auto jobs run through the portfolio");
        let expected = run_job(&job).expect("auto job compiles").payload;

        let handle = start_daemon(4, 1);
        let mut stream = TcpStream::connect(handle.local_addr()).unwrap();
        let request = format!(
            r#"{{"type":"compile","workload":"{workload}","device":"{device}","placer":"auto","router":"auto"}}"#
        );
        let cold = exchange(&mut stream, &request);
        let warm = exchange(&mut stream, &request);
        drop(stream);
        shutdown(handle);

        assert_eq!(
            cold, expected,
            "{device}: served bytes must equal the in-process portfolio run"
        );
        assert_eq!(warm, expected, "{device}: cache replay must be identical");
        let report = parse(&cold);
        let report = report.get("report").expect("results embed a report");
        assert_eq!(
            report.get("verified").and_then(Json::as_bool),
            Some(true),
            "{device}: portfolio results are verified"
        );
    }
}

#[test]
fn raced_requests_have_their_own_identity_and_stay_deterministic() {
    let handle = start_daemon(4, 1);
    let mut stream = TcpStream::connect(handle.local_addr()).unwrap();

    let auto = exchange(
        &mut stream,
        r#"{"type":"compile","workload":"ghz:8","placer":"auto","router":"auto"}"#,
    );
    let raced = exchange(
        &mut stream,
        r#"{"type":"compile","workload":"ghz:8","placer":"auto","router":"auto","race":true}"#,
    );
    let raced_again = exchange(
        &mut stream,
        r#"{"type":"compile","workload":"ghz:8","placer":"auto","router":"auto","race":true}"#,
    );
    drop(stream);
    shutdown(handle);

    let auto = parse(&auto);
    let first = parse(&raced);
    assert_eq!(auto.get("type").and_then(Json::as_str), Some("result"));
    assert_eq!(first.get("type").and_then(Json::as_str), Some("result"));
    assert_ne!(
        auto.get("digest").and_then(Json::as_str),
        first.get("digest").and_then(Json::as_str),
        "the race flag is part of the job identity"
    );
    assert_eq!(
        raced, raced_again,
        "an unbounded race is complete, so its winner is cacheable and replayed byte-identically"
    );
}
