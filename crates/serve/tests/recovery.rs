//! Crash-recovery integration test against the real `qcs-serve` binary:
//! fill the persistent cache over TCP, SIGKILL the daemon mid-write (a
//! torn half-record at the WAL tail stands in for the interrupted
//! append), restart it on the same directory, and require 100% warm
//! cache hits with byte-identical responses and zero panics.

use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use qcs_json::Json;
use qcs_serve::protocol::{read_frame, write_frame};

struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        let dir = std::env::temp_dir().join(format!("qcs-recovery-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A spawned daemon that is SIGKILLed on drop if the test panics first.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(persist_dir: &Path, port_file: &Path) -> Daemon {
        let _ = std::fs::remove_file(port_file);
        let child = Command::new(env!("CARGO_BIN_EXE_qcs-serve"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--port-file",
                &port_file.display().to_string(),
                "--persist-dir",
                &persist_dir.display().to_string(),
                "--workers",
                "2",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("qcs-serve spawns");
        // The port file appears once the daemon is listening (and, on a
        // restart, only after WAL replay finished — the cache is warm by
        // the time we can connect).
        let mut port = String::new();
        for _ in 0..100 {
            if let Ok(contents) = std::fs::read_to_string(port_file) {
                if !contents.trim().is_empty() {
                    port = contents.trim().to_string();
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        assert!(!port.is_empty(), "daemon never wrote its port file");
        Daemon {
            child,
            addr: format!("127.0.0.1:{port}"),
        }
    }

    fn connect(&self) -> TcpStream {
        TcpStream::connect(&self.addr).expect("daemon accepts connections")
    }

    /// SIGKILL — no cleanup, no flush beyond what each append already
    /// fsynced. What the WAL holds at this instant is the crash state.
    fn kill(mut self) {
        self.child.kill().expect("SIGKILL delivered");
        self.child.wait().expect("killed daemon reaped");
        std::mem::forget(self);
    }

    fn shutdown(mut self) {
        let mut stream = self.connect();
        let reply = exchange(&mut stream, r#"{"type":"shutdown"}"#);
        assert!(reply.starts_with(br#"{"type":"ok""#));
        let status = self.child.wait().expect("daemon exits");
        assert!(status.success(), "daemon must exit cleanly: {status}");
        std::mem::forget(self);
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn exchange(stream: &mut TcpStream, request: &str) -> Vec<u8> {
    write_frame(stream, request.as_bytes()).expect("request written");
    read_frame(stream)
        .expect("response read")
        .expect("daemon replied")
}

fn specs() -> Vec<String> {
    let mut specs: Vec<String> = (4..=9).map(|n| format!("ghz:{n}")).collect();
    specs.extend((3..=6).map(|n| format!("qft:{n}")));
    specs.push("grover:3".to_string());
    specs
}

/// Compiles every spec (no request ids, so the payloads are the
/// canonical cached bytes) and returns them in order.
fn compile_all(daemon: &Daemon, specs: &[String]) -> Vec<Vec<u8>> {
    let mut stream = daemon.connect();
    specs
        .iter()
        .map(|spec| {
            let request = format!(r#"{{"type":"compile","workload":"{spec}"}}"#);
            let payload = exchange(&mut stream, &request);
            assert!(
                payload.starts_with(br#"{"type":"result""#),
                "{spec} must compile: {}",
                String::from_utf8_lossy(&payload)
            );
            payload
        })
        .collect()
}

fn stats(daemon: &Daemon) -> Json {
    let mut stream = daemon.connect();
    let payload = exchange(&mut stream, r#"{"type":"stats"}"#);
    qcs_json::parse(std::str::from_utf8(&payload).unwrap()).expect("stats is JSON")
}

fn counter(value: &Json, section: &str, field: &str) -> usize {
    value
        .get(section)
        .and_then(|s| s.get(field))
        .and_then(Json::as_usize)
        .unwrap_or_else(|| panic!("stats.{section}.{field} missing"))
}

#[test]
fn sigkilled_daemon_restarts_warm_and_byte_identical() {
    let tmp = TempDir::new();
    let persist_dir = tmp.path().join("cache");
    let port_file = tmp.path().join("port");
    let specs = specs();

    // Fill the cache, then SIGKILL. Every append was fsynced before its
    // response, so everything we observed compiled is on disk.
    let daemon = Daemon::start(&persist_dir, &port_file);
    let pre_kill = compile_all(&daemon, &specs);
    daemon.kill();

    // Model the append the kill interrupted: a half-written record at
    // the tail of the active WAL segment (length claims 64 KiB, only a
    // few body bytes made it out).
    let mut wals: Vec<PathBuf> = std::fs::read_dir(&persist_dir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("wal-"))
        })
        .collect();
    wals.sort();
    let active = wals.last().expect("the kill left a WAL segment behind");
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(active)
        .unwrap();
    file.write_all(&(64u32 << 10).to_be_bytes()).unwrap();
    file.write_all(&[0xAB; 9]).unwrap();
    drop(file);

    // Restart on the same directory: replay must truncate the torn tail,
    // recover every completed record, and serve the whole sweep from
    // cache, byte-identical.
    let daemon = Daemon::start(&persist_dir, &port_file);
    let startup = stats(&daemon);
    assert_eq!(
        counter(&startup, "persist", "records_recovered"),
        specs.len()
    );
    assert_eq!(counter(&startup, "persist", "torn_tails_truncated"), 1);
    assert_eq!(counter(&startup, "persist", "corrupt_records_skipped"), 0);

    let post_restart = compile_all(&daemon, &specs);
    assert_eq!(
        pre_kill, post_restart,
        "responses after crash recovery must be byte-identical"
    );

    let after = stats(&daemon);
    assert_eq!(
        counter(&after, "cache", "hits"),
        specs.len(),
        "every post-restart compile is a warm hit"
    );
    assert_eq!(counter(&after, "cache", "misses"), 0);

    // A second crash-free restart must also replay the truncated WAL
    // without re-counting damage.
    daemon.shutdown();
    let daemon = Daemon::start(&persist_dir, &port_file);
    let third = stats(&daemon);
    assert_eq!(counter(&third, "persist", "records_recovered"), specs.len());
    assert_eq!(counter(&third, "persist", "torn_tails_truncated"), 0);
    assert_eq!(compile_all(&daemon, &specs), pre_kill);
    daemon.shutdown();
}
