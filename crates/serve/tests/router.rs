//! Integration tests for the consistent-hash sharding router: three
//! in-process shard daemons behind one router, exercising routing
//! stability, cache locality, and rerouting around a dead shard.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use qcs_json::Json;
use qcs_serve::protocol::{read_frame, write_frame};
use qcs_serve::router::{Router, RouterConfig, RouterHandle};
use qcs_serve::server::{Server, ServerConfig, ServerHandle};

fn start_shard() -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        event_loops: 1,
        max_connections: 32,
        cache_bytes: 8 << 20,
        frame_deadline: Duration::from_secs(5),
        persist_dir: None,
        semantic_cache: true,
        bucket_angles: false,
    })
    .expect("shard starts")
}

fn router_config(shard_addrs: Vec<String>) -> RouterConfig {
    RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        shards: shard_addrs,
        replicas: 64,
        health_interval: Duration::from_millis(100),
        connect_timeout: Duration::from_secs(1),
        io_timeout: Duration::from_secs(30),
        // Pinned far above test latencies: hedges never fire unless a
        // test opts in, keeping forwarded counts exact.
        hedge_after: Some(Duration::from_secs(5)),
        ..RouterConfig::default()
    }
}

fn start_router(shards: &[&ServerHandle]) -> RouterHandle {
    Router::start(router_config(
        shards.iter().map(|s| s.local_addr().to_string()).collect(),
    ))
    .expect("router starts")
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("router accepts connections");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

fn exchange(stream: &mut TcpStream, request: &str) -> Vec<u8> {
    write_frame(stream, request.as_bytes()).expect("request written");
    read_frame(stream)
        .expect("response read")
        .expect("peer replied")
}

fn exchange_json(stream: &mut TcpStream, request: &str) -> Json {
    let payload = exchange(stream, request);
    qcs_json::parse(std::str::from_utf8(&payload).unwrap()).expect("response is JSON")
}

fn response_type(value: &Json) -> &str {
    value.get("type").and_then(Json::as_str).unwrap_or("?")
}

fn compile_requests() -> Vec<String> {
    (4..=12)
        .map(|n| format!(r#"{{"type":"compile","workload":"ghz:{n}"}}"#))
        .collect()
}

/// Shard `forwarded` counters from the router's own stats.
fn forwarded_counts(control: &mut TcpStream) -> Vec<u64> {
    let stats = exchange_json(control, r#"{"type":"stats"}"#);
    let Some(Json::Array(shards)) = stats.get("shards") else {
        panic!("router stats carry a shards array: {stats:?}");
    };
    shards
        .iter()
        .map(|s| s.get("forwarded").and_then(Json::as_usize).unwrap() as u64)
        .collect()
}

#[test]
fn routes_compiles_and_answers_control_requests_itself() {
    let shards = [start_shard(), start_shard(), start_shard()];
    let router = start_router(&[&shards[0], &shards[1], &shards[2]]);
    let mut control = connect(router.local_addr());

    let pong = exchange_json(&mut control, r#"{"type":"ping"}"#);
    assert_eq!(response_type(&pong), "pong");

    let stats = exchange_json(&mut control, r#"{"type":"stats"}"#);
    assert_eq!(response_type(&stats), "stats");
    assert_eq!(stats.get("role").and_then(Json::as_str), Some("router"));

    // Compiles flow through to shards and come back as results.
    for request in compile_requests() {
        let reply = exchange_json(&mut control, &request);
        assert_eq!(response_type(&reply), "result", "reply: {reply:?}");
    }

    // Every request was forwarded somewhere, and with 9 distinct jobs on
    // a 64-replica ring the load should touch more than one shard.
    let counts = forwarded_counts(&mut control);
    assert_eq!(counts.iter().sum::<u64>(), 9);
    assert!(
        counts.iter().filter(|&&c| c > 0).count() >= 2,
        "all jobs landed on one shard: {counts:?}"
    );

    drop(control);
    router.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}

#[test]
fn identical_requests_always_land_on_the_same_shard() {
    let shards = [start_shard(), start_shard(), start_shard()];
    let router = start_router(&[&shards[0], &shards[1], &shards[2]]);
    let mut control = connect(router.local_addr());

    let requests = compile_requests();
    for request in &requests {
        exchange_json(&mut control, request);
    }
    let first_pass = forwarded_counts(&mut control);

    // Replay the identical workload twice: the per-shard distribution
    // must scale exactly — no request may migrate while its shard lives.
    for _ in 0..2 {
        for request in &requests {
            exchange_json(&mut control, request);
        }
    }
    let third_pass = forwarded_counts(&mut control);
    let expected: Vec<u64> = first_pass.iter().map(|c| c * 3).collect();
    assert_eq!(
        third_pass, expected,
        "routing moved between identical passes"
    );

    // Locality made those replays cache hits on their home shards:
    // fleet-wide hits must cover the two replay passes.
    let mut total_hits = 0;
    for shard in &shards {
        let mut direct = connect(shard.local_addr());
        let stats = exchange_json(&mut direct, r#"{"type":"stats"}"#);
        let cache = stats.get("cache").expect("shard stats carry cache");
        total_hits += cache.get("hits").and_then(Json::as_usize).unwrap();
    }
    assert_eq!(
        total_hits,
        2 * requests.len(),
        "replays were not served from shard-local caches"
    );

    drop(control);
    router.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}

#[test]
fn dead_shard_reroutes_with_zero_failed_requests() {
    let shards = [start_shard(), start_shard(), start_shard()];
    let router = start_router(&[&shards[0], &shards[1], &shards[2]]);
    let mut control = connect(router.local_addr());

    let requests = compile_requests();
    for request in &requests {
        exchange_json(&mut control, request);
    }
    let before = forwarded_counts(&mut control);

    // Kill the busiest shard and replay everything: every request must
    // still succeed, with the dead shard's keys rerouted to survivors.
    let victim = before
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(i, _)| i)
        .unwrap();
    let [a, b, c] = shards;
    let mut remaining = Vec::new();
    for (idx, shard) in [a, b, c].into_iter().enumerate() {
        if idx == victim {
            shard.shutdown();
        } else {
            remaining.push(shard);
        }
    }

    for request in &requests {
        let reply = exchange_json(&mut control, request);
        assert_eq!(
            response_type(&reply),
            "result",
            "request failed after shard death: {reply:?}"
        );
    }

    let after = forwarded_counts(&mut control);
    assert_eq!(
        after[victim], before[victim],
        "dead shard kept receiving successful forwards"
    );
    assert_eq!(
        after.iter().sum::<u64>(),
        2 * requests.len() as u64,
        "some requests were dropped instead of rerouted"
    );

    // Routing for surviving shards' keys must not have moved: their
    // counts at least doubled (own keys) and absorbed the victim's.
    for (idx, (&b_count, &a_count)) in before.iter().zip(after.iter()).enumerate() {
        if idx != victim {
            assert!(
                a_count >= 2 * b_count,
                "surviving shard {idx} lost keys it owned: {before:?} -> {after:?}"
            );
        }
    }

    drop(control);
    router.shutdown();
    for shard in remaining {
        shard.shutdown();
    }
}

/// A stand-in shard that answers health pings correctly but tears down
/// mid-response on any compile: it writes a frame header promising 100
/// bytes, sends only 10, and drops the connection.
fn start_torn_frame_shard() -> (SocketAddr, std::thread::JoinHandle<()>) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("fake shard binds");
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        // Serve connections until the test drops interest; every
        // connection is short-lived, so bound the loop generously.
        for _ in 0..64 {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
            while let Ok(Some(request)) = read_frame(&mut stream) {
                let is_ping = std::str::from_utf8(&request)
                    .ok()
                    .and_then(|text| qcs_json::parse(text).ok())
                    .and_then(|v| v.get("type").and_then(Json::as_str).map(str::to_string))
                    .as_deref()
                    == Some("ping");
                if is_ping {
                    if write_frame(&mut stream, br#"{"type":"pong"}"#).is_err() {
                        break;
                    }
                    continue;
                }
                // Torn response: a 100-byte header with a 10-byte body,
                // then a hard close mid-frame.
                use std::io::Write;
                let _ = stream.write_all(&100u32.to_be_bytes());
                let _ = stream.write_all(b"0123456789");
                let _ = stream.flush();
                break;
            }
        }
    });
    (addr, handle)
}

#[test]
fn shard_dying_mid_response_never_leaks_a_torn_frame_to_the_client() {
    let (fake_addr, _fake_thread) = start_torn_frame_shard();
    let router = Router::start(router_config(vec![fake_addr.to_string()])).expect("router starts");
    let mut control = connect(router.local_addr());

    // The only shard tears every compile mid-response. The client must
    // still receive one *complete* frame carrying a structured error —
    // never the shard's torn bytes, never a hang.
    let reply = exchange_json(&mut control, r#"{"type":"compile","workload":"ghz:4"}"#);
    assert_eq!(response_type(&reply), "error", "reply: {reply:?}");
    assert!(
        reply.get("message").and_then(Json::as_str).is_some(),
        "error carries a message: {reply:?}"
    );

    // The client connection survives the shard's collapse: the router
    // tore down its shard leg only, so control requests still flow.
    let pong = exchange_json(&mut control, r#"{"type":"ping"}"#);
    assert_eq!(response_type(&pong), "pong");
    let stats = exchange_json(&mut control, r#"{"type":"stats"}"#);
    let resilience = stats.get("resilience").expect("router stats resilience");
    assert_eq!(
        resilience.get("deadline_rejected").and_then(Json::as_usize),
        Some(0)
    );

    drop(control);
    router.shutdown();
}

#[test]
fn exhausted_deadline_is_rejected_before_forwarding() {
    let shards = [start_shard()];
    let router = start_router(&[&shards[0]]);
    let mut control = connect(router.local_addr());

    // A zero budget is spent by the time the router sees the request:
    // structured rejection, no forward, no retry_after hint (deadline
    // errors are final).
    let reply = exchange_json(
        &mut control,
        r#"{"type":"compile","workload":"ghz:4","deadline_ms":0}"#,
    );
    assert_eq!(response_type(&reply), "error");
    assert_eq!(
        reply.get("code").and_then(Json::as_str),
        Some("deadline_exceeded"),
        "reply: {reply:?}"
    );
    assert!(reply.get("retry_after_ms").is_none());

    let counts = forwarded_counts(&mut control);
    assert_eq!(counts.iter().sum::<u64>(), 0, "request must not forward");
    let stats = exchange_json(&mut control, r#"{"type":"stats"}"#);
    let resilience = stats.get("resilience").expect("router stats resilience");
    assert_eq!(
        resilience.get("deadline_rejected").and_then(Json::as_usize),
        Some(1)
    );

    // A generous budget flows through: the shard sees the rewritten
    // remainder and compiles normally.
    let reply = exchange_json(
        &mut control,
        r#"{"type":"compile","workload":"ghz:4","deadline_ms":60000}"#,
    );
    assert_eq!(response_type(&reply), "result", "reply: {reply:?}");

    drop(control);
    router.shutdown();
    for shard in shards {
        shard.shutdown();
    }
}
