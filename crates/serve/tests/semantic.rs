//! Semantic-cache coverage: property tests pinning the canonical form
//! (rename / relabel / commuting-reorder invariance, and no collisions
//! between non-equivalent circuits, statevector-checked), plus daemon
//! end-to-end tests proving a structurally-equivalent twin is served
//! from the canonical index — warm from memory, warm across a restart
//! through the v2 WAL, and *not* served when `--no-semantic-cache` is
//! set.

use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

use qcs_circuit::canon::{
    canonical_digest, canonicalize, commuting_shuffle, permute_qubits, CanonConfig,
};
use qcs_circuit::circuit::Circuit;
use qcs_circuit::qasm;
use qcs_core::config::MapperConfig;
use qcs_json::Json;
use qcs_rng::{ChaCha8Rng, Rng, SeedableRng};
use qcs_serve::compile::Job;
use qcs_serve::protocol::{read_frame, write_frame, CompileRequest, Source};
use qcs_serve::server::{Server, ServerConfig, ServerHandle};
use qcs_sim::equiv::circuits_equivalent;
use qcs_workloads::suite::{generate_suite, SuiteConfig};

/// Widest circuit the statevector oracle checks (matches the server's
/// semantic re-verification bound).
const SIM_MAX_QUBITS: usize = 12;

fn property_suite() -> Vec<qcs_workloads::suite::Benchmark> {
    generate_suite(&SuiteConfig {
        count: 40,
        max_qubits: SIM_MAX_QUBITS,
        max_gates: 300,
        seed: 0xE16,
    })
}

/// A seeded random permutation of `0..n`.
fn random_permutation(n: usize, rng: &mut ChaCha8Rng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        p.swap(i, j);
    }
    p
}

/// Builds the "same circuit, different author" twin: renamed, qubits
/// relabeled by a seeded permutation, commuting-adjacent gates shuffled.
fn structural_twin(circuit: &Circuit, seed: u64) -> Circuit {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let relabel = random_permutation(circuit.qubit_count(), &mut rng);
    let mut twin = commuting_shuffle(&permute_qubits(circuit, &relabel), seed ^ 0x5AFE, 128);
    twin.set_name(format!("twin-{seed:x}"));
    twin
}

/// Tentpole property: canonicalization erases authorship noise. Every
/// suite circuit and its renamed + relabeled + reordered twin reduce to
/// byte-identical canonical forms, hence identical canonical digests.
#[test]
fn suite_canonical_digests_survive_rename_relabel_and_reorder() {
    let config = CanonConfig::default();
    for (i, bench) in property_suite().iter().enumerate() {
        let twin = structural_twin(&bench.circuit, 0xC0DE + i as u64);
        let base = canonicalize(&bench.circuit, &config);
        let twisted = canonicalize(&twin, &config);
        assert!(
            base.normalized && twisted.normalized,
            "{}: property circuits are under the normal-form caps",
            bench.name
        );
        assert_eq!(
            qasm::print(&base.circuit),
            qasm::print(&twisted.circuit),
            "{}: canonical forms must be byte-identical",
            bench.name
        );
        assert_eq!(
            canonical_digest(&base.circuit),
            canonical_digest(&twisted.circuit),
            "{}: canonical digests must collapse the twin",
            bench.name
        );
    }
}

/// Soundness property: canonical digests never merge circuits that are
/// not actually equivalent. Any same-digest pair in the suite must pass
/// the statevector oracle, and a single-gate mutation must always move
/// the digest.
#[test]
fn non_equivalent_circuits_never_share_a_canonical_digest() {
    let config = CanonConfig::default();
    let suite = property_suite();
    let digests: Vec<u64> = suite
        .iter()
        .map(|b| canonical_digest(&canonicalize(&b.circuit, &config).circuit))
        .collect();

    let mut rng = ChaCha8Rng::seed_from_u64(0x0DDC_0111);
    for i in 0..suite.len() {
        for j in (i + 1)..suite.len() {
            if digests[i] != digests[j] {
                continue;
            }
            // A collision is only legal between genuinely equivalent
            // circuits — prove it on random states.
            let (a, b) = (&suite[i].circuit, &suite[j].circuit);
            assert_eq!(
                a.qubit_count(),
                b.qubit_count(),
                "{} vs {}: colliding digests across widths",
                suite[i].name,
                suite[j].name
            );
            assert!(
                a.qubit_count() <= SIM_MAX_QUBITS,
                "suite is generated within the oracle bound"
            );
            circuits_equivalent(a, b, 2, &mut rng).unwrap_or_else(|failure| {
                panic!(
                    "{} vs {}: canonical digest collided on non-equivalent \
                     circuits ({failure})",
                    suite[i].name, suite[j].name
                )
            });
        }
    }

    // Mutations: flipping one gate must move the canonical digest.
    for bench in suite.iter().take(12) {
        let mut mutated = bench.circuit.clone();
        mutated.x(0).expect("every suite circuit has qubit 0");
        let mutated_digest = canonical_digest(&canonicalize(&mutated, &config).circuit);
        let base_digest = canonical_digest(&canonicalize(&bench.circuit, &config).circuit);
        assert_ne!(
            base_digest, mutated_digest,
            "{}: appending a gate must change the canonical digest",
            bench.name
        );
    }
}

// ---------------------------------------------------------------------------
// Daemon end-to-end.
// ---------------------------------------------------------------------------

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!("qcs-semantic-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }
    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start_daemon(semantic: bool, persist_dir: Option<&Path>) -> ServerHandle {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        event_loops: 1,
        max_connections: 16,
        cache_bytes: 8 << 20,
        frame_deadline: Duration::from_secs(2),
        persist_dir: persist_dir.map(|p| p.to_string_lossy().into_owned()),
        semantic_cache: semantic,
        bucket_angles: false,
    })
    .expect("daemon starts")
}

fn exchange(stream: &mut TcpStream, request: &str) -> Vec<u8> {
    write_frame(stream, request.as_bytes()).expect("request written");
    read_frame(stream)
        .expect("response read")
        .expect("daemon replied")
}

fn exchange_json(addr: SocketAddr, request: &str) -> Json {
    let mut stream = TcpStream::connect(addr).expect("daemon accepts");
    let payload = exchange(&mut stream, request);
    qcs_json::parse(std::str::from_utf8(&payload).unwrap()).expect("response is JSON")
}

/// The e2e subject: an asymmetric 8-qubit circuit (every line has a
/// distinct signature, so the relabeling has no automorphism slack).
fn subject_circuit() -> Circuit {
    let mut c = Circuit::new(8);
    c.h(0).unwrap();
    for q in 0..7 {
        c.cnot(q, q + 1).unwrap();
    }
    c.rz(3, 0.375).unwrap();
    c.rx(5, 1.25).unwrap();
    c.t(1).unwrap();
    c.s(6).unwrap();
    c.cz(0, 4).unwrap();
    c.h(7).unwrap();
    c
}

fn compile_request(qasm_source: &str) -> String {
    let escaped = qasm_source
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n");
    format!(
        r#"{{"type":"compile","qasm":"{escaped}","device":"grid:3x4","placer":"trivial","router":"lookahead"}}"#
    )
}

fn semantic_counter(stats: &Json, field: &str) -> usize {
    stats
        .get("semantic")
        .and_then(|s| s.get(field))
        .and_then(Json::as_usize)
        .unwrap_or_else(|| {
            panic!(
                "stats.semantic.{field} missing: {}",
                stats.to_compact_string()
            )
        })
}

/// Resolves the exact job digest the daemon should stamp on a QASM
/// compile response, as a 16-hex string.
fn expected_digest(qasm_source: &str) -> String {
    let job = Job::resolve(&CompileRequest {
        source: Source::Qasm(qasm_source.to_string()),
        device: "grid:3x4".to_string(),
        config: MapperConfig::new("trivial", "lookahead"),
        deadline_ms: None,
        request_id: None,
        race: false,
    })
    .expect("subject resolves");
    format!("{:016x}", job.digest())
}

/// A renamed + relabeled + reordered twin compiles as a *canonical* hit:
/// no recompilation, the response is stamped with the twin's own exact
/// digest, and the served mapping re-verifies on the statevector oracle
/// (grid:3x4 is 12 qubits — inside the verify bound).
#[test]
fn structural_twin_is_served_from_the_canonical_index() {
    let original = subject_circuit();
    let twin = structural_twin(&original, 0xBEEF);
    let source_a = qasm::print(&original);
    let source_b = qasm::print(&twin);
    assert_ne!(source_a, source_b, "twin must differ textually");

    let handle = start_daemon(true, None);
    let addr = handle.local_addr();

    let response_a = exchange_json(addr, &compile_request(&source_a));
    assert_eq!(
        response_a.get("type").and_then(Json::as_str),
        Some("result")
    );

    let response_b = exchange_json(addr, &compile_request(&source_b));
    assert_eq!(
        response_b.get("type").and_then(Json::as_str),
        Some("result"),
        "twin must be served: {}",
        response_b.to_compact_string()
    );
    // The replayed payload is rewritten under the twin's own identity.
    assert_eq!(
        response_b.get("digest").and_then(Json::as_str),
        Some(expected_digest(&source_b).as_str()),
        "canonical hit must carry the twin's exact digest"
    );
    let stats = exchange_json(addr, r#"{"type":"stats"}"#);
    assert_eq!(semantic_counter(&stats, "canonical_hits"), 1);
    assert_eq!(semantic_counter(&stats, "canonical_rejected"), 0);
    assert_eq!(semantic_counter(&stats, "exact_hits"), 0);
    assert_eq!(semantic_counter(&stats, "misses"), 1, "only A missed");

    // Resubmitting the twin now hits the *exact* cache (the canonical
    // hit promoted it under its own identity).
    let replayed = exchange_json(addr, &compile_request(&source_b));
    assert_eq!(replayed, response_b, "promoted entry replays unchanged");
    let stats = exchange_json(addr, r#"{"type":"stats"}"#);
    assert_eq!(semantic_counter(&stats, "canonical_hits"), 1);
    assert_eq!(semantic_counter(&stats, "exact_hits"), 1);

    handle.shutdown();
}

/// Canonical identities survive the v2 WAL: compile, restart, and the
/// twin still lands as a canonical hit against the *recovered* entry.
#[test]
fn canonical_hit_survives_a_restart_through_the_wal() {
    let tmp = TempDir::new("wal-restart");
    let original = subject_circuit();
    let source_a = qasm::print(&original);

    let handle = start_daemon(true, Some(tmp.path()));
    let response_a = exchange_json(handle.local_addr(), &compile_request(&source_a));
    assert_eq!(
        response_a.get("type").and_then(Json::as_str),
        Some("result")
    );
    handle.shutdown();

    let handle = start_daemon(true, Some(tmp.path()));
    let addr = handle.local_addr();
    let stats = exchange_json(addr, r#"{"type":"stats"}"#);
    let recovered = stats
        .get("persist")
        .and_then(|p| p.get("records_recovered"))
        .and_then(Json::as_usize)
        .unwrap();
    assert_eq!(recovered, 1, "the compiled entry replays from the WAL");

    let twin = structural_twin(&original, 0xD00D);
    let source_b = qasm::print(&twin);
    let response_b = exchange_json(addr, &compile_request(&source_b));
    assert_eq!(
        response_b.get("type").and_then(Json::as_str),
        Some("result")
    );
    assert_eq!(
        response_b.get("digest").and_then(Json::as_str),
        Some(expected_digest(&source_b).as_str())
    );

    let stats = exchange_json(addr, r#"{"type":"stats"}"#);
    assert_eq!(
        semantic_counter(&stats, "canonical_hits"),
        1,
        "recovered canonical identity must serve the twin: {}",
        stats.to_compact_string()
    );
    assert_eq!(semantic_counter(&stats, "canonical_rejected"), 0);
    handle.shutdown();
}

/// `--no-semantic-cache` control: with semantic lookups off, the twin
/// compiles cold and the canonical counters stay at zero.
#[test]
fn disabled_semantic_cache_compiles_the_twin_cold() {
    let original = subject_circuit();
    let twin = structural_twin(&original, 0xF00D);

    let handle = start_daemon(false, None);
    let addr = handle.local_addr();
    let response_a = exchange_json(addr, &compile_request(&qasm::print(&original)));
    assert_eq!(
        response_a.get("type").and_then(Json::as_str),
        Some("result")
    );
    let response_b = exchange_json(addr, &compile_request(&qasm::print(&twin)));
    assert_eq!(
        response_b.get("type").and_then(Json::as_str),
        Some("result")
    );

    let stats = exchange_json(addr, r#"{"type":"stats"}"#);
    assert_eq!(
        stats
            .get("semantic")
            .and_then(|s| s.get("enabled"))
            .and_then(Json::as_bool),
        Some(false)
    );
    assert_eq!(semantic_counter(&stats, "canonical_hits"), 0);
    assert_eq!(semantic_counter(&stats, "misses"), 2, "both compile cold");
    handle.shutdown();
}
