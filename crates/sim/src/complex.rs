//! Minimal complex arithmetic for state-vector simulation.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number with `f64` parts.
///
/// # Examples
///
/// ```
/// use qcs_sim::C64;
///
/// let i = C64::I;
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// assert_eq!(C64::new(3.0, 4.0).norm_sqr(), 25.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Zero.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// A real number.
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    pub fn from_polar_unit(theta: f64) -> Self {
        C64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Scales by a real factor.
    pub fn scale(self, s: f64) -> Self {
        C64 {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Whether both parts are within `eps` of `other`'s.
    pub fn approx_eq(self, other: C64, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }
}

impl Add for C64 {
    type Output = C64;
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for C64 {
    fn add_assign(&mut self, rhs: C64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for C64 {
    type Output = C64;
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for C64 {
    type Output = C64;
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert_eq!(-a, C64::new(-1.0, -2.0));
    }

    #[test]
    fn conj_and_norm() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert_eq!(z.norm(), 5.0);
        assert_eq!((z * z.conj()).re, 25.0);
    }

    #[test]
    fn polar_unit() {
        let z = C64::from_polar_unit(std::f64::consts::FRAC_PI_2);
        assert!(z.approx_eq(C64::I, 1e-12));
    }

    #[test]
    fn add_assign_and_scale() {
        let mut z = C64::ONE;
        z += C64::I;
        assert_eq!(z.scale(2.0), C64::new(2.0, 2.0));
    }

    #[test]
    fn display() {
        assert_eq!(C64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(C64::new(1.0, 2.0).to_string(), "1+2i");
    }
}
