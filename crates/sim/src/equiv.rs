//! Equivalence checking: the routing-correctness oracle.
//!
//! Mapping inserts SWAPs and relabels qubits, so the mapped circuit is
//! only equivalent to the original *up to the tracked virtual→physical
//! permutation*. [`mapped_equivalent`] verifies exactly that contract by
//! simulating both circuits on random joint input states.

use qcs_rng::Rng;

use qcs_circuit::circuit::Circuit;

use crate::complex::C64;
use crate::exec::{run_unitary, run_unitary_mut};
use crate::state::StateVector;

/// Result details of a failed equivalence check.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivFailure {
    /// Trial index at which the mismatch occurred.
    pub trial: usize,
    /// State fidelity observed (should be ~1).
    pub fidelity: f64,
}

impl std::fmt::Display for EquivFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "equivalence failed at trial {}: state fidelity {:.6}",
            self.trial, self.fidelity
        )
    }
}

impl std::error::Error for EquivFailure {}

/// Checks two same-width circuits for equality up to global phase, by
/// simulation on `trials` random input states.
///
/// This is a randomized check: agreement on several Haar-ish random states
/// makes inequivalent unitaries astronomically unlikely to pass.
///
/// # Errors
///
/// Returns [`EquivFailure`] at the first mismatching trial.
///
/// # Panics
///
/// Panics if the circuits have different widths or the width exceeds the
/// simulator limit.
pub fn circuits_equivalent<R: Rng>(
    a: &Circuit,
    b: &Circuit,
    trials: usize,
    rng: &mut R,
) -> Result<(), EquivFailure> {
    assert_eq!(a.qubit_count(), b.qubit_count(), "width mismatch");
    let n = a.qubit_count();
    for trial in 0..trials {
        let input = StateVector::random(n, rng);
        let out_a = run_unitary(a, input.clone());
        let out_b = run_unitary(b, input);
        let fidelity = out_a.fidelity(&out_b);
        if (1.0 - fidelity).abs() > 1e-9 {
            return Err(EquivFailure { trial, fidelity });
        }
    }
    Ok(())
}

/// Embeds an `n`-qubit state into `m ≥ n` qubits, placing virtual qubit
/// `v` at physical position `placement[v]` and `|0⟩` elsewhere.
///
/// # Panics
///
/// Panics if `placement` is shorter than the state, repeats a physical
/// qubit, or points beyond `m`.
pub fn embed_state(state: &StateVector, m: usize, placement: &[usize]) -> StateVector {
    let mut out = StateVector::zero(m);
    embed_state_into(state, placement, &mut out);
    out
}

/// In-place [`embed_state`]: writes the embedded state into `out` (whose
/// width is the target register size), reusing its allocation. Same
/// arithmetic as `embed_state`, including the final normalization pass.
///
/// # Panics
///
/// As [`embed_state`], with `m` taken from `out`.
pub fn embed_state_into(state: &StateVector, placement: &[usize], out: &mut StateVector) {
    let n = state.qubit_count();
    let m = out.qubit_count();
    assert!(placement.len() >= n, "placement too short");
    assert!(m >= n, "target register too small");
    let mut seen = vec![false; m];
    for &p in &placement[..n] {
        assert!(p < m, "placement out of range");
        assert!(!seen[p], "placement repeats physical qubit {p}");
        seen[p] = true;
    }
    let amps = out.amps_mut();
    amps.fill(C64::ZERO);
    for idx in 0..1usize << n {
        let mut phys = 0usize;
        for (v, &p) in placement[..n].iter().enumerate() {
            if idx & (1 << v) != 0 {
                phys |= 1 << p;
            }
        }
        amps[phys] = state.amplitude(idx);
    }
    out.normalize();
}

/// Extracts the `n` virtual qubits back out of an `m`-qubit state given
/// the layout `layout[v] = physical position of virtual v`, verifying the
/// remaining physical qubits are exactly `|0⟩`.
///
/// Returns `None` if any amplitude mass sits outside the expected
/// subspace (within `1e-9`).
///
/// # Panics
///
/// Panics under the same conditions as [`embed_state`].
pub fn extract_state(state: &StateVector, n: usize, layout: &[usize]) -> Option<StateVector> {
    let mut out = StateVector::zero(n);
    extract_state_into(state, layout, &mut out).then_some(out)
}

/// In-place [`extract_state`]: writes the extracted `out.qubit_count()`
/// virtual qubits into `out`, reusing its allocation. Returns `false`
/// (leaving `out` unspecified) if amplitude mass sits outside the
/// expected subspace.
///
/// # Panics
///
/// As [`extract_state`], with `n` taken from `out`.
pub fn extract_state_into(state: &StateVector, layout: &[usize], out: &mut StateVector) -> bool {
    let m = state.qubit_count();
    let n = out.qubit_count();
    assert!(layout.len() >= n, "layout too short");
    let mut used = 0usize;
    for &p in &layout[..n] {
        assert!(p < m, "layout out of range");
        used |= 1 << p;
    }
    let amps = out.amps_mut();
    amps.fill(C64::ZERO);
    let mut outside = 0.0;
    for idx in 0..1usize << m {
        let a = state.amplitude(idx);
        if idx & !used != 0 {
            outside += a.norm_sqr();
            continue;
        }
        let mut virt = 0usize;
        for (v, &p) in layout[..n].iter().enumerate() {
            if idx & (1 << p) != 0 {
                virt |= 1 << v;
            }
        }
        amps[virt] = a;
    }
    if outside > 1e-9 {
        return false;
    }
    out.normalize();
    true
}

/// Verifies that `mapped` (on a device register of `device_qubits`)
/// implements `original` given the initial placement and final layout
/// (`initial[v]` / `final_layout[v]` = physical home of virtual qubit `v`
/// before / after execution).
///
/// # Errors
///
/// Returns [`EquivFailure`] at the first mismatching random trial; the
/// reported fidelity is 0 when amplitude leaked onto unused physical
/// qubits.
///
/// # Panics
///
/// Panics on inconsistent widths/placements or if `device_qubits`
/// exceeds the simulator limit.
pub fn mapped_equivalent<R: Rng>(
    original: &Circuit,
    mapped: &Circuit,
    device_qubits: usize,
    initial: &[usize],
    final_layout: &[usize],
    trials: usize,
    rng: &mut R,
) -> Result<(), EquivFailure> {
    mapped_equivalent_with_scratch(
        original,
        mapped,
        device_qubits,
        initial,
        final_layout,
        trials,
        rng,
        &mut EquivScratch::default(),
    )
}

/// Reusable state buffers for repeated [`mapped_equivalent_with_scratch`]
/// calls. One scratch held across a verification sweep replaces the four
/// `2^width` allocations per trial with zero.
#[derive(Debug, Default)]
pub struct EquivScratch {
    input: Option<StateVector>,
    want: Option<StateVector>,
    work: Option<StateVector>,
    got: Option<StateVector>,
}

/// Returns the slot's state, (re)creating it only on width change.
fn scratch_state(slot: &mut Option<StateVector>, qubits: usize) -> &mut StateVector {
    if slot.as_ref().map(StateVector::qubit_count) != Some(qubits) {
        *slot = Some(StateVector::zero(qubits));
    }
    slot.as_mut().expect("slot just filled")
}

/// [`mapped_equivalent`] with caller-owned scratch states: identical
/// trials and arithmetic, but all per-trial state allocations are reused
/// across calls.
///
/// # Errors
///
/// # Panics
///
/// As [`mapped_equivalent`].
#[allow(clippy::too_many_arguments)]
pub fn mapped_equivalent_with_scratch<R: Rng>(
    original: &Circuit,
    mapped: &Circuit,
    device_qubits: usize,
    initial: &[usize],
    final_layout: &[usize],
    trials: usize,
    rng: &mut R,
    scratch: &mut EquivScratch,
) -> Result<(), EquivFailure> {
    let n = original.qubit_count();
    assert!(
        mapped.qubit_count() <= device_qubits,
        "mapped circuit too wide"
    );
    for trial in 0..trials {
        let input = scratch_state(&mut scratch.input, n);
        input.randomize(rng);
        let want = scratch_state(&mut scratch.want, n);
        want.copy_from(input);
        run_unitary_mut(original, want);
        let work = scratch_state(&mut scratch.work, device_qubits);
        embed_state_into(input, initial, work);
        run_unitary_mut(mapped, work);
        let got = scratch_state(&mut scratch.got, n);
        if !extract_state_into(work, final_layout, got) {
            return Err(EquivFailure {
                trial,
                fidelity: 0.0,
            });
        }
        let fidelity = want.fidelity(got);
        if (1.0 - fidelity).abs() > 1e-9 {
            return Err(EquivFailure { trial, fidelity });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_rng::ChaCha8Rng;
    use qcs_rng::SeedableRng;

    #[test]
    fn identical_circuits_equivalent() {
        let mut c = Circuit::new(3);
        c.h(0)
            .unwrap()
            .cnot(0, 1)
            .unwrap()
            .toffoli(0, 1, 2)
            .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(circuits_equivalent(&c, &c.clone(), 3, &mut rng).is_ok());
    }

    #[test]
    fn detects_inequivalence() {
        let mut a = Circuit::new(2);
        a.cnot(0, 1).unwrap();
        let mut b = Circuit::new(2);
        b.cnot(1, 0).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(circuits_equivalent(&a, &b, 3, &mut rng).is_err());
    }

    #[test]
    fn decomposition_identities_hold() {
        use qcs_circuit::decompose::{decompose_circuit, GateSet};
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // Every tricky identity in the decomposer, against the simulator.
        let mut cases: Vec<Circuit> = Vec::new();
        let mut c = Circuit::new(2);
        c.cnot(0, 1).unwrap();
        cases.push(c);
        let mut c = Circuit::new(2);
        c.swap(0, 1).unwrap();
        cases.push(c);
        let mut c = Circuit::new(2);
        c.cphase(0, 1, 0.7).unwrap();
        cases.push(c);
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2).unwrap();
        cases.push(c);
        let mut c = Circuit::new(1);
        c.h(0).unwrap();
        cases.push(c);
        for set in [GateSet::surface_code_native(), GateSet::rotations_plus_cz()] {
            for case in &cases {
                let d = decompose_circuit(case, &set).unwrap();
                circuits_equivalent(case, &d, 3, &mut rng)
                    .unwrap_or_else(|e| panic!("{case:?} vs decomposition: {e}"));
            }
        }
    }

    #[test]
    fn embed_and_extract_round_trip() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let s = StateVector::random(2, &mut rng);
        let placement = [3, 1];
        let big = embed_state(&s, 4, &placement);
        let back = extract_state(&big, 2, &placement).unwrap();
        assert!(back.approx_eq_up_to_phase(&s, 1e-12));
        assert_eq!(back.amplitudes(), s.amplitudes());
    }

    #[test]
    fn extract_detects_leakage() {
        let mut big = StateVector::zero(3);
        big.apply_h(2); // amplitude on a qubit outside the layout
        assert!(extract_state(&big, 1, &[0]).is_none());
    }

    #[test]
    fn mapped_equivalence_with_swap_insertion() {
        // Original: CNOT(0, 1) between virtually adjacent qubits.
        let mut original = Circuit::new(2);
        original.cnot(0, 1).unwrap();
        // Mapped onto a 3-qubit line where the pair starts at distance 2:
        // SWAP(1, 2) brings virtual 1 (at physical 2) next to physical 0.
        let mut mapped = Circuit::new(3);
        mapped.swap(1, 2).unwrap().cnot(0, 1).unwrap();
        let initial = [0, 2];
        let final_layout = [0, 1]; // virtual 1 moved from 2 to 1
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        mapped_equivalent(&original, &mapped, 3, &initial, &final_layout, 3, &mut rng)
            .expect("swap-routed circuit must be equivalent");
    }

    #[test]
    fn mapped_equivalence_catches_wrong_layout() {
        let mut original = Circuit::new(2);
        original.cnot(0, 1).unwrap();
        let mut mapped = Circuit::new(3);
        mapped.swap(1, 2).unwrap().cnot(0, 1).unwrap();
        let initial = [0, 2];
        let wrong_final = [0, 2]; // stale layout
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        assert!(
            mapped_equivalent(&original, &mapped, 3, &initial, &wrong_final, 3, &mut rng).is_err()
        );
    }

    #[test]
    #[should_panic(expected = "repeats physical qubit")]
    fn embed_rejects_duplicate_placement() {
        let s = StateVector::zero(2);
        let _ = embed_state(&s, 3, &[1, 1]);
    }
}
