//! Executing circuits on state vectors.

use qcs_rng::Rng;

use qcs_circuit::circuit::Circuit;
use qcs_circuit::gate::Gate;

use crate::complex::C64;
use crate::state::StateVector;

/// Applies one unitary gate to `state`. Measurements and barriers are
/// rejected — use [`run`] for full circuits.
///
/// # Panics
///
/// Panics if the gate is non-unitary or its operands exceed the state
/// width.
pub fn apply_gate(state: &mut StateVector, gate: &Gate) {
    match *gate {
        Gate::I(_) => {}
        Gate::X(q) => state.apply_x(q),
        Gate::Y(q) => state.apply_y(q),
        Gate::Z(q) => state.apply_z(q),
        Gate::H(q) => state.apply_h(q),
        Gate::S(q) => state.apply_phase(q, C64::I),
        Gate::Sdg(q) => state.apply_phase(q, -C64::I),
        Gate::T(q) => state.apply_phase(q, C64::from_polar_unit(std::f64::consts::FRAC_PI_4)),
        Gate::Tdg(q) => state.apply_phase(q, C64::from_polar_unit(-std::f64::consts::FRAC_PI_4)),
        Gate::Rx(q, a) => state.apply_rx(q, a),
        Gate::Ry(q, a) => state.apply_ry(q, a),
        Gate::Rz(q, a) => state.apply_rz(q, a),
        Gate::Cnot(c, t) => state.apply_cnot(c, t),
        Gate::Cz(a, b) => state.apply_cz(a, b),
        Gate::Cphase(a, b, th) => state.apply_cphase(a, b, th),
        Gate::Swap(a, b) => state.apply_swap(a, b),
        Gate::Toffoli(a, b, t) => state.apply_toffoli(a, b, t),
        Gate::Measure(_) | Gate::Barrier(_) => {
            panic!("apply_gate only handles unitary gates; got {gate}")
        }
    }
}

/// Runs the unitary part of `circuit` on `state`, skipping measurements
/// and barriers. Returns the evolved state.
///
/// # Panics
///
/// Panics if the circuit is wider than the state.
pub fn run_unitary(circuit: &Circuit, mut state: StateVector) -> StateVector {
    run_unitary_mut(circuit, &mut state);
    state
}

/// In-place [`run_unitary`]: evolves `state` without taking ownership, so
/// callers can reuse one scratch state across many runs.
///
/// # Panics
///
/// Panics if the circuit is wider than the state.
pub fn run_unitary_mut(circuit: &Circuit, state: &mut StateVector) {
    assert!(
        circuit.qubit_count() <= state.qubit_count(),
        "circuit wider than state"
    );
    for g in circuit.iter() {
        if g.is_unitary() {
            apply_gate(state, g);
        }
    }
}

/// Runs `circuit` with projective measurements, returning the final state
/// and the classical measurement record `(qubit, outcome)` in program
/// order.
///
/// # Panics
///
/// Panics if the circuit is wider than the state.
pub fn run<R: Rng>(
    circuit: &Circuit,
    mut state: StateVector,
    rng: &mut R,
) -> (StateVector, Vec<(usize, bool)>) {
    assert!(
        circuit.qubit_count() <= state.qubit_count(),
        "circuit wider than state"
    );
    let mut record = Vec::new();
    for g in circuit.iter() {
        match *g {
            Gate::Measure(q) => {
                let bit = state.measure_collapse(q, rng);
                record.push((q, bit));
            }
            Gate::Barrier(_) => {}
            _ => apply_gate(&mut state, g),
        }
    }
    (state, record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_rng::ChaCha8Rng;
    use qcs_rng::SeedableRng;

    #[test]
    fn runs_bell_circuit() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap().cnot(0, 1).unwrap();
        let s = run_unitary(&c, StateVector::zero(2));
        assert!((s.probabilities()[0b11] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ghz_measurements_agree() {
        let mut c = Circuit::new(3);
        c.h(0).unwrap().cnot(0, 1).unwrap().cnot(1, 2).unwrap();
        c.measure_all();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10 {
            let (_, record) = run(&c, StateVector::zero(3), &mut rng);
            assert_eq!(record.len(), 3);
            let first = record[0].1;
            assert!(record.iter().all(|&(_, b)| b == first), "GHZ correlation");
        }
    }

    #[test]
    fn barriers_are_noops() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap();
        c.barrier_all();
        c.h(0).unwrap();
        let s = run_unitary(&c, StateVector::zero(2));
        assert!(s.amplitude(0).approx_eq(crate::complex::C64::ONE, 1e-12));
    }

    #[test]
    fn s_gate_squared_is_z() {
        let mut c1 = Circuit::new(1);
        c1.s(0).unwrap().s(0).unwrap();
        let mut c2 = Circuit::new(1);
        c2.z(0).unwrap();
        let mut init = StateVector::random(1, &mut ChaCha8Rng::seed_from_u64(2));
        let a = run_unitary(&c1, init.clone());
        let b = run_unitary(&c2, init.clone());
        assert!(a.approx_eq_up_to_phase(&b, 1e-10));
        init.apply_h(0); // silence unused-mut lint via a real use
    }

    #[test]
    fn t_gate_squared_is_s() {
        let mut c1 = Circuit::new(1);
        c1.t(0).unwrap().t(0).unwrap();
        let mut c2 = Circuit::new(1);
        c2.s(0).unwrap();
        let init = StateVector::random(1, &mut ChaCha8Rng::seed_from_u64(3));
        let a = run_unitary(&c1, init.clone());
        let b = run_unitary(&c2, init);
        assert!(a.approx_eq_up_to_phase(&b, 1e-10));
    }

    #[test]
    fn circuit_on_wider_state() {
        let mut c = Circuit::new(2);
        c.x(1).unwrap();
        let s = run_unitary(&c, StateVector::zero(4));
        assert_eq!(s.probabilities()[0b0010], 1.0);
    }

    #[test]
    #[should_panic(expected = "wider than state")]
    fn too_narrow_state_panics() {
        let mut c = Circuit::new(3);
        c.x(2).unwrap();
        let _ = run_unitary(&c, StateVector::zero(2));
    }

    #[test]
    #[should_panic(expected = "only handles unitary")]
    fn apply_gate_rejects_measure() {
        let mut s = StateVector::zero(1);
        apply_gate(&mut s, &Gate::Measure(0));
    }
}
