//! State-vector quantum simulator.
//!
//! The verification substrate of the reproduction: the paper's experiments
//! report *estimated* fidelities (products of gate fidelities), but the
//! mapping passes must provably preserve circuit semantics. This crate
//! provides:
//!
//! * [`complex`] — a minimal complex-number type (no external deps).
//! * [`state`] — [`state::StateVector`]: exact simulation up to ~20 qubits
//!   with per-gate bit-twiddling kernels.
//! * [`exec`] — running [`qcs_circuit::Circuit`]s on states.
//! * [`equiv`] — equivalence checking: same-width circuits up to global
//!   phase, and original-vs-mapped circuits up to the tracked
//!   virtual→physical permutation (the routing correctness oracle).
//! * [`noise`] — Monte-Carlo Pauli error injection for validating the
//!   analytic fidelity model used in Fig. 3.
//! * [`unitary`] — exact `2^n × 2^n` unitary extraction for proving
//!   decomposition identities and optimizer rewrites outright.
//!
//! # Examples
//!
//! ```
//! use qcs_circuit::circuit::Circuit;
//! use qcs_sim::exec::run_unitary;
//! use qcs_sim::state::StateVector;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0)?.cnot(0, 1)?;
//! let state = run_unitary(&bell, StateVector::zero(2));
//! let p = state.probabilities();
//! assert!((p[0b00] - 0.5).abs() < 1e-12);
//! assert!((p[0b11] - 0.5).abs() < 1e-12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod complex;
pub mod equiv;
pub mod exec;
pub mod noise;
pub mod state;
pub mod unitary;

pub use complex::C64;
pub use state::StateVector;
