//! Monte-Carlo Pauli noise: validating the analytic fidelity model.
//!
//! Fig. 3 of the paper computes circuit fidelity "as product of fidelities
//! for all one- and two-qubit gates in the circuit". This module provides
//! the stochastic counterpart: per-gate fault injection with the same
//! per-gate error rates, so tests can confirm the analytic product equals
//! the fault-free shot frequency.

use qcs_rng::Rng;

use qcs_circuit::circuit::Circuit;
use qcs_circuit::gate::Gate;

use crate::exec::apply_gate;
use crate::state::StateVector;

/// Per-gate error rates used by the noisy executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Error probability of a single-qubit gate.
    pub single_qubit_error: f64,
    /// Error probability of a two-qubit gate.
    pub two_qubit_error: f64,
    /// Error probability of a measurement.
    pub measurement_error: f64,
}

impl NoiseModel {
    /// Builds a model from gate *fidelities* (error = 1 − fidelity).
    ///
    /// # Panics
    ///
    /// Panics if any fidelity is outside `[0, 1]`.
    pub fn from_fidelities(single: f64, two: f64, measurement: f64) -> Self {
        for f in [single, two, measurement] {
            assert!((0.0..=1.0).contains(&f), "fidelity must be in [0, 1]");
        }
        NoiseModel {
            single_qubit_error: 1.0 - single,
            two_qubit_error: 1.0 - two,
            measurement_error: 1.0 - measurement,
        }
    }

    /// The error probability applicable to `gate`.
    pub fn error_for(&self, gate: &Gate) -> f64 {
        match gate {
            Gate::Measure(_) => self.measurement_error,
            Gate::Barrier(_) => 0.0,
            g if g.is_two_qubit() => self.two_qubit_error,
            Gate::Toffoli(..) => self.two_qubit_error, // modelled as 2q-class
            _ => self.single_qubit_error,
        }
    }

    /// Analytic success probability: the product of per-gate success
    /// probabilities — exactly the paper's Fig. 3 fidelity estimate.
    pub fn analytic_success(&self, circuit: &Circuit) -> f64 {
        circuit.iter().map(|g| 1.0 - self.error_for(g)).product()
    }
}

/// Outcome of one noisy shot.
#[derive(Debug, Clone, PartialEq)]
pub struct Shot {
    /// Sampled final basis state.
    pub outcome: usize,
    /// Number of fault events injected during the shot.
    pub faults: usize,
}

/// Runs one shot of `circuit` with Pauli fault injection: after each gate,
/// with the model's error probability, a uniformly random Pauli (X, Y or
/// Z) hits each operand qubit. Measurements are deferred to a final full
/// sample.
pub fn noisy_shot<R: Rng>(circuit: &Circuit, model: &NoiseModel, rng: &mut R) -> Shot {
    let mut state = StateVector::zero(circuit.qubit_count());
    noisy_shot_into(circuit, model, rng, &mut state)
}

/// [`noisy_shot`] on a caller-provided scratch state, so shot loops reuse
/// one amplitude buffer instead of allocating `2^n` amplitudes per shot.
/// The state is reset to `|0…0⟩` before the shot runs.
///
/// # Panics
///
/// Panics if `state` is narrower than the circuit.
pub fn noisy_shot_into<R: Rng>(
    circuit: &Circuit,
    model: &NoiseModel,
    rng: &mut R,
    state: &mut StateVector,
) -> Shot {
    assert!(
        circuit.qubit_count() <= state.qubit_count(),
        "circuit wider than state"
    );
    state.reset_zero();
    let mut faults = 0;
    for g in circuit.iter() {
        if g.is_unitary() {
            apply_gate(state, g);
        }
        let p = model.error_for(g);
        if p > 0.0 && rng.gen::<f64>() < p {
            faults += 1;
            for q in g.qubits() {
                match rng.gen_range(0..3) {
                    0 => state.apply_x(q),
                    1 => state.apply_y(q),
                    _ => state.apply_z(q),
                }
            }
        }
    }
    Shot {
        outcome: state.sample(rng),
        faults,
    }
}

/// Statistics from a batch of noisy shots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoisyRunStats {
    /// Number of shots executed.
    pub shots: usize,
    /// Fraction of shots with zero fault events — the Monte-Carlo estimate
    /// of the analytic fidelity product.
    pub fault_free_fraction: f64,
    /// Mean faults per shot.
    pub mean_faults: f64,
}

/// Runs `shots` noisy shots and aggregates fault statistics.
pub fn run_noisy<R: Rng>(
    circuit: &Circuit,
    model: &NoiseModel,
    shots: usize,
    rng: &mut R,
) -> NoisyRunStats {
    let mut fault_free = 0usize;
    let mut total_faults = 0usize;
    let mut state = StateVector::zero(circuit.qubit_count());
    for _ in 0..shots {
        let s = noisy_shot_into(circuit, model, rng, &mut state);
        if s.faults == 0 {
            fault_free += 1;
        }
        total_faults += s.faults;
    }
    NoisyRunStats {
        shots,
        fault_free_fraction: fault_free as f64 / shots.max(1) as f64,
        mean_faults: total_faults as f64 / shots.max(1) as f64,
    }
}

/// Total variation distance between the noisy empirical output
/// distribution (over `shots` sampled shots) and the ideal noiseless
/// distribution: `½ Σ_x |p_noisy(x) − p_ideal(x)|` in `[0, 1]`.
///
/// This is the distribution-level counterpart of the fault-free success
/// probability — it keeps credit for faults that happen not to disturb
/// the measured observable.
///
/// # Panics
///
/// Panics if `shots == 0` or the circuit exceeds the simulator limit.
pub fn total_variation_distance<R: Rng>(
    circuit: &Circuit,
    model: &NoiseModel,
    shots: usize,
    rng: &mut R,
) -> f64 {
    assert!(shots > 0, "need at least one shot");
    let mut state = StateVector::zero(circuit.qubit_count());
    for g in circuit.iter() {
        if g.is_unitary() {
            apply_gate(&mut state, g);
        }
    }
    let mut ideal = Vec::new();
    state.probabilities_into(&mut ideal);
    let mut counts = vec![0usize; ideal.len()];
    for _ in 0..shots {
        counts[noisy_shot_into(circuit, model, rng, &mut state).outcome] += 1;
    }
    0.5 * ideal
        .iter()
        .zip(&counts)
        .map(|(&p, &c)| (c as f64 / shots as f64 - p).abs())
        .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_rng::ChaCha8Rng;
    use qcs_rng::SeedableRng;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).unwrap().cnot(0, 1).unwrap().cnot(1, 2).unwrap();
        c.h(2).unwrap().cz(0, 2).unwrap();
        c
    }

    #[test]
    fn error_classification() {
        let m = NoiseModel::from_fidelities(0.999, 0.99, 0.995);
        assert!((m.error_for(&Gate::H(0)) - 0.001).abs() < 1e-12);
        assert!((m.error_for(&Gate::Cz(0, 1)) - 0.01).abs() < 1e-12);
        assert!((m.error_for(&Gate::Measure(0)) - 0.005).abs() < 1e-12);
        assert_eq!(m.error_for(&Gate::Barrier(0)), 0.0);
    }

    #[test]
    fn analytic_product() {
        let m = NoiseModel::from_fidelities(0.999, 0.99, 1.0);
        let c = sample_circuit();
        // 2 single-qubit + 3 two-qubit gates.
        let expected = 0.999f64.powi(2) * 0.99f64.powi(3);
        assert!((m.analytic_success(&c) - expected).abs() < 1e-12);
    }

    #[test]
    fn zero_noise_is_fault_free() {
        let m = NoiseModel::from_fidelities(1.0, 1.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let stats = run_noisy(&sample_circuit(), &m, 50, &mut rng);
        assert_eq!(stats.fault_free_fraction, 1.0);
        assert_eq!(stats.mean_faults, 0.0);
    }

    #[test]
    fn monte_carlo_matches_analytic() {
        // Large error rates so the statistic converges quickly.
        let m = NoiseModel::from_fidelities(0.95, 0.9, 1.0);
        let c = sample_circuit();
        let analytic = m.analytic_success(&c);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let stats = run_noisy(&c, &m, 4000, &mut rng);
        assert!(
            (stats.fault_free_fraction - analytic).abs() < 0.03,
            "MC {} vs analytic {}",
            stats.fault_free_fraction,
            analytic
        );
    }

    #[test]
    fn more_gates_lower_success() {
        let m = NoiseModel::from_fidelities(0.999, 0.99, 0.995);
        let short = sample_circuit();
        let mut long = short.clone();
        long.extend_from(&short).unwrap();
        assert!(m.analytic_success(&long) < m.analytic_success(&short));
    }

    #[test]
    fn shots_report_faults() {
        let m = NoiseModel::from_fidelities(0.0, 0.0, 1.0); // always fault
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let shot = noisy_shot(&sample_circuit(), &m, &mut rng);
        assert_eq!(shot.faults, 5);
    }

    #[test]
    #[should_panic(expected = "fidelity must be in")]
    fn rejects_bad_fidelity() {
        let _ = NoiseModel::from_fidelities(1.2, 0.9, 0.9);
    }

    #[test]
    fn tvd_zero_without_noise() {
        let m = NoiseModel::from_fidelities(1.0, 1.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        // Classical circuit: ideal distribution is a point mass, sampling
        // noise vanishes, TVD is exactly 0.
        let mut c = Circuit::new(2);
        c.x(0).unwrap().cnot(0, 1).unwrap();
        let tvd = total_variation_distance(&c, &m, 200, &mut rng);
        assert_eq!(tvd, 0.0);
    }

    #[test]
    fn tvd_grows_with_noise() {
        let mut c = Circuit::new(2);
        c.x(0).unwrap().cnot(0, 1).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let low = total_variation_distance(
            &c,
            &NoiseModel::from_fidelities(0.99, 0.99, 1.0),
            2000,
            &mut rng,
        );
        let high = total_variation_distance(
            &c,
            &NoiseModel::from_fidelities(0.7, 0.7, 1.0),
            2000,
            &mut rng,
        );
        assert!(high > low, "high-noise TVD {high} vs low-noise {low}");
        assert!((0.0..=1.0).contains(&high));
    }

    #[test]
    #[should_panic(expected = "at least one shot")]
    fn tvd_rejects_zero_shots() {
        let m = NoiseModel::from_fidelities(1.0, 1.0, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let _ = total_variation_distance(&Circuit::new(1), &m, 0, &mut rng);
    }
}
