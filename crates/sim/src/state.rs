//! The [`StateVector`] and its gate kernels.
//!
//! Convention: qubit `q` is bit `q` of the basis index (little-endian), so
//! basis state `|q_{n-1} … q_1 q_0⟩` has index `Σ q_k 2^k`.

use std::sync::atomic::{AtomicUsize, Ordering};

use qcs_rng::Rng;

use crate::complex::C64;

/// States with at least this many qubits are eligible for the opt-in
/// parallel gate kernels (below it, partitioning costs more than it buys).
pub const PAR_THRESHOLD: usize = 16;

/// Worker threads for the gate kernels; 0 = unset (resolve from the
/// `QCS_SIM_THREADS` environment variable on first use, default 1).
static SIM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the number of worker threads the gate kernels may use on states
/// of at least [`PAR_THRESHOLD`] qubits. The default is 1 (serial);
/// parallelism is strictly opt-in. Results are bitwise identical at any
/// thread count: threads partition the amplitude array into disjoint
/// block-aligned ranges and every amplitude is written by exactly one
/// thread with the same arithmetic.
pub fn set_sim_threads(threads: usize) {
    SIM_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// The currently configured kernel thread count (≥ 1).
pub fn sim_threads() -> usize {
    let v = SIM_THREADS.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    let n = std::env::var("QCS_SIM_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(1)
        .max(1);
    SIM_THREADS.store(n, Ordering::Relaxed);
    n
}

/// Runs `kernel` over `amps` either inline or partitioned across scoped
/// threads in contiguous ranges that are multiples of `block` (so every
/// gate's amplitude group stays within one range). `kernel` must be
/// position-independent: gate bit-masks below `block` read the same
/// pattern in every aligned range.
fn blocked<F>(amps: &mut [C64], qubits: usize, block: usize, kernel: F)
where
    F: Fn(&mut [C64]) + Sync,
{
    let threads = sim_threads();
    if qubits < PAR_THRESHOLD || threads < 2 || amps.len() <= block {
        kernel(amps);
        return;
    }
    let nblocks = amps.len() / block;
    let per = nblocks.div_ceil(threads) * block;
    let kernel = &kernel;
    std::thread::scope(|s| {
        for chunk in amps.chunks_mut(per) {
            s.spawn(move || kernel(chunk));
        }
    });
}

/// Exact quantum state of `n` qubits (`2^n` complex amplitudes).
///
/// # Examples
///
/// ```
/// use qcs_sim::StateVector;
///
/// let mut s = StateVector::zero(2);
/// s.apply_h(0);
/// s.apply_cnot(0, 1);
/// let p = s.probabilities();
/// assert!((p[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    qubits: usize,
    amps: Vec<C64>,
}

/// Practical qubit limit (2^24 amplitudes ≈ 256 MiB); constructors panic
/// beyond it to fail fast instead of aborting on allocation.
pub const MAX_QUBITS: usize = 24;

impl StateVector {
    /// The all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `qubits > MAX_QUBITS`.
    pub fn zero(qubits: usize) -> Self {
        assert!(
            qubits <= MAX_QUBITS,
            "state of {qubits} qubits exceeds the {MAX_QUBITS}-qubit simulator limit"
        );
        let mut amps = vec![C64::ZERO; 1 << qubits];
        amps[0] = C64::ONE;
        StateVector { qubits, amps }
    }

    /// A computational basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^qubits` or `qubits > MAX_QUBITS`.
    pub fn basis(qubits: usize, index: usize) -> Self {
        let mut s = StateVector::zero(qubits);
        assert!(index < s.amps.len(), "basis index out of range");
        s.amps[0] = C64::ZERO;
        s.amps[index] = C64::ONE;
        s
    }

    /// Builds a state from raw amplitudes, normalizing them.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two, the norm is zero, or
    /// the implied qubit count exceeds [`MAX_QUBITS`].
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let len = amps.len();
        assert!(
            len.is_power_of_two() && len > 0,
            "length must be a power of two"
        );
        let qubits = len.trailing_zeros() as usize;
        assert!(qubits <= MAX_QUBITS, "too many qubits");
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 0.0, "cannot normalize the zero vector");
        let amps = amps.into_iter().map(|a| a.scale(1.0 / norm)).collect();
        StateVector { qubits, amps }
    }

    /// A Haar-ish random state (i.i.d. Gaussian-free: uniform box sampled
    /// then normalized — adequate for equivalence spot-checks).
    pub fn random<R: Rng>(qubits: usize, rng: &mut R) -> Self {
        let mut s = StateVector::zero(qubits);
        s.randomize(rng);
        s
    }

    /// In-place [`StateVector::random`]: refills this state with fresh
    /// random amplitudes, reusing the allocation. Draws from `rng` in the
    /// same order as `random`, so the two produce identical states from
    /// identical generator positions.
    pub fn randomize<R: Rng>(&mut self, rng: &mut R) {
        for a in &mut self.amps {
            *a = C64::new(rng.gen::<f64>() * 2.0 - 1.0, rng.gen::<f64>() * 2.0 - 1.0);
        }
        self.normalize();
    }

    /// Copies the amplitudes of `other` into this state without
    /// reallocating.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn copy_from(&mut self, other: &StateVector) {
        assert_eq!(self.qubits, other.qubits, "width mismatch");
        self.amps.copy_from_slice(&other.amps);
    }

    /// Raw mutable amplitude access for the in-crate embed/extract
    /// kernels.
    pub(crate) fn amps_mut(&mut self) -> &mut [C64] {
        &mut self.amps
    }

    /// Rescales to unit norm, with the same accumulation order as
    /// [`StateVector::from_amplitudes`].
    ///
    /// # Panics
    ///
    /// Panics on the zero vector.
    pub(crate) fn normalize(&mut self) {
        let norm: f64 = self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 0.0, "cannot normalize the zero vector");
        for a in &mut self.amps {
            *a = a.scale(1.0 / norm);
        }
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.qubits
    }

    /// The amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn amplitude(&self, index: usize) -> C64 {
        self.amps[index]
    }

    /// All amplitudes, basis-index order.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Measurement probabilities for every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.probabilities_into(&mut out);
        out
    }

    /// Writes the measurement probabilities into `out` (cleared first),
    /// reusing its capacity — the allocation-free form of
    /// [`StateVector::probabilities`] for sampling loops.
    pub fn probabilities_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.amps.iter().map(|a| a.norm_sqr()));
    }

    /// Resets this state to `|0…0⟩` in place, keeping the allocation —
    /// the scratch-reuse counterpart of [`StateVector::zero`].
    pub fn reset_zero(&mut self) {
        self.amps.fill(C64::ZERO);
        self.amps[0] = C64::ONE;
    }

    /// Probability that qubit `q` measures 1.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn probability_of_one(&self, q: usize) -> f64 {
        assert!(q < self.qubits, "qubit out of range");
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Samples a basis state from the measurement distribution.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let mut target = rng.gen::<f64>();
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if target <= p {
                return i;
            }
            target -= p;
        }
        self.amps.len() - 1
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn inner_product(&self, other: &StateVector) -> C64 {
        assert_eq!(self.qubits, other.qubits, "width mismatch");
        let mut acc = C64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// State fidelity `|⟨self|other⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Whether the states are equal up to a global phase within `eps`.
    pub fn approx_eq_up_to_phase(&self, other: &StateVector, eps: f64) -> bool {
        if self.qubits != other.qubits {
            return false;
        }
        (1.0 - self.fidelity(other)).abs() <= eps
    }

    // --- gate kernels ----------------------------------------------------

    /// Applies an arbitrary 2×2 matrix `[[m00, m01], [m10, m11]]` to `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_single(&mut self, q: usize, m: [[C64; 2]; 2]) {
        assert!(q < self.qubits, "qubit out of range");
        let half = 1usize << q;
        blocked(&mut self.amps, self.qubits, half << 1, |chunk| {
            // Stride-blocked pair walk: each 2·half block splits into the
            // q=0 and q=1 halves, whose elements pair up index-for-index.
            // `chunks_exact_mut` + `split_at_mut` + `zip` let the compiler
            // drop every bounds check in the inner loop.
            for block in chunk.chunks_exact_mut(half << 1) {
                let (lo, hi) = block.split_at_mut(half);
                for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
                    let (x, y) = (*a0, *a1);
                    *a0 = m[0][0] * x + m[0][1] * y;
                    *a1 = m[1][0] * x + m[1][1] * y;
                }
            }
        });
    }

    /// Pauli-X on `q`.
    pub fn apply_x(&mut self, q: usize) {
        assert!(q < self.qubits, "qubit out of range");
        let half = 1usize << q;
        blocked(&mut self.amps, self.qubits, half << 1, |chunk| {
            for block in chunk.chunks_exact_mut(half << 1) {
                let (lo, hi) = block.split_at_mut(half);
                lo.swap_with_slice(hi);
            }
        });
    }

    /// Pauli-Y on `q`.
    pub fn apply_y(&mut self, q: usize) {
        self.apply_single(q, [[C64::ZERO, -C64::I], [C64::I, C64::ZERO]]);
    }

    /// Pauli-Z on `q`.
    pub fn apply_z(&mut self, q: usize) {
        self.apply_phase(q, C64::real(-1.0));
    }

    /// Hadamard on `q`.
    pub fn apply_h(&mut self, q: usize) {
        let h = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        self.apply_single(q, [[h, h], [h, -h]]);
    }

    /// Applies `diag(1, phase)` to `q` (S, T, Rz-like gates).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_phase(&mut self, q: usize, phase: C64) {
        assert!(q < self.qubits, "qubit out of range");
        let half = 1usize << q;
        blocked(&mut self.amps, self.qubits, half << 1, |chunk| {
            for block in chunk.chunks_exact_mut(half << 1) {
                let (_, hi) = block.split_at_mut(half);
                for a in hi {
                    *a = *a * phase;
                }
            }
        });
    }

    /// Rx(θ) on `q`.
    pub fn apply_rx(&mut self, q: usize, theta: f64) {
        let c = C64::real((theta / 2.0).cos());
        let s = C64::new(0.0, -(theta / 2.0).sin());
        self.apply_single(q, [[c, s], [s, c]]);
    }

    /// Ry(θ) on `q`.
    pub fn apply_ry(&mut self, q: usize, theta: f64) {
        let c = C64::real((theta / 2.0).cos());
        let s = (theta / 2.0).sin();
        self.apply_single(q, [[c, C64::real(-s)], [C64::real(s), c]]);
    }

    /// Rz(θ) on `q` (uses the symmetric `diag(e^{−iθ/2}, e^{iθ/2})`).
    pub fn apply_rz(&mut self, q: usize, theta: f64) {
        assert!(q < self.qubits, "qubit out of range");
        let neg = C64::from_polar_unit(-theta / 2.0);
        let pos = C64::from_polar_unit(theta / 2.0);
        let half = 1usize << q;
        blocked(&mut self.amps, self.qubits, half << 1, |chunk| {
            for block in chunk.chunks_exact_mut(half << 1) {
                let (lo, hi) = block.split_at_mut(half);
                for a in lo {
                    *a = *a * neg;
                }
                for a in hi {
                    *a = *a * pos;
                }
            }
        });
    }

    /// CNOT with control `c`, target `t`.
    ///
    /// # Panics
    ///
    /// Panics if operands coincide or are out of range.
    pub fn apply_cnot(&mut self, c: usize, t: usize) {
        assert!(c < self.qubits && t < self.qubits && c != t, "bad operands");
        let cm = 1usize << c;
        let tm = 1usize << t;
        let block = cm.max(tm) << 1;
        blocked(&mut self.amps, self.qubits, block, |chunk| {
            if t < c {
                // Outer blocks split on the control bit; the target swap
                // happens inside the control-set half only.
                for outer in chunk.chunks_exact_mut(cm << 1) {
                    let (_, on) = outer.split_at_mut(cm);
                    for sub in on.chunks_exact_mut(tm << 1) {
                        let (lo, hi) = sub.split_at_mut(tm);
                        lo.swap_with_slice(hi);
                    }
                }
            } else {
                // Outer blocks split on the target bit; within each half
                // only the control-set runs pair up and exchange.
                for outer in chunk.chunks_exact_mut(tm << 1) {
                    let (lo, hi) = outer.split_at_mut(tm);
                    for (l, h) in lo
                        .chunks_exact_mut(cm << 1)
                        .zip(hi.chunks_exact_mut(cm << 1))
                    {
                        let (_, l_on) = l.split_at_mut(cm);
                        let (_, h_on) = h.split_at_mut(cm);
                        l_on.swap_with_slice(h_on);
                    }
                }
            }
        });
    }

    /// CZ between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if operands coincide or are out of range.
    pub fn apply_cz(&mut self, a: usize, b: usize) {
        assert!(a < self.qubits && b < self.qubits && a != b, "bad operands");
        let lo_m = 1usize << a.min(b);
        let hi_m = 1usize << a.max(b);
        blocked(&mut self.amps, self.qubits, hi_m << 1, |chunk| {
            // Both bits set: the high-bit half of each outer block, then
            // the low-bit half of each sub-block within it.
            for outer in chunk.chunks_exact_mut(hi_m << 1) {
                let (_, on) = outer.split_at_mut(hi_m);
                for sub in on.chunks_exact_mut(lo_m << 1) {
                    let (_, run) = sub.split_at_mut(lo_m);
                    for amp in run {
                        *amp = -*amp;
                    }
                }
            }
        });
    }

    /// Controlled phase `diag(1,1,1,e^{iθ})` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if operands coincide or are out of range.
    pub fn apply_cphase(&mut self, a: usize, b: usize, theta: f64) {
        assert!(a < self.qubits && b < self.qubits && a != b, "bad operands");
        let lo_m = 1usize << a.min(b);
        let hi_m = 1usize << a.max(b);
        let ph = C64::from_polar_unit(theta);
        blocked(&mut self.amps, self.qubits, hi_m << 1, |chunk| {
            for outer in chunk.chunks_exact_mut(hi_m << 1) {
                let (_, on) = outer.split_at_mut(hi_m);
                for sub in on.chunks_exact_mut(lo_m << 1) {
                    let (_, run) = sub.split_at_mut(lo_m);
                    for amp in run {
                        *amp = *amp * ph;
                    }
                }
            }
        });
    }

    /// SWAP of `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if operands coincide or are out of range.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a < self.qubits && b < self.qubits && a != b, "bad operands");
        let lo_m = 1usize << a.min(b);
        let hi_m = 1usize << a.max(b);
        blocked(&mut self.amps, self.qubits, hi_m << 1, |chunk| {
            // Exchange |…0…1…⟩ ↔ |…1…0…⟩: the low-bit-set runs of the
            // high-clear half pair with the low-bit-clear runs of the
            // high-set half at the same sub-block offset.
            for outer in chunk.chunks_exact_mut(hi_m << 1) {
                let (lo_half, hi_half) = outer.split_at_mut(hi_m);
                for (l, h) in lo_half
                    .chunks_exact_mut(lo_m << 1)
                    .zip(hi_half.chunks_exact_mut(lo_m << 1))
                {
                    let (_, l_on) = l.split_at_mut(lo_m);
                    let (h_off, _) = h.split_at_mut(lo_m);
                    l_on.swap_with_slice(h_off);
                }
            }
        });
    }

    /// Toffoli with controls `a`, `b` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if operands repeat or are out of range.
    pub fn apply_toffoli(&mut self, a: usize, b: usize, t: usize) {
        assert!(
            a < self.qubits && b < self.qubits && t < self.qubits,
            "qubit out of range"
        );
        assert!(a != b && a != t && b != t, "operands must be distinct");
        let am = 1usize << a;
        let bm = 1usize << b;
        let tm = 1usize << t;
        for i in 0..self.amps.len() {
            if i & am != 0 && i & bm != 0 && i & tm == 0 {
                self.amps.swap(i, i | tm);
            }
        }
    }

    /// Projective measurement of qubit `q`: collapses the state and
    /// returns the observed bit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn measure_collapse<R: Rng>(&mut self, q: usize, rng: &mut R) -> bool {
        let p1 = self.probability_of_one(q);
        let outcome = rng.gen::<f64>() < p1;
        let mask = 1usize << q;
        let keep = if outcome { mask } else { 0 };
        let norm = if outcome {
            p1.sqrt()
        } else {
            (1.0 - p1).sqrt()
        };
        for (i, a) in self.amps.iter_mut().enumerate() {
            if i & mask == keep {
                *a = a.scale(1.0 / norm);
            } else {
                *a = C64::ZERO;
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_rng::ChaCha8Rng;
    use qcs_rng::SeedableRng;
    use std::f64::consts::PI;

    const EPS: f64 = 1e-12;

    #[test]
    fn zero_state() {
        let s = StateVector::zero(3);
        assert_eq!(s.qubit_count(), 3);
        assert_eq!(s.amplitude(0), C64::ONE);
        assert!((s.probabilities()[0] - 1.0).abs() < EPS);
    }

    #[test]
    fn x_flips_basis() {
        let mut s = StateVector::zero(2);
        s.apply_x(1);
        assert_eq!(s.amplitude(0b10), C64::ONE);
    }

    #[test]
    fn h_creates_superposition_and_is_involutive() {
        let mut s = StateVector::zero(1);
        s.apply_h(0);
        assert!((s.probability_of_one(0) - 0.5).abs() < EPS);
        s.apply_h(0);
        assert!(s.amplitude(0).approx_eq(C64::ONE, EPS));
    }

    #[test]
    fn bell_state() {
        let mut s = StateVector::zero(2);
        s.apply_h(0);
        s.apply_cnot(0, 1);
        let p = s.probabilities();
        assert!((p[0b00] - 0.5).abs() < EPS);
        assert!((p[0b11] - 0.5).abs() < EPS);
        assert!(p[0b01] < EPS && p[0b10] < EPS);
    }

    #[test]
    fn cz_symmetry() {
        let mut a = StateVector::random(3, &mut ChaCha8Rng::seed_from_u64(1));
        let mut b = a.clone();
        a.apply_cz(0, 2);
        b.apply_cz(2, 0);
        assert!(a.approx_eq_up_to_phase(&b, EPS));
        assert_eq!(a.amplitudes(), b.amplitudes());
    }

    #[test]
    fn cnot_equals_h_cz_h() {
        let mut a = StateVector::random(2, &mut ChaCha8Rng::seed_from_u64(2));
        let mut b = a.clone();
        a.apply_cnot(0, 1);
        b.apply_h(1);
        b.apply_cz(0, 1);
        b.apply_h(1);
        assert!(a.approx_eq_up_to_phase(&b, 1e-10));
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut s = StateVector::basis(2, 0b01);
        s.apply_swap(0, 1);
        assert_eq!(s.amplitude(0b10), C64::ONE);
        // SWAP == 3 CNOTs.
        let mut a = StateVector::random(2, &mut ChaCha8Rng::seed_from_u64(3));
        let mut b = a.clone();
        a.apply_swap(0, 1);
        b.apply_cnot(0, 1);
        b.apply_cnot(1, 0);
        b.apply_cnot(0, 1);
        assert!(a.approx_eq_up_to_phase(&b, 1e-10));
    }

    #[test]
    fn toffoli_truth_table() {
        for input in 0..8usize {
            let mut s = StateVector::basis(3, input);
            s.apply_toffoli(0, 1, 2);
            let expected = if input & 0b011 == 0b011 {
                input ^ 0b100
            } else {
                input
            };
            assert_eq!(s.amplitude(expected), C64::ONE, "input {input:03b}");
        }
    }

    #[test]
    fn rz_phases() {
        let mut s = StateVector::basis(1, 1);
        s.apply_rz(0, PI);
        // e^{iπ/2} = i on |1⟩.
        assert!(s.amplitude(1).approx_eq(C64::I, EPS));
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        let mut a = StateVector::random(1, &mut ChaCha8Rng::seed_from_u64(4));
        let mut b = a.clone();
        a.apply_rx(0, PI);
        b.apply_x(0);
        assert!(a.approx_eq_up_to_phase(&b, 1e-10));
    }

    #[test]
    fn ry_pi_is_y_up_to_phase() {
        let mut a = StateVector::random(1, &mut ChaCha8Rng::seed_from_u64(5));
        let mut b = a.clone();
        a.apply_ry(0, PI);
        b.apply_y(0);
        assert!(a.approx_eq_up_to_phase(&b, 1e-10));
    }

    #[test]
    fn cphase_pi_is_cz() {
        let mut a = StateVector::random(2, &mut ChaCha8Rng::seed_from_u64(6));
        let mut b = a.clone();
        a.apply_cphase(0, 1, PI);
        b.apply_cz(0, 1);
        assert!(a.approx_eq_up_to_phase(&b, 1e-10));
    }

    #[test]
    fn parallel_kernels_bitwise_match_serial() {
        // A 16-qubit state crosses PAR_THRESHOLD; every kernel must give
        // bit-for-bit the same amplitudes at 1 and 4 threads.
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let base = StateVector::random(PAR_THRESHOLD, &mut rng);
        let run = |s: &mut StateVector| {
            s.apply_h(0);
            s.apply_h(15);
            s.apply_x(7);
            s.apply_rz(3, 0.37);
            s.apply_phase(11, C64::from_polar_unit(1.1));
            s.apply_rx(5, 0.9);
            s.apply_cnot(2, 14);
            s.apply_cnot(13, 1);
            s.apply_cz(4, 12);
            s.apply_cphase(9, 6, 2.3);
            s.apply_swap(0, 15);
            s.apply_toffoli(1, 8, 10);
        };
        set_sim_threads(1);
        let mut serial = base.clone();
        run(&mut serial);
        set_sim_threads(4);
        let mut parallel = base.clone();
        run(&mut parallel);
        set_sim_threads(1);
        assert_eq!(serial.amplitudes(), parallel.amplitudes());
    }

    #[test]
    fn probabilities_into_reuses_buffer() {
        let s = StateVector::random(4, &mut ChaCha8Rng::seed_from_u64(10));
        let mut buf = vec![0.0; 3]; // wrong size on purpose
        s.probabilities_into(&mut buf);
        assert_eq!(buf, s.probabilities());
    }

    #[test]
    fn reset_zero_restores_ground_state() {
        let mut s = StateVector::random(3, &mut ChaCha8Rng::seed_from_u64(11));
        s.reset_zero();
        assert_eq!(s.amplitude(0), C64::ONE);
        assert!((s.probabilities()[0] - 1.0).abs() < EPS);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let s = StateVector::random(4, &mut ChaCha8Rng::seed_from_u64(7));
        let total: f64 = s.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut s = StateVector::zero(1);
        s.apply_x(0);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..20 {
            assert_eq!(s.sample(&mut rng), 1);
        }
    }

    #[test]
    fn measurement_collapse() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut s = StateVector::zero(2);
        s.apply_h(0);
        s.apply_cnot(0, 1);
        let bit = s.measure_collapse(0, &mut rng);
        // Entanglement: qubit 1 must agree with qubit 0.
        let p1 = s.probability_of_one(1);
        if bit {
            assert!((p1 - 1.0).abs() < EPS);
        } else {
            assert!(p1 < EPS);
        }
    }

    #[test]
    fn inner_product_and_fidelity() {
        let s = StateVector::zero(2);
        let mut t = StateVector::zero(2);
        assert!((s.fidelity(&t) - 1.0).abs() < EPS);
        t.apply_x(0);
        assert!(s.fidelity(&t) < EPS);
    }

    #[test]
    fn from_amplitudes_normalizes() {
        let s = StateVector::from_amplitudes(vec![C64::real(3.0), C64::real(4.0)]);
        assert!((s.probabilities()[0] - 0.36).abs() < EPS);
        assert!((s.probabilities()[1] - 0.64).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_amplitude_length_panics() {
        let _ = StateVector::from_amplitudes(vec![C64::ONE; 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_qubit_panics() {
        let mut s = StateVector::zero(1);
        s.apply_x(1);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn toffoli_duplicate_operand_panics() {
        let mut s = StateVector::zero(3);
        s.apply_toffoli(0, 0, 1);
    }
}
