//! The [`StateVector`] and its gate kernels.
//!
//! Convention: qubit `q` is bit `q` of the basis index (little-endian), so
//! basis state `|q_{n-1} … q_1 q_0⟩` has index `Σ q_k 2^k`.

use qcs_rng::Rng;

use crate::complex::C64;

/// Exact quantum state of `n` qubits (`2^n` complex amplitudes).
///
/// # Examples
///
/// ```
/// use qcs_sim::StateVector;
///
/// let mut s = StateVector::zero(2);
/// s.apply_h(0);
/// s.apply_cnot(0, 1);
/// let p = s.probabilities();
/// assert!((p[3] - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    qubits: usize,
    amps: Vec<C64>,
}

/// Practical qubit limit (2^24 amplitudes ≈ 256 MiB); constructors panic
/// beyond it to fail fast instead of aborting on allocation.
pub const MAX_QUBITS: usize = 24;

impl StateVector {
    /// The all-zeros state `|0…0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `qubits > MAX_QUBITS`.
    pub fn zero(qubits: usize) -> Self {
        assert!(
            qubits <= MAX_QUBITS,
            "state of {qubits} qubits exceeds the {MAX_QUBITS}-qubit simulator limit"
        );
        let mut amps = vec![C64::ZERO; 1 << qubits];
        amps[0] = C64::ONE;
        StateVector { qubits, amps }
    }

    /// A computational basis state `|index⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^qubits` or `qubits > MAX_QUBITS`.
    pub fn basis(qubits: usize, index: usize) -> Self {
        let mut s = StateVector::zero(qubits);
        assert!(index < s.amps.len(), "basis index out of range");
        s.amps[0] = C64::ZERO;
        s.amps[index] = C64::ONE;
        s
    }

    /// Builds a state from raw amplitudes, normalizing them.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two, the norm is zero, or
    /// the implied qubit count exceeds [`MAX_QUBITS`].
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        let len = amps.len();
        assert!(
            len.is_power_of_two() && len > 0,
            "length must be a power of two"
        );
        let qubits = len.trailing_zeros() as usize;
        assert!(qubits <= MAX_QUBITS, "too many qubits");
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt();
        assert!(norm > 0.0, "cannot normalize the zero vector");
        let amps = amps.into_iter().map(|a| a.scale(1.0 / norm)).collect();
        StateVector { qubits, amps }
    }

    /// A Haar-ish random state (i.i.d. Gaussian-free: uniform box sampled
    /// then normalized — adequate for equivalence spot-checks).
    pub fn random<R: Rng>(qubits: usize, rng: &mut R) -> Self {
        let amps: Vec<C64> = (0..1usize << qubits)
            .map(|_| C64::new(rng.gen::<f64>() * 2.0 - 1.0, rng.gen::<f64>() * 2.0 - 1.0))
            .collect();
        StateVector::from_amplitudes(amps)
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.qubits
    }

    /// The amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn amplitude(&self, index: usize) -> C64 {
        self.amps[index]
    }

    /// All amplitudes, basis-index order.
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Measurement probabilities for every basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Probability that qubit `q` measures 1.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn probability_of_one(&self, q: usize) -> f64 {
        assert!(q < self.qubits, "qubit out of range");
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Samples a basis state from the measurement distribution.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let mut target = rng.gen::<f64>();
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if target <= p {
                return i;
            }
            target -= p;
        }
        self.amps.len() - 1
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn inner_product(&self, other: &StateVector) -> C64 {
        assert_eq!(self.qubits, other.qubits, "width mismatch");
        let mut acc = C64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// State fidelity `|⟨self|other⟩|²`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner_product(other).norm_sqr()
    }

    /// Whether the states are equal up to a global phase within `eps`.
    pub fn approx_eq_up_to_phase(&self, other: &StateVector, eps: f64) -> bool {
        if self.qubits != other.qubits {
            return false;
        }
        (1.0 - self.fidelity(other)).abs() <= eps
    }

    // --- gate kernels ----------------------------------------------------

    /// Applies an arbitrary 2×2 matrix `[[m00, m01], [m10, m11]]` to `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_single(&mut self, q: usize, m: [[C64; 2]; 2]) {
        assert!(q < self.qubits, "qubit out of range");
        let mask = 1usize << q;
        for i in 0..self.amps.len() {
            if i & mask == 0 {
                let j = i | mask;
                let a0 = self.amps[i];
                let a1 = self.amps[j];
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[j] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    /// Pauli-X on `q`.
    pub fn apply_x(&mut self, q: usize) {
        assert!(q < self.qubits, "qubit out of range");
        let mask = 1usize << q;
        for i in 0..self.amps.len() {
            if i & mask == 0 {
                self.amps.swap(i, i | mask);
            }
        }
    }

    /// Pauli-Y on `q`.
    pub fn apply_y(&mut self, q: usize) {
        self.apply_single(q, [[C64::ZERO, -C64::I], [C64::I, C64::ZERO]]);
    }

    /// Pauli-Z on `q`.
    pub fn apply_z(&mut self, q: usize) {
        self.apply_phase(q, C64::real(-1.0));
    }

    /// Hadamard on `q`.
    pub fn apply_h(&mut self, q: usize) {
        let h = C64::real(std::f64::consts::FRAC_1_SQRT_2);
        self.apply_single(q, [[h, h], [h, -h]]);
    }

    /// Applies `diag(1, phase)` to `q` (S, T, Rz-like gates).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn apply_phase(&mut self, q: usize, phase: C64) {
        assert!(q < self.qubits, "qubit out of range");
        let mask = 1usize << q;
        for (i, a) in self.amps.iter_mut().enumerate() {
            if i & mask != 0 {
                *a = *a * phase;
            }
        }
    }

    /// Rx(θ) on `q`.
    pub fn apply_rx(&mut self, q: usize, theta: f64) {
        let c = C64::real((theta / 2.0).cos());
        let s = C64::new(0.0, -(theta / 2.0).sin());
        self.apply_single(q, [[c, s], [s, c]]);
    }

    /// Ry(θ) on `q`.
    pub fn apply_ry(&mut self, q: usize, theta: f64) {
        let c = C64::real((theta / 2.0).cos());
        let s = (theta / 2.0).sin();
        self.apply_single(q, [[c, C64::real(-s)], [C64::real(s), c]]);
    }

    /// Rz(θ) on `q` (uses the symmetric `diag(e^{−iθ/2}, e^{iθ/2})`).
    pub fn apply_rz(&mut self, q: usize, theta: f64) {
        assert!(q < self.qubits, "qubit out of range");
        let neg = C64::from_polar_unit(-theta / 2.0);
        let pos = C64::from_polar_unit(theta / 2.0);
        let mask = 1usize << q;
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a = *a * if i & mask == 0 { neg } else { pos };
        }
    }

    /// CNOT with control `c`, target `t`.
    ///
    /// # Panics
    ///
    /// Panics if operands coincide or are out of range.
    pub fn apply_cnot(&mut self, c: usize, t: usize) {
        assert!(c < self.qubits && t < self.qubits && c != t, "bad operands");
        let cm = 1usize << c;
        let tm = 1usize << t;
        for i in 0..self.amps.len() {
            if i & cm != 0 && i & tm == 0 {
                self.amps.swap(i, i | tm);
            }
        }
    }

    /// CZ between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if operands coincide or are out of range.
    pub fn apply_cz(&mut self, a: usize, b: usize) {
        assert!(a < self.qubits && b < self.qubits && a != b, "bad operands");
        let am = 1usize << a;
        let bm = 1usize << b;
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & am != 0 && i & bm != 0 {
                *amp = -*amp;
            }
        }
    }

    /// Controlled phase `diag(1,1,1,e^{iθ})` between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if operands coincide or are out of range.
    pub fn apply_cphase(&mut self, a: usize, b: usize, theta: f64) {
        assert!(a < self.qubits && b < self.qubits && a != b, "bad operands");
        let am = 1usize << a;
        let bm = 1usize << b;
        let ph = C64::from_polar_unit(theta);
        for (i, amp) in self.amps.iter_mut().enumerate() {
            if i & am != 0 && i & bm != 0 {
                *amp = *amp * ph;
            }
        }
    }

    /// SWAP of `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if operands coincide or are out of range.
    pub fn apply_swap(&mut self, a: usize, b: usize) {
        assert!(a < self.qubits && b < self.qubits && a != b, "bad operands");
        let am = 1usize << a;
        let bm = 1usize << b;
        for i in 0..self.amps.len() {
            if i & am != 0 && i & bm == 0 {
                self.amps.swap(i, (i & !am) | bm);
            }
        }
    }

    /// Toffoli with controls `a`, `b` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if operands repeat or are out of range.
    pub fn apply_toffoli(&mut self, a: usize, b: usize, t: usize) {
        assert!(
            a < self.qubits && b < self.qubits && t < self.qubits,
            "qubit out of range"
        );
        assert!(a != b && a != t && b != t, "operands must be distinct");
        let am = 1usize << a;
        let bm = 1usize << b;
        let tm = 1usize << t;
        for i in 0..self.amps.len() {
            if i & am != 0 && i & bm != 0 && i & tm == 0 {
                self.amps.swap(i, i | tm);
            }
        }
    }

    /// Projective measurement of qubit `q`: collapses the state and
    /// returns the observed bit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn measure_collapse<R: Rng>(&mut self, q: usize, rng: &mut R) -> bool {
        let p1 = self.probability_of_one(q);
        let outcome = rng.gen::<f64>() < p1;
        let mask = 1usize << q;
        let keep = if outcome { mask } else { 0 };
        let norm = if outcome {
            p1.sqrt()
        } else {
            (1.0 - p1).sqrt()
        };
        for (i, a) in self.amps.iter_mut().enumerate() {
            if i & mask == keep {
                *a = a.scale(1.0 / norm);
            } else {
                *a = C64::ZERO;
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_rng::ChaCha8Rng;
    use qcs_rng::SeedableRng;
    use std::f64::consts::PI;

    const EPS: f64 = 1e-12;

    #[test]
    fn zero_state() {
        let s = StateVector::zero(3);
        assert_eq!(s.qubit_count(), 3);
        assert_eq!(s.amplitude(0), C64::ONE);
        assert!((s.probabilities()[0] - 1.0).abs() < EPS);
    }

    #[test]
    fn x_flips_basis() {
        let mut s = StateVector::zero(2);
        s.apply_x(1);
        assert_eq!(s.amplitude(0b10), C64::ONE);
    }

    #[test]
    fn h_creates_superposition_and_is_involutive() {
        let mut s = StateVector::zero(1);
        s.apply_h(0);
        assert!((s.probability_of_one(0) - 0.5).abs() < EPS);
        s.apply_h(0);
        assert!(s.amplitude(0).approx_eq(C64::ONE, EPS));
    }

    #[test]
    fn bell_state() {
        let mut s = StateVector::zero(2);
        s.apply_h(0);
        s.apply_cnot(0, 1);
        let p = s.probabilities();
        assert!((p[0b00] - 0.5).abs() < EPS);
        assert!((p[0b11] - 0.5).abs() < EPS);
        assert!(p[0b01] < EPS && p[0b10] < EPS);
    }

    #[test]
    fn cz_symmetry() {
        let mut a = StateVector::random(3, &mut ChaCha8Rng::seed_from_u64(1));
        let mut b = a.clone();
        a.apply_cz(0, 2);
        b.apply_cz(2, 0);
        assert!(a.approx_eq_up_to_phase(&b, EPS));
        assert_eq!(a.amplitudes(), b.amplitudes());
    }

    #[test]
    fn cnot_equals_h_cz_h() {
        let mut a = StateVector::random(2, &mut ChaCha8Rng::seed_from_u64(2));
        let mut b = a.clone();
        a.apply_cnot(0, 1);
        b.apply_h(1);
        b.apply_cz(0, 1);
        b.apply_h(1);
        assert!(a.approx_eq_up_to_phase(&b, 1e-10));
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut s = StateVector::basis(2, 0b01);
        s.apply_swap(0, 1);
        assert_eq!(s.amplitude(0b10), C64::ONE);
        // SWAP == 3 CNOTs.
        let mut a = StateVector::random(2, &mut ChaCha8Rng::seed_from_u64(3));
        let mut b = a.clone();
        a.apply_swap(0, 1);
        b.apply_cnot(0, 1);
        b.apply_cnot(1, 0);
        b.apply_cnot(0, 1);
        assert!(a.approx_eq_up_to_phase(&b, 1e-10));
    }

    #[test]
    fn toffoli_truth_table() {
        for input in 0..8usize {
            let mut s = StateVector::basis(3, input);
            s.apply_toffoli(0, 1, 2);
            let expected = if input & 0b011 == 0b011 {
                input ^ 0b100
            } else {
                input
            };
            assert_eq!(s.amplitude(expected), C64::ONE, "input {input:03b}");
        }
    }

    #[test]
    fn rz_phases() {
        let mut s = StateVector::basis(1, 1);
        s.apply_rz(0, PI);
        // e^{iπ/2} = i on |1⟩.
        assert!(s.amplitude(1).approx_eq(C64::I, EPS));
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        let mut a = StateVector::random(1, &mut ChaCha8Rng::seed_from_u64(4));
        let mut b = a.clone();
        a.apply_rx(0, PI);
        b.apply_x(0);
        assert!(a.approx_eq_up_to_phase(&b, 1e-10));
    }

    #[test]
    fn ry_pi_is_y_up_to_phase() {
        let mut a = StateVector::random(1, &mut ChaCha8Rng::seed_from_u64(5));
        let mut b = a.clone();
        a.apply_ry(0, PI);
        b.apply_y(0);
        assert!(a.approx_eq_up_to_phase(&b, 1e-10));
    }

    #[test]
    fn cphase_pi_is_cz() {
        let mut a = StateVector::random(2, &mut ChaCha8Rng::seed_from_u64(6));
        let mut b = a.clone();
        a.apply_cphase(0, 1, PI);
        b.apply_cz(0, 1);
        assert!(a.approx_eq_up_to_phase(&b, 1e-10));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let s = StateVector::random(4, &mut ChaCha8Rng::seed_from_u64(7));
        let total: f64 = s.probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sampling_respects_distribution() {
        let mut s = StateVector::zero(1);
        s.apply_x(0);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..20 {
            assert_eq!(s.sample(&mut rng), 1);
        }
    }

    #[test]
    fn measurement_collapse() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut s = StateVector::zero(2);
        s.apply_h(0);
        s.apply_cnot(0, 1);
        let bit = s.measure_collapse(0, &mut rng);
        // Entanglement: qubit 1 must agree with qubit 0.
        let p1 = s.probability_of_one(1);
        if bit {
            assert!((p1 - 1.0).abs() < EPS);
        } else {
            assert!(p1 < EPS);
        }
    }

    #[test]
    fn inner_product_and_fidelity() {
        let s = StateVector::zero(2);
        let mut t = StateVector::zero(2);
        assert!((s.fidelity(&t) - 1.0).abs() < EPS);
        t.apply_x(0);
        assert!(s.fidelity(&t) < EPS);
    }

    #[test]
    fn from_amplitudes_normalizes() {
        let s = StateVector::from_amplitudes(vec![C64::real(3.0), C64::real(4.0)]);
        assert!((s.probabilities()[0] - 0.36).abs() < EPS);
        assert!((s.probabilities()[1] - 0.64).abs() < EPS);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_amplitude_length_panics() {
        let _ = StateVector::from_amplitudes(vec![C64::ONE; 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_qubit_panics() {
        let mut s = StateVector::zero(1);
        s.apply_x(1);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn toffoli_duplicate_operand_panics() {
        let mut s = StateVector::zero(3);
        s.apply_toffoli(0, 0, 1);
    }
}
