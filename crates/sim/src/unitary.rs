//! Exact unitary-matrix extraction and comparison.
//!
//! For small circuits (≤ ~10 qubits) the full `2^n × 2^n` unitary can be
//! built column by column, turning the randomized equivalence spot-check
//! of [`crate::equiv`] into an *exact* proof — the gold standard for
//! validating decomposition identities and optimizer rewrites.

use qcs_circuit::circuit::Circuit;

use crate::complex::C64;
use crate::exec::run_unitary;
use crate::state::StateVector;

/// Hard cap on exact-unitary extraction (4^12 complex numbers ≈ 256 MiB).
pub const MAX_UNITARY_QUBITS: usize = 12;

/// A dense unitary matrix in column-major basis order
/// (`columns[j][i] = ⟨i|U|j⟩`).
#[derive(Debug, Clone, PartialEq)]
pub struct Unitary {
    qubits: usize,
    columns: Vec<Vec<C64>>,
}

impl Unitary {
    /// Builds the unitary implemented by the unitary gates of `circuit`
    /// (measurements/barriers are skipped as in
    /// [`run_unitary`]).
    ///
    /// # Panics
    ///
    /// Panics if the circuit exceeds [`MAX_UNITARY_QUBITS`].
    pub fn of_circuit(circuit: &Circuit) -> Self {
        let n = circuit.qubit_count();
        assert!(
            n <= MAX_UNITARY_QUBITS,
            "{n} qubits exceed the {MAX_UNITARY_QUBITS}-qubit unitary limit"
        );
        let dim = 1usize << n;
        let columns = (0..dim)
            .map(|j| {
                run_unitary(circuit, StateVector::basis(n, j))
                    .amplitudes()
                    .to_vec()
            })
            .collect();
        Unitary { qubits: n, columns }
    }

    /// Number of qubits.
    pub fn qubit_count(&self) -> usize {
        self.qubits
    }

    /// Matrix dimension `2^n`.
    pub fn dim(&self) -> usize {
        1 << self.qubits
    }

    /// The entry `⟨i|U|j⟩`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn entry(&self, i: usize, j: usize) -> C64 {
        self.columns[j][i]
    }

    /// Whether `self = e^{iθ} · other` for some global phase, within
    /// `eps` per entry.
    pub fn approx_eq_up_to_phase(&self, other: &Unitary, eps: f64) -> bool {
        if self.qubits != other.qubits {
            return false;
        }
        // Find a reference entry with significant magnitude to extract
        // the relative phase.
        let dim = self.dim();
        let mut phase: Option<C64> = None;
        for j in 0..dim {
            for i in 0..dim {
                let a = self.entry(i, j);
                let b = other.entry(i, j);
                if a.norm() > 0.5 / dim as f64 && b.norm() > 0.5 / dim as f64 {
                    // phase = a / b  (unit modulus up to numerics).
                    let denom = b.norm_sqr();
                    phase = Some(C64::new(
                        (a * b.conj()).re / denom,
                        (a * b.conj()).im / denom,
                    ));
                    break;
                }
            }
            if phase.is_some() {
                break;
            }
        }
        let Some(phase) = phase else {
            // Both matrices ~zero everywhere significant — cannot happen
            // for unitaries; treat as unequal.
            return false;
        };
        for j in 0..dim {
            for i in 0..dim {
                let want = other.entry(i, j) * phase;
                if !self.entry(i, j).approx_eq(want, eps) {
                    return false;
                }
            }
        }
        true
    }

    /// Verifies unitarity: `U†U = I` within `eps`.
    pub fn is_unitary(&self, eps: f64) -> bool {
        let dim = self.dim();
        for a in 0..dim {
            for b in a..dim {
                let mut dot = C64::ZERO;
                for i in 0..dim {
                    dot += self.columns[a][i].conj() * self.columns[b][i];
                }
                let want = if a == b { C64::ONE } else { C64::ZERO };
                if !dot.approx_eq(want, eps) {
                    return false;
                }
            }
        }
        true
    }
}

/// Exact equality (up to global phase) of two same-width circuits.
///
/// # Panics
///
/// Panics if widths differ or exceed [`MAX_UNITARY_QUBITS`].
pub fn circuits_equal_exact(a: &Circuit, b: &Circuit, eps: f64) -> bool {
    assert_eq!(a.qubit_count(), b.qubit_count(), "width mismatch");
    Unitary::of_circuit(a).approx_eq_up_to_phase(&Unitary::of_circuit(b), eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::decompose::{decompose_circuit, GateSet};

    #[test]
    fn hadamard_matrix() {
        let mut c = Circuit::new(1);
        c.h(0).unwrap();
        let u = Unitary::of_circuit(&c);
        let h = std::f64::consts::FRAC_1_SQRT_2;
        assert!(u.entry(0, 0).approx_eq(C64::real(h), 1e-12));
        assert!(u.entry(1, 1).approx_eq(C64::real(-h), 1e-12));
        assert!(u.is_unitary(1e-12));
    }

    #[test]
    fn cnot_matrix() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).unwrap();
        let u = Unitary::of_circuit(&c);
        // |01⟩ (control=1) ↔ |11⟩.
        assert!(u.entry(0b11, 0b01).approx_eq(C64::ONE, 1e-12));
        assert!(u.entry(0b01, 0b11).approx_eq(C64::ONE, 1e-12));
        assert!(u.entry(0b00, 0b00).approx_eq(C64::ONE, 1e-12));
        assert!(u.entry(0b10, 0b10).approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn global_phase_ignored() {
        // X vs Rx(π) = −iX: equal only up to phase.
        let mut a = Circuit::new(1);
        a.x(0).unwrap();
        let mut b = Circuit::new(1);
        b.rx(0, std::f64::consts::PI).unwrap();
        assert!(circuits_equal_exact(&a, &b, 1e-10));
        let ua = Unitary::of_circuit(&a);
        let ub = Unitary::of_circuit(&b);
        assert_ne!(ua, ub); // raw matrices differ
        assert!(ua.approx_eq_up_to_phase(&ub, 1e-10));
    }

    #[test]
    fn detects_inequality() {
        let mut a = Circuit::new(1);
        a.x(0).unwrap();
        let mut b = Circuit::new(1);
        b.z(0).unwrap();
        assert!(!circuits_equal_exact(&a, &b, 1e-10));
    }

    #[test]
    fn all_decomposition_identities_exact() {
        // The decomposer's every rewrite, proven exactly.
        let mut cases: Vec<Circuit> = Vec::new();
        let mut c = Circuit::new(2);
        c.cnot(0, 1).unwrap();
        cases.push(c);
        let mut c = Circuit::new(2);
        c.cz(0, 1).unwrap();
        cases.push(c);
        let mut c = Circuit::new(2);
        c.swap(0, 1).unwrap();
        cases.push(c);
        let mut c = Circuit::new(2);
        c.cphase(0, 1, 0.7321).unwrap();
        cases.push(c);
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2).unwrap();
        cases.push(c);
        for g in [
            qcs_circuit::gate::Gate::X(0),
            qcs_circuit::gate::Gate::Y(0),
            qcs_circuit::gate::Gate::Z(0),
            qcs_circuit::gate::Gate::H(0),
            qcs_circuit::gate::Gate::S(0),
            qcs_circuit::gate::Gate::Sdg(0),
            qcs_circuit::gate::Gate::T(0),
            qcs_circuit::gate::Gate::Tdg(0),
        ] {
            let mut c = Circuit::new(1);
            c.push(g).unwrap();
            cases.push(c);
        }
        for set in [
            GateSet::surface_code_native(),
            GateSet::ibm_style(),
            GateSet::rotations_plus_cz(),
        ] {
            for case in &cases {
                let d = decompose_circuit(case, &set).unwrap();
                assert!(
                    circuits_equal_exact(case, &d, 1e-9),
                    "decomposition of {:?} into {set:?} is not exact",
                    case.gates()
                );
            }
        }
    }

    #[test]
    fn unitarity_of_random_circuit() {
        let mut c = Circuit::new(3);
        c.h(0)
            .unwrap()
            .cnot(0, 1)
            .unwrap()
            .t(2)
            .unwrap()
            .cz(1, 2)
            .unwrap();
        c.ry(0, 0.3).unwrap().toffoli(0, 1, 2).unwrap();
        assert!(Unitary::of_circuit(&c).is_unitary(1e-10));
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn too_wide_panics() {
        let _ = Unitary::of_circuit(&Circuit::new(MAX_UNITARY_QUBITS + 1));
    }
}
