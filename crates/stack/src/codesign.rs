//! Co-design information flow (the grey arrows of Fig. 1).
//!
//! "Co-design refers to the flow of information between different
//! hardware and software stack layers, in order to improve the overall
//! application execution and hardware design" (Tomesh & Martonosi,
//! quoted in Section II). Concretely:
//!
//! * [`HardwareInfo`] — the low-level parameters exposed *upward*:
//!   connectivity shape, calibration spread, native gate family;
//! * [`AlgorithmInfo`] — the application profile handed *downward*: the
//!   interaction-graph metric vector of Section IV;
//! * [`select_mapper`] — the co-design decision point: picks placement
//!   and routing strategies from both, making the compiler
//!   hardware-aware *and* algorithm-driven.

use qcs_circuit::circuit::Circuit;
use qcs_core::mapper::Mapper;
use qcs_core::profile::CircuitProfile;
use qcs_topology::device::Device;

/// Hardware parameters flowing up the stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareInfo {
    /// Number of physical qubits.
    pub qubits: usize,
    /// Average hop distance between qubit pairs (compactness).
    pub average_distance: f64,
    /// Coupling-graph diameter.
    pub diameter: usize,
    /// Best − worst two-qubit fidelity: calibration *spread*, the signal
    /// that noise-aware routing pays off.
    pub two_qubit_fidelity_spread: f64,
}

impl HardwareInfo {
    /// Extracts the co-design parameters from a device.
    pub fn of(device: &Device) -> Self {
        let cal = device.calibration();
        HardwareInfo {
            qubits: device.qubit_count(),
            average_distance: device.average_distance(),
            diameter: device.diameter(),
            two_qubit_fidelity_spread: cal.best_two_qubit_fidelity()
                - cal.worst_two_qubit_fidelity(),
        }
    }
}

/// Application parameters flowing down the stack.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmInfo {
    /// The circuit's profile (size parameters + Table I metrics).
    pub profile: CircuitProfile,
}

impl AlgorithmInfo {
    /// Profiles a circuit.
    pub fn of(circuit: &Circuit) -> Self {
        AlgorithmInfo {
            profile: CircuitProfile::of(circuit),
        }
    }

    /// Whether the interaction graph is sparse enough that a
    /// graph-similarity embedding can satisfy most pairs upfront
    /// (heuristic: density below the threshold and bounded max degree).
    pub fn is_sparse(&self) -> bool {
        self.profile.metrics.density < 0.5 && self.profile.metrics.max_degree <= 6.0
    }
}

/// The strategy actually chosen, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapperChoice {
    /// Algorithm-driven placement + look-ahead routing (sparse graphs).
    AlgorithmDriven,
    /// Trivial placement + look-ahead routing (dense graphs where no
    /// embedding helps and placement time is wasted).
    Lookahead,
    /// Graph-similarity placement + noise-aware routing (devices with
    /// significant calibration spread).
    NoiseAware,
}

/// The co-design decision: selects mapping strategies from the algorithm
/// profile and hardware parameters.
///
/// * large calibration spread → noise-aware routing (hardware-aware);
/// * sparse interaction graph → graph-similarity placement
///   (algorithm-driven);
/// * otherwise → trivial placement with look-ahead routing.
pub fn select_mapper(algorithm: &AlgorithmInfo, hardware: &HardwareInfo) -> (Mapper, MapperChoice) {
    if hardware.two_qubit_fidelity_spread > 0.02 {
        (Mapper::noise_aware(), MapperChoice::NoiseAware)
    } else if algorithm.is_sparse() {
        (Mapper::algorithm_driven(), MapperChoice::AlgorithmDriven)
    } else {
        (Mapper::lookahead(), MapperChoice::Lookahead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_topology::lattice::grid_device;
    use qcs_topology::surface::surface17;

    #[test]
    fn hardware_info_extraction() {
        let dev = surface17();
        let hw = HardwareInfo::of(&dev);
        assert_eq!(hw.qubits, 17);
        assert!(hw.average_distance > 1.0);
        assert!(hw.diameter >= 4);
        assert_eq!(hw.two_qubit_fidelity_spread, 0.0); // uniform calibration
    }

    #[test]
    fn spread_detected_after_degradation() {
        let mut dev = grid_device(2, 2);
        dev.calibration_mut().set_two_qubit_fidelity(0, 1, 0.9);
        let hw = HardwareInfo::of(&dev);
        assert!((hw.two_qubit_fidelity_spread - 0.09).abs() < 1e-12);
    }

    #[test]
    fn sparse_vs_dense_classification() {
        let qaoa = qcs_workloads::qaoa::qaoa_maxcut_ring(8, 2, 1).unwrap();
        assert!(AlgorithmInfo::of(&qaoa).is_sparse());
        let qft = qcs_workloads::qft::qft(8).unwrap();
        assert!(!AlgorithmInfo::of(&qft).is_sparse());
    }

    #[test]
    fn codesign_selects_by_profile() {
        let dev = surface17();
        let hw = HardwareInfo::of(&dev);
        let sparse = AlgorithmInfo::of(&qcs_workloads::ghz::ghz_chain(8).unwrap());
        let (m, choice) = select_mapper(&sparse, &hw);
        assert_eq!(choice, MapperChoice::AlgorithmDriven);
        assert_eq!(m.placer_name(), "graph-similarity");
        let dense = AlgorithmInfo::of(&qcs_workloads::qft::qft(8).unwrap());
        let (m, choice) = select_mapper(&dense, &hw);
        assert_eq!(choice, MapperChoice::Lookahead);
        assert_eq!(m.placer_name(), "trivial");
    }

    #[test]
    fn codesign_prefers_noise_awareness_on_spread() {
        let mut dev = grid_device(3, 3);
        dev.calibration_mut().set_two_qubit_fidelity(0, 1, 0.9);
        // Re-derive: 0.99 − 0.9 = 0.09 > 0.02 threshold.
        let hw = HardwareInfo::of(&dev);
        let algo = AlgorithmInfo::of(&qcs_workloads::ghz::ghz_chain(4).unwrap());
        let (m, choice) = select_mapper(&algo, &hw);
        assert_eq!(choice, MapperChoice::NoiseAware);
        assert_eq!(m.router_name(), "noise-aware");
    }
}
