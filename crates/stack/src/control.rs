//! The control-electronics layer.
//!
//! Bottom of the classical stack (ref \[18\]): ISA instructions are
//! dispatched onto analog channels. Each qubit has a drive channel for
//! single-qubit gates; each coupler has a flux channel for two-qubit
//! gates; a shared readout channel serves measurement (frequency
//! multiplexed, so simultaneous readouts are allowed). Dispatch verifies
//! the exclusivity invariant: a channel drives at most one operation per
//! cycle.

use std::collections::BTreeMap;

use crate::isa::{Instruction, IsaProgram};

/// Identifier of an analog control channel.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Channel {
    /// Microwave drive line of one qubit.
    Drive(usize),
    /// Flux line of one coupler (canonical low-high order).
    Flux(usize, usize),
    /// The shared (multiplexed) readout line.
    Readout,
}

impl std::fmt::Display for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Channel::Drive(q) => write!(f, "drive[{q}]"),
            Channel::Flux(a, b) => write!(f, "flux[{a},{b}]"),
            Channel::Readout => write!(f, "readout"),
        }
    }
}

/// One analog event on a channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlEvent {
    /// Cycle at which the event fires.
    pub cycle: u64,
    /// Operation mnemonic.
    pub op: String,
}

/// Error raised when the instruction stream violates channel exclusivity.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelConflict {
    /// The over-driven channel.
    pub channel: Channel,
    /// Cycle of the collision.
    pub cycle: u64,
}

impl std::fmt::Display for ChannelConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "channel {} driven twice in cycle {}",
            self.channel, self.cycle
        )
    }
}

impl std::error::Error for ChannelConflict {}

/// The dispatched control trace: per-channel event streams.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ControlTrace {
    channels: BTreeMap<Channel, Vec<ControlEvent>>,
}

impl ControlTrace {
    /// Dispatches an ISA program onto control channels.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelConflict`] if two operations claim the same drive
    /// or flux channel in the same cycle (multiplexed readout never
    /// conflicts).
    pub fn dispatch(program: &IsaProgram) -> Result<Self, ChannelConflict> {
        let mut trace = ControlTrace::default();
        let mut cycle = 0u64;
        for inst in &program.instructions {
            match inst {
                Instruction::Qwait(n) => cycle += n,
                Instruction::Op { name, qubits, .. } => {
                    let channel = match (name.as_str(), qubits.as_slice()) {
                        ("measure", _) => Channel::Readout,
                        (_, &[q]) => Channel::Drive(q),
                        (_, &[a, b]) => Channel::Flux(a.min(b), a.max(b)),
                        (_, qs) => Channel::Flux(
                            qs.iter().copied().min().unwrap_or(0),
                            qs.iter().copied().max().unwrap_or(0),
                        ),
                    };
                    let events = trace.channels.entry(channel.clone()).or_default();
                    let exclusive = channel != Channel::Readout;
                    if exclusive && events.iter().any(|e| e.cycle == cycle) {
                        return Err(ChannelConflict { channel, cycle });
                    }
                    events.push(ControlEvent {
                        cycle,
                        op: name.clone(),
                    });
                }
            }
        }
        Ok(trace)
    }

    /// Number of channels that saw at least one event.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Total events across channels.
    pub fn event_count(&self) -> usize {
        self.channels.values().map(Vec::len).sum()
    }

    /// Events on one channel, if any.
    pub fn events(&self, channel: &Channel) -> Option<&[ControlEvent]> {
        self.channels.get(channel).map(Vec::as_slice)
    }

    /// Iterates over `(channel, events)`.
    pub fn iter(&self) -> impl Iterator<Item = (&Channel, &[ControlEvent])> {
        self.channels.iter().map(|(c, e)| (c, e.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::DEFAULT_CYCLE_NS;
    use qcs_circuit::circuit::Circuit;
    use qcs_core::schedule::{schedule_asap, ControlGroups};
    use qcs_topology::error::GateDurations;

    fn program(c: &Circuit) -> IsaProgram {
        let s = schedule_asap(
            c,
            &GateDurations::surface_code_defaults(),
            &ControlGroups::unconstrained(),
        );
        IsaProgram::lower(&s, DEFAULT_CYCLE_NS)
    }

    #[test]
    fn routes_ops_to_channels() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap().cnot(0, 1).unwrap().measure(1).unwrap();
        let trace = ControlTrace::dispatch(&program(&c)).unwrap();
        assert_eq!(trace.channel_count(), 3);
        assert!(trace.events(&Channel::Drive(0)).is_some());
        assert!(trace.events(&Channel::Flux(0, 1)).is_some());
        assert_eq!(trace.events(&Channel::Readout).unwrap().len(), 1);
        assert_eq!(trace.event_count(), 3);
    }

    #[test]
    fn scheduled_circuits_never_conflict() {
        // The ASAP scheduler serializes same-qubit gates, so dispatch of
        // its output must always succeed.
        let mut c = Circuit::new(3);
        c.h(0).unwrap().h(0).unwrap().cnot(0, 1).unwrap();
        c.cz(1, 2).unwrap().measure_all();
        assert!(ControlTrace::dispatch(&program(&c)).is_ok());
    }

    #[test]
    fn simultaneous_readout_is_fine() {
        let mut c = Circuit::new(3);
        c.measure_all();
        let trace = ControlTrace::dispatch(&program(&c)).unwrap();
        let events = trace.events(&Channel::Readout).unwrap();
        assert_eq!(events.len(), 3);
        assert!(events.iter().all(|e| e.cycle == 0));
    }

    #[test]
    fn detects_conflicts_in_hand_built_programs() {
        use crate::isa::Instruction;
        let bad = IsaProgram {
            cycle_ns: DEFAULT_CYCLE_NS,
            instructions: vec![
                Instruction::Op {
                    name: "x".into(),
                    angle: None,
                    qubits: vec![0],
                },
                Instruction::Op {
                    name: "h".into(),
                    angle: None,
                    qubits: vec![0],
                },
            ],
            total_cycles: 1,
        };
        let err = ControlTrace::dispatch(&bad).unwrap_err();
        assert_eq!(err.channel, Channel::Drive(0));
        assert_eq!(err.cycle, 0);
    }

    #[test]
    fn flux_channel_canonical_order() {
        let mut c = Circuit::new(2);
        c.cz(1, 0).unwrap();
        let trace = ControlTrace::dispatch(&program(&c)).unwrap();
        assert!(trace.events(&Channel::Flux(0, 1)).is_some());
    }

    #[test]
    fn channel_display() {
        assert_eq!(Channel::Drive(3).to_string(), "drive[3]");
        assert_eq!(Channel::Flux(1, 4).to_string(), "flux[1,4]");
        assert_eq!(Channel::Readout.to_string(), "readout");
    }
}
