//! The language front-end: program entry into the stack.

use qcs_circuit::circuit::Circuit;
use qcs_circuit::optimize::{optimize, OptimizeReport};
use qcs_circuit::qasm::{self, ParseQasmError};

/// Front-end configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frontend {
    /// Run the high-level peephole optimizer (gate cancellation, rotation
    /// merging) before handing the circuit to the compiler.
    pub optimize: bool,
}

impl Default for Frontend {
    fn default() -> Self {
        Frontend { optimize: true }
    }
}

/// A parsed-and-prepared program plus front-end diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedProgram {
    /// The circuit entering the compiler.
    pub circuit: Circuit,
    /// What the optimizer did (all-zero when optimization is disabled).
    pub optimization: OptimizeReport,
}

impl Frontend {
    /// Accepts an OpenQASM 2.0 program.
    ///
    /// # Errors
    ///
    /// Returns [`ParseQasmError`] on malformed source.
    pub fn accept_qasm(&self, source: &str) -> Result<PreparedProgram, ParseQasmError> {
        let circuit = qasm::parse(source)?;
        Ok(self.accept_circuit(circuit))
    }

    /// Accepts an in-memory circuit.
    pub fn accept_circuit(&self, circuit: Circuit) -> PreparedProgram {
        if self.optimize {
            let (optimized, report) = optimize(&circuit);
            PreparedProgram {
                circuit: optimized,
                optimization: report,
            }
        } else {
            PreparedProgram {
                circuit,
                optimization: OptimizeReport::default(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_optimizes() {
        let src = "OPENQASM 2.0;\nqreg q[2];\nh q[0];\nh q[0];\ncx q[0],q[1];\n";
        let prep = Frontend::default().accept_qasm(src).unwrap();
        assert_eq!(prep.circuit.gate_count(), 1); // H pair cancelled
        assert_eq!(prep.optimization.cancelled, 2);
    }

    #[test]
    fn optimization_can_be_disabled() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nh q[0];\nh q[0];\n";
        let prep = Frontend { optimize: false }.accept_qasm(src).unwrap();
        assert_eq!(prep.circuit.gate_count(), 2);
        assert_eq!(prep.optimization.total_removed(), 0);
    }

    #[test]
    fn propagates_parse_errors() {
        assert!(Frontend::default().accept_qasm("garbage q[0];").is_err());
    }

    #[test]
    fn accepts_circuits_directly() {
        let mut c = Circuit::new(2);
        c.x(0).unwrap().x(0).unwrap();
        let prep = Frontend::default().accept_circuit(c);
        assert!(prep.circuit.is_empty());
    }
}
