//! The executable quantum ISA layer (eQASM-style, refs \[14\]–\[17\]).
//!
//! The compiler's scheduled output is lowered to a timestamped
//! instruction stream: quantum operations interleaved with explicit
//! `QWAIT` timing instructions, quantized to the control cycle. This is
//! the representation the microarchitecture executes and the
//! control-electronics layer dispatches.

use qcs_circuit::gate::Gate;
use qcs_core::schedule::Schedule;

/// Control cycle length in nanoseconds (eQASM's timing grid).
pub const DEFAULT_CYCLE_NS: f64 = 20.0;

/// One ISA instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instruction {
    /// Advance the timeline by the given number of cycles.
    Qwait(u64),
    /// A quantum operation issued in the current cycle.
    Op {
        /// The gate mnemonic (QASM spelling).
        name: String,
        /// Rotation angle if parametrized.
        angle: Option<f64>,
        /// Physical operand qubits.
        qubits: Vec<usize>,
    },
}

impl Instruction {
    fn from_gate(gate: &Gate) -> Self {
        Instruction::Op {
            name: gate.name().to_string(),
            angle: gate.angle(),
            qubits: gate.qubits(),
        }
    }
}

impl std::fmt::Display for Instruction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Instruction::Qwait(n) => write!(f, "qwait {n}"),
            Instruction::Op {
                name,
                angle,
                qubits,
            } => {
                match angle {
                    Some(a) => write!(f, "{name}({a})")?,
                    None => write!(f, "{name}")?,
                }
                let ops: Vec<String> = qubits.iter().map(|q| format!("q{q}")).collect();
                write!(f, " {}", ops.join(", "))
            }
        }
    }
}

/// A lowered ISA program.
#[derive(Debug, Clone, PartialEq)]
pub struct IsaProgram {
    /// Cycle length used for quantization (ns).
    pub cycle_ns: f64,
    /// The instruction stream.
    pub instructions: Vec<Instruction>,
    /// Total program length in cycles.
    pub total_cycles: u64,
}

impl IsaProgram {
    /// Lowers a schedule to ISA instructions on a `cycle_ns` grid.
    ///
    /// Gates are issued in start-time order; a `QWAIT` is emitted whenever
    /// the next gate starts in a later cycle than the previous issue.
    /// Barriers vanish (they are purely compile-time).
    ///
    /// # Panics
    ///
    /// Panics if `cycle_ns` is not positive.
    pub fn lower(schedule: &Schedule, cycle_ns: f64) -> Self {
        assert!(cycle_ns > 0.0, "cycle length must be positive");
        let mut timed: Vec<(&_, u64)> = schedule
            .gates
            .iter()
            .filter(|g| !matches!(g.gate, Gate::Barrier(_)))
            .map(|g| (g, (g.start_ns / cycle_ns).round() as u64))
            .collect();
        timed.sort_by_key(|&(g, cycle)| (cycle, g.index));

        let mut instructions = Vec::with_capacity(timed.len());
        let mut cursor = 0u64;
        for (g, cycle) in &timed {
            if *cycle > cursor {
                instructions.push(Instruction::Qwait(cycle - cursor));
                cursor = *cycle;
            }
            instructions.push(Instruction::from_gate(&g.gate));
        }
        let total_cycles = (schedule.makespan_ns / cycle_ns).ceil() as u64;
        IsaProgram {
            cycle_ns,
            instructions,
            total_cycles,
        }
    }

    /// Number of quantum operations (excluding waits).
    pub fn instruction_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i, Instruction::Op { .. }))
            .count()
    }

    /// Number of `QWAIT` instructions.
    pub fn wait_count(&self) -> usize {
        self.instructions.len() - self.instruction_count()
    }

    /// Renders the program as assembly text.
    pub fn to_assembly(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# cycle = {} ns\n", self.cycle_ns));
        for i in &self.instructions {
            out.push_str(&i.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::circuit::Circuit;
    use qcs_core::schedule::{schedule_asap, ControlGroups};
    use qcs_topology::error::GateDurations;

    fn lower(c: &Circuit) -> IsaProgram {
        let s = schedule_asap(
            c,
            &GateDurations::surface_code_defaults(),
            &ControlGroups::unconstrained(),
        );
        IsaProgram::lower(&s, DEFAULT_CYCLE_NS)
    }

    #[test]
    fn sequential_gates_get_waits() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap().cnot(0, 1).unwrap();
        let isa = lower(&c);
        // h at cycle 0, cnot at cycle 1 (20 ns / 20 ns).
        assert_eq!(isa.instruction_count(), 2);
        assert_eq!(isa.wait_count(), 1);
        assert_eq!(isa.instructions[1], Instruction::Qwait(1));
        assert_eq!(isa.total_cycles, 3); // 20 + 40 ns = 60 ns = 3 cycles
    }

    #[test]
    fn parallel_gates_share_cycle() {
        let mut c = Circuit::new(2);
        c.h(0).unwrap().h(1).unwrap();
        let isa = lower(&c);
        assert_eq!(isa.wait_count(), 0);
        assert_eq!(isa.instruction_count(), 2);
    }

    #[test]
    fn barriers_vanish() {
        let mut c = Circuit::new(2);
        c.barrier_all();
        c.h(0).unwrap();
        let isa = lower(&c);
        assert_eq!(isa.instruction_count(), 1);
    }

    #[test]
    fn assembly_output() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.5).unwrap().cnot(0, 1).unwrap();
        let isa = lower(&c);
        let text = isa.to_assembly();
        assert!(text.contains("rz(0.5) q0"));
        assert!(text.contains("cx q0, q1"));
        assert!(text.contains("qwait 1"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Instruction::Qwait(4).to_string(), "qwait 4");
        let op = Instruction::Op {
            name: "cz".into(),
            angle: None,
            qubits: vec![2, 5],
        };
        assert_eq!(op.to_string(), "cz q2, q5");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_cycle() {
        let s = schedule_asap(
            &Circuit::new(1),
            &GateDurations::surface_code_defaults(),
            &ControlGroups::unconstrained(),
        );
        let _ = IsaProgram::lower(&s, 0.0);
    }
}
