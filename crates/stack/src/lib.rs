//! The full-stack pipeline of Fig. 1.
//!
//! "Full-stack quantum computing systems consist of a series of
//! functional elements … that bridge quantum algorithms with quantum
//! devices": quantum applications, high-level languages and compilers, a
//! quantum instruction set architecture and microarchitecture, control
//! electronics, and the quantum device. Each element is a module here:
//!
//! * [`frontend`] — the language layer: programs enter as OpenQASM text
//!   or as [`qcs_circuit::Circuit`]s, with optional high-level
//!   optimization.
//! * [`codesign`] — the grey arrows of Fig. 1: hardware information
//!   flowing *up* ([`codesign::HardwareInfo`]) and algorithm information
//!   flowing *down* ([`codesign::AlgorithmInfo`]), joined by
//!   [`codesign::select_mapper`], which picks mapping strategies from the
//!   interaction-graph profile and device calibration.
//! * [`isa`] — the eQASM-like executable ISA: the scheduled circuit
//!   lowered to timestamped instructions with explicit waits.
//! * [`microarch`] — the issue engine between ISA and analog channels:
//!   finite issue width stretching over-parallel cycles into stalls.
//! * [`control`] — the control-electronics layer: ISA instructions
//!   dispatched onto shared analog channels, checking that the schedule
//!   respects channel exclusivity.
//! * [`pipeline`] — [`pipeline::FullStack`]: one call from source program
//!   to control events plus the mapping report.
//!
//! # Examples
//!
//! ```
//! use qcs_stack::pipeline::FullStack;
//! use qcs_topology::surface::surface17;
//!
//! let stack = FullStack::new(surface17());
//! let qasm = "OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n";
//! let run = stack.run_qasm(qasm)?;
//! assert!(run.isa.instruction_count() > 0);
//! assert!(run.outcome.report.fidelity_after > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod codesign;
pub mod control;
pub mod frontend;
pub mod isa;
pub mod microarch;
pub mod pipeline;

pub use pipeline::{FullStack, StackError, StackRun};
