//! Microarchitecture execution model.
//!
//! Between the ISA and the control electronics sits the
//! microarchitecture (the paper's refs \[16\]/\[17\]): the classical engine
//! that fetches timestamped quantum instructions and issues them to the
//! analog channels. Its finite *issue width* is one concrete form of the
//! "classical control constraints that … limit the operations'
//! parallelization" (Section III).
//!
//! [`Microarchitecture::execute`] replays an [`IsaProgram`] cycle by
//! cycle: instructions that exceed the issue width in their cycle spill
//! into stall cycles, stretching the program and reducing utilization.

use crate::isa::{Instruction, IsaProgram};

/// A simple in-order issue engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Microarchitecture {
    /// Maximum quantum operations issued per cycle.
    pub issue_width: usize,
}

impl Default for Microarchitecture {
    fn default() -> Self {
        // A generous but finite issue width typical of published control
        // microarchitectures.
        Microarchitecture { issue_width: 8 }
    }
}

/// Statistics from replaying a program through the issue engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionTrace {
    /// Quantum operations issued.
    pub ops_issued: usize,
    /// Total cycles consumed, including stalls.
    pub cycles: u64,
    /// Cycles added because a timestamp's operations exceeded the issue
    /// width.
    pub stall_cycles: u64,
    /// Peak operations requested in any single timestamp.
    pub peak_demand: usize,
    /// `ops_issued / (cycles × issue_width)` in `[0, 1]`.
    pub utilization: f64,
}

impl Microarchitecture {
    /// Creates an engine with the given issue width.
    ///
    /// # Panics
    ///
    /// Panics if `issue_width == 0`.
    pub fn new(issue_width: usize) -> Self {
        assert!(issue_width > 0, "issue width must be positive");
        Microarchitecture { issue_width }
    }

    /// Replays `program`, returning issue statistics.
    pub fn execute(&self, program: &IsaProgram) -> ExecutionTrace {
        let mut cycles: u64 = 0;
        let mut stall_cycles: u64 = 0;
        let mut ops_issued = 0usize;
        let mut peak_demand = 0usize;
        let mut pending_in_cycle = 0usize;

        let flush = |pending: usize, cycles: &mut u64, stalls: &mut u64, width: usize| {
            if pending > width {
                let extra = pending.div_ceil(width) as u64 - 1;
                *cycles += extra;
                *stalls += extra;
            }
        };

        for inst in &program.instructions {
            match inst {
                Instruction::Qwait(n) => {
                    peak_demand = peak_demand.max(pending_in_cycle);
                    flush(
                        pending_in_cycle,
                        &mut cycles,
                        &mut stall_cycles,
                        self.issue_width,
                    );
                    pending_in_cycle = 0;
                    cycles += n;
                }
                Instruction::Op { .. } => {
                    pending_in_cycle += 1;
                    ops_issued += 1;
                }
            }
        }
        peak_demand = peak_demand.max(pending_in_cycle);
        flush(
            pending_in_cycle,
            &mut cycles,
            &mut stall_cycles,
            self.issue_width,
        );
        if ops_issued > 0 {
            cycles += 1; // the final issue cycle itself
        }
        cycles = cycles.max(program.total_cycles);

        let capacity = cycles as f64 * self.issue_width as f64;
        ExecutionTrace {
            ops_issued,
            cycles,
            stall_cycles,
            peak_demand,
            utilization: if capacity > 0.0 {
                ops_issued as f64 / capacity
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::DEFAULT_CYCLE_NS;
    use qcs_circuit::circuit::Circuit;
    use qcs_core::schedule::{schedule_asap, ControlGroups};
    use qcs_topology::error::GateDurations;

    fn program(c: &Circuit) -> IsaProgram {
        let s = schedule_asap(
            c,
            &GateDurations::surface_code_defaults(),
            &ControlGroups::unconstrained(),
        );
        IsaProgram::lower(&s, DEFAULT_CYCLE_NS)
    }

    #[test]
    fn wide_engine_never_stalls() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q).unwrap();
        }
        let trace = Microarchitecture::new(8).execute(&program(&c));
        assert_eq!(trace.stall_cycles, 0);
        assert_eq!(trace.ops_issued, 4);
        assert_eq!(trace.peak_demand, 4);
    }

    #[test]
    fn narrow_engine_stalls() {
        let mut c = Circuit::new(4);
        for q in 0..4 {
            c.h(q).unwrap();
        }
        let trace = Microarchitecture::new(1).execute(&program(&c));
        assert_eq!(trace.stall_cycles, 3); // 4 ops through a width-1 port
        assert!(trace.cycles >= 4);
    }

    #[test]
    fn utilization_bounds() {
        let mut c = Circuit::new(3);
        c.h(0).unwrap().cnot(0, 1).unwrap().cnot(1, 2).unwrap();
        for width in [1, 2, 8] {
            let t = Microarchitecture::new(width).execute(&program(&c));
            assert!(t.utilization > 0.0 && t.utilization <= 1.0, "width {width}");
        }
    }

    #[test]
    fn narrower_is_never_faster() {
        let c = {
            let mut c = Circuit::new(6);
            for q in 0..6 {
                c.h(q).unwrap();
            }
            for q in 0..5 {
                c.cnot(q, q + 1).unwrap();
            }
            c
        };
        let p = program(&c);
        let wide = Microarchitecture::new(8).execute(&p);
        let narrow = Microarchitecture::new(1).execute(&p);
        assert!(narrow.cycles >= wide.cycles);
        assert_eq!(narrow.ops_issued, wide.ops_issued);
    }

    #[test]
    fn empty_program() {
        let t = Microarchitecture::default().execute(&program(&Circuit::new(2)));
        assert_eq!(t.ops_issued, 0);
        assert_eq!(t.utilization, 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = Microarchitecture::new(0);
    }
}
