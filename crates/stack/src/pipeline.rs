//! The end-to-end full-stack run: program text to control events.

use qcs_circuit::circuit::Circuit;
use qcs_circuit::qasm::ParseQasmError;
use qcs_core::mapper::{MapError, MapOutcome, Mapper};
use qcs_topology::device::Device;

use crate::codesign::{select_mapper, AlgorithmInfo, HardwareInfo, MapperChoice};
use crate::control::{ChannelConflict, ControlTrace};
use crate::frontend::{Frontend, PreparedProgram};
use crate::isa::{IsaProgram, DEFAULT_CYCLE_NS};

/// Error raised anywhere along the stack.
#[derive(Debug, Clone, PartialEq)]
pub enum StackError {
    /// Front-end parse failure.
    Parse(ParseQasmError),
    /// Compiler (mapping) failure.
    Map(MapError),
    /// Control dispatch failure (indicates a scheduler bug — dispatch of
    /// a consistent schedule cannot conflict).
    Control(ChannelConflict),
}

impl std::fmt::Display for StackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StackError::Parse(e) => write!(f, "frontend: {e}"),
            StackError::Map(e) => write!(f, "compiler: {e}"),
            StackError::Control(e) => write!(f, "control: {e}"),
        }
    }
}

impl std::error::Error for StackError {}

impl From<ParseQasmError> for StackError {
    fn from(e: ParseQasmError) -> Self {
        StackError::Parse(e)
    }
}
impl From<MapError> for StackError {
    fn from(e: MapError) -> Self {
        StackError::Map(e)
    }
}
impl From<ChannelConflict> for StackError {
    fn from(e: ChannelConflict) -> Self {
        StackError::Control(e)
    }
}

/// Everything produced by one full-stack run.
#[derive(Debug)]
pub struct StackRun {
    /// The front-end's prepared program.
    pub prepared: PreparedProgram,
    /// Which mapper the co-design layer selected.
    pub mapper_choice: MapperChoice,
    /// The compiler's outcome (routed circuit, schedule, report).
    pub outcome: MapOutcome,
    /// The lowered ISA program.
    pub isa: IsaProgram,
    /// The dispatched control trace.
    pub control: ControlTrace,
}

/// The assembled full-stack: device at the bottom, co-design in the
/// middle, front-end on top.
#[derive(Debug)]
pub struct FullStack {
    device: Device,
    frontend: Frontend,
    /// When set, overrides the co-design mapper selection.
    fixed_mapper: Option<Mapper>,
    cycle_ns: f64,
}

impl FullStack {
    /// Builds a stack over `device` with default front-end and co-design
    /// mapper selection.
    pub fn new(device: Device) -> Self {
        FullStack {
            device,
            frontend: Frontend::default(),
            fixed_mapper: None,
            cycle_ns: DEFAULT_CYCLE_NS,
        }
    }

    /// Forces a specific mapper instead of the co-design selection.
    pub fn with_mapper(mut self, mapper: Mapper) -> Self {
        self.fixed_mapper = Some(mapper);
        self
    }

    /// Overrides the front-end.
    pub fn with_frontend(mut self, frontend: Frontend) -> Self {
        self.frontend = frontend;
        self
    }

    /// Overrides the ISA cycle length (ns).
    ///
    /// # Panics
    ///
    /// Panics if `cycle_ns` is not positive.
    pub fn with_cycle_ns(mut self, cycle_ns: f64) -> Self {
        assert!(cycle_ns > 0.0, "cycle length must be positive");
        self.cycle_ns = cycle_ns;
        self
    }

    /// The device at the bottom of the stack.
    pub fn device(&self) -> &Device {
        &self.device
    }

    /// Runs an OpenQASM program through the whole stack.
    ///
    /// # Errors
    ///
    /// See [`StackError`].
    pub fn run_qasm(&self, source: &str) -> Result<StackRun, StackError> {
        let prepared = self.frontend.accept_qasm(source)?;
        self.run_prepared(prepared)
    }

    /// Runs an in-memory circuit through the whole stack.
    ///
    /// # Errors
    ///
    /// See [`StackError`].
    pub fn run_circuit(&self, circuit: &Circuit) -> Result<StackRun, StackError> {
        let prepared = self.frontend.accept_circuit(circuit.clone());
        self.run_prepared(prepared)
    }

    fn run_prepared(&self, prepared: PreparedProgram) -> Result<StackRun, StackError> {
        // Co-design: join the upward hardware info with the downward
        // algorithm info to pick the mapping strategy.
        let (selected, choice) = select_mapper(
            &AlgorithmInfo::of(&prepared.circuit),
            &HardwareInfo::of(&self.device),
        );
        let (mapper, mapper_choice) = match &self.fixed_mapper {
            Some(m) => (m, choice), // choice reported as advisory
            None => (&selected, choice),
        };
        let outcome = mapper.map(&prepared.circuit, &self.device)?;
        let isa = IsaProgram::lower(&outcome.schedule, self.cycle_ns);
        let control = ControlTrace::dispatch(&isa)?;
        Ok(StackRun {
            prepared,
            mapper_choice,
            outcome,
            isa,
            control,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_topology::lattice::line_device;
    use qcs_topology::surface::{surface17, surface7};

    #[test]
    fn end_to_end_qasm() {
        let stack = FullStack::new(surface7());
        let src = "OPENQASM 2.0;\nqreg q[4];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\ncx q[2],q[3];\nmeasure q[3] -> c[3];\n";
        let run = stack.run_qasm(src).unwrap();
        assert!(run.outcome.routed.respects_connectivity(&surface7()));
        assert!(run.isa.instruction_count() >= run.outcome.native.gate_count());
        assert!(run.control.event_count() > 0);
        assert!(run.outcome.report.fidelity_after > 0.0);
    }

    #[test]
    fn parse_errors_surface() {
        let stack = FullStack::new(surface7());
        assert!(matches!(
            stack.run_qasm("h q[0];"),
            Err(StackError::Parse(_))
        ));
    }

    #[test]
    fn too_wide_circuit_errors() {
        let stack = FullStack::new(surface7());
        let c = Circuit::new(20);
        assert!(matches!(stack.run_circuit(&c), Err(StackError::Map(_))));
    }

    #[test]
    fn fixed_mapper_override() {
        let stack = FullStack::new(surface17()).with_mapper(Mapper::trivial());
        let qft = qcs_workloads::qft::qft(6).unwrap();
        let run = stack.run_circuit(&qft).unwrap();
        assert_eq!(run.outcome.report.placer, "trivial");
        assert_eq!(run.outcome.report.router, "trivial");
    }

    #[test]
    fn codesign_runs_sparse_circuits_algorithm_driven() {
        let stack = FullStack::new(surface17());
        let ghz = qcs_workloads::ghz::ghz_chain(8).unwrap();
        let run = stack.run_circuit(&ghz).unwrap();
        assert_eq!(
            run.mapper_choice,
            crate::codesign::MapperChoice::AlgorithmDriven
        );
        assert_eq!(run.outcome.report.placer, "graph-similarity");
    }

    #[test]
    fn mapped_program_verifies_against_simulator() {
        use qcs_rng::SeedableRng;
        let stack = FullStack::new(line_device(5)).with_mapper(Mapper::trivial());
        let mut c = Circuit::new(3);
        c.h(0).unwrap().cnot(0, 2).unwrap().cz(1, 2).unwrap();
        let run = stack.run_circuit(&c).unwrap();
        let mut rng = qcs_rng::ChaCha8Rng::seed_from_u64(1);
        qcs_sim::equiv::mapped_equivalent(
            &run.prepared.circuit,
            &run.outcome.routed.circuit,
            5,
            run.outcome.routed.initial.as_assignment(),
            run.outcome.routed.final_layout.as_assignment(),
            3,
            &mut rng,
        )
        .expect("full-stack output must implement the source program");
    }

    #[test]
    fn cycle_override() {
        let stack = FullStack::new(surface7()).with_cycle_ns(10.0);
        let mut c = Circuit::new(2);
        c.h(0).unwrap().cnot(0, 1).unwrap();
        let run = stack.run_circuit(&c).unwrap();
        assert_eq!(run.isa.cycle_ns, 10.0);
        assert_eq!(stack.device().qubit_count(), 7);
    }
}
