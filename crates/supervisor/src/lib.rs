//! Fleet supervision for the serving tier: one process that owns a
//! shard fleet and its router, and keeps them alive.
//!
//! The serving tier is three binaries deep — `qcs-serve` shards hold
//! the caches, `qcs-router` consistent-hashes requests across them —
//! but nothing so far owned the *processes*. A crashed shard stayed
//! dead until an operator noticed; the router rerouted around the hole
//! and a third of the keyspace went cold. `qcs-supervisor` closes the
//! loop:
//!
//! - **Spawn.** Reserves one port per shard plus one for the router,
//!   gives every shard its own `--persist-dir` under the fleet root,
//!   boots the shards, waits for each to answer a protocol `ping`
//!   (which a WAL-backed shard only does *after* replaying its log —
//!   readiness implies a warm cache), then boots the router over them.
//! - **Monitor.** A poll loop `try_wait`s every child. An exited child
//!   is rescheduled with exponential backoff plus deterministic jitter
//!   ([`restart_delay`] / [`restart_jitter`]), so a crash-looping shard
//!   cannot hot-spin the host and a fleet of supervisors cannot
//!   thundering-herd shared infrastructure. The respawned shard reuses
//!   its port and persist dir: it replays the WAL, answers pings, and
//!   the router's prober readmits it — serving cache hits for
//!   everything it had compiled before the crash.
//! - **Drain.** `SIGTERM`/`SIGINT` (observed via `qcs-sys`'s
//!   async-signal-safe pending mask) switches to graceful shutdown:
//!   restarts stop, the router is asked to shut down first (no new work
//!   enters the fleet, in-flight requests finish), then the shards,
//!   each with a bounded wait before a hard kill. The supervisor exits
//!   0 on a clean drain.
//! - **Report.** `--state-file` atomically (tmp + rename) publishes a
//!   JSON snapshot of the fleet — ports, pids, restart counts — on
//!   every topology change. The chaos harness reads it to find victims
//!   and to assert restart counts; operators read it to find the fleet.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use qcs_json::Json;
use qcs_rng::{RngCore, SplitMix64};
use qcs_serve::protocol::{read_frame, write_json};
use qcs_sys::{kill_process, signal_pending, watch_signal, SIGINT, SIGKILL, SIGTERM};

/// Tuning knobs for [`Supervisor::run`].
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Number of `qcs-serve` shards to run.
    pub shards: usize,
    /// Fleet root: shard `i` persists under `<root>/shard-<i>`.
    pub root: PathBuf,
    /// Path to the `qcs-serve` binary.
    pub serve_bin: PathBuf,
    /// Path to the `qcs-router` binary.
    pub router_bin: PathBuf,
    /// Where to publish the fleet state JSON (atomic tmp + rename).
    pub state_file: Option<PathBuf>,
    /// Where to write the router's bound port once the fleet is ready
    /// (same convention as the daemons' `--port-file`).
    pub port_file: Option<PathBuf>,
    /// Directory for per-child log files; `None` inherits stdio.
    pub log_dir: Option<PathBuf>,
    /// Router bind address. Port 0 reserves an ephemeral port up front
    /// so the state file can carry a concrete address.
    pub router_addr: String,
    /// Base restart backoff; doubles per consecutive restart of the
    /// same child, up to [`SupervisorConfig::restart_backoff_max`].
    pub restart_backoff: Duration,
    /// Cap on the restart backoff growth.
    pub restart_backoff_max: Duration,
    /// Seed for deterministic restart jitter.
    pub jitter_seed: u64,
    /// Worker threads per shard (`qcs-serve --workers`).
    pub workers: usize,
    /// Result-cache size per shard in MiB (`qcs-serve --cache-mb`).
    pub cache_mb: usize,
    /// Budget for the whole fleet to become ready at boot.
    pub boot_timeout: Duration,
    /// Per-child budget for a graceful protocol shutdown during drain
    /// before the supervisor hard-kills it.
    pub drain_timeout: Duration,
    /// Extra arguments appended to every shard's command line (e.g.
    /// `--faults` specs from the chaos harness).
    pub shard_args: Vec<String>,
    /// Extra arguments appended to the router's command line.
    pub router_args: Vec<String>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            shards: 3,
            root: PathBuf::from("fleet-root"),
            serve_bin: PathBuf::from("qcs-serve"),
            router_bin: PathBuf::from("qcs-router"),
            state_file: None,
            port_file: None,
            log_dir: None,
            router_addr: "127.0.0.1:0".to_string(),
            restart_backoff: Duration::from_millis(200),
            restart_backoff_max: Duration::from_secs(5),
            jitter_seed: 0xA5A5_5A5A_DEAD_BEEF,
            workers: 2,
            cache_mb: 64,
            boot_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(10),
            shard_args: Vec::new(),
            router_args: Vec::new(),
        }
    }
}

/// How often the monitor loop reaps children and checks signals.
const MONITOR_TICK: Duration = Duration::from_millis(50);

/// The restart backoff before reviving a child that has already been
/// restarted `restarts` times: `base * 2^min(restarts, 6)` capped at
/// `cap`. Pure so the schedule is unit-testable.
pub fn restart_delay(base: Duration, cap: Duration, restarts: u32) -> Duration {
    let base = base.max(Duration::from_millis(1));
    base.saturating_mul(1u32 << restarts.min(6))
        .min(cap.max(base))
}

/// Deterministic restart jitter in `[0, base/2]`: decorrelates a fleet
/// of supervisors restarting children after a shared-cause crash.
pub fn restart_jitter(rng: &mut SplitMix64, base: Duration) -> Duration {
    let span = ((base / 2).as_millis() as u64).max(1);
    Duration::from_millis(rng.next_u64() % span)
}

/// Reserves an ephemeral port by binding and immediately dropping a
/// listener. The window between drop and the child's own bind is a
/// race in principle; in practice nothing else allocates from the
/// ephemeral range and immediately listens on a specific port.
pub fn reserve_port() -> io::Result<u16> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    Ok(listener.local_addr()?.port())
}

/// One supervised child process and its restart bookkeeping.
struct Ward {
    name: String,
    addr: SocketAddr,
    child: Option<Child>,
    restarts: u32,
    /// When a dead child may be respawned; `None` while running.
    respawn_at: Option<Instant>,
    command: Vec<String>,
    log_path: Option<PathBuf>,
}

impl Ward {
    fn pid(&self) -> u32 {
        self.child.as_ref().map(Child::id).unwrap_or(0)
    }
}

/// Builds the fleet-state JSON published via `--state-file`.
fn fleet_state_json(router: &Ward, shards: &[Ward], draining: bool) -> Json {
    Json::object([
        ("role", Json::from("supervisor")),
        ("pid", Json::from(u64::from(std::process::id()))),
        ("draining", Json::from(draining)),
        (
            "router",
            Json::object([
                ("addr", Json::from(router.addr.to_string())),
                ("pid", Json::from(u64::from(router.pid()))),
                ("restarts", Json::from(u64::from(router.restarts))),
            ]),
        ),
        (
            "shards",
            Json::Array(
                shards
                    .iter()
                    .map(|s| {
                        Json::object([
                            ("addr", Json::from(s.addr.to_string())),
                            ("pid", Json::from(u64::from(s.pid()))),
                            ("restarts", Json::from(u64::from(s.restarts))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Atomically replaces `path` with `contents` (tmp file + rename), so a
/// reader never observes a half-written state file.
pub fn write_atomically(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// One protocol round trip against `addr` with a short budget; returns
/// the response's `"type"` member, or `None` on any failure.
fn protocol_exchange(addr: SocketAddr, request: &Json, budget: Duration) -> Option<String> {
    let mut stream = TcpStream::connect_timeout(&addr, budget).ok()?;
    stream.set_read_timeout(Some(budget)).ok()?;
    stream.set_write_timeout(Some(budget)).ok()?;
    write_json(&mut stream, request).ok()?;
    let payload = read_frame(&mut stream).ok()??;
    let text = std::str::from_utf8(&payload).ok()?;
    let value = qcs_json::parse(text).ok()?;
    value.get("type").and_then(Json::as_str).map(str::to_string)
}

/// Liveness probe: does the daemon at `addr` answer `ping` with `pong`?
/// A WAL-backed shard only listens after replaying its log, so a pong
/// also certifies a warm cache.
fn ping(addr: SocketAddr) -> bool {
    protocol_exchange(
        addr,
        &Json::object([("type", "ping")]),
        Duration::from_millis(500),
    )
    .as_deref()
        == Some("pong")
}

/// Asks the daemon at `addr` to shut down gracefully. Best-effort: a
/// dead daemon simply fails the connect.
fn request_shutdown(addr: SocketAddr) {
    let _ = protocol_exchange(
        addr,
        &Json::object([("type", "shutdown")]),
        Duration::from_millis(500),
    );
}

/// Namespace for [`Supervisor::run`].
pub struct Supervisor;

/// Outcome of a supervised run, for the binary's exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// A signal arrived and the fleet drained cleanly.
    Drained,
    /// The drain needed at least one hard kill.
    DrainedWithKills,
}

impl Supervisor {
    /// Boots the fleet, supervises it until `SIGTERM`/`SIGINT`, drains,
    /// and returns how cleanly the drain went.
    ///
    /// # Errors
    ///
    /// Propagates failures to reserve ports, create directories, spawn
    /// children, or see the fleet become ready within `boot_timeout`.
    pub fn run(config: SupervisorConfig) -> io::Result<RunOutcome> {
        if config.shards == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "supervisor needs at least one shard",
            ));
        }
        watch_signal(SIGTERM);
        watch_signal(SIGINT);
        std::fs::create_dir_all(&config.root)?;
        if let Some(dir) = &config.log_dir {
            std::fs::create_dir_all(dir)?;
        }

        // Reserve every port up front: the state file and the router's
        // --shard list need concrete addresses before children exist.
        let mut shards = Vec::with_capacity(config.shards);
        for idx in 0..config.shards {
            let port = reserve_port()?;
            let addr: SocketAddr = format!("127.0.0.1:{port}").parse().expect("literal addr");
            let persist_dir = config.root.join(format!("shard-{idx}"));
            std::fs::create_dir_all(&persist_dir)?;
            let mut command = vec![
                config.serve_bin.display().to_string(),
                "--addr".to_string(),
                addr.to_string(),
                "--workers".to_string(),
                config.workers.to_string(),
                "--cache-mb".to_string(),
                config.cache_mb.to_string(),
                "--persist-dir".to_string(),
                persist_dir.display().to_string(),
            ];
            command.extend(config.shard_args.iter().cloned());
            shards.push(Ward {
                name: format!("shard-{idx}"),
                addr,
                child: None,
                restarts: 0,
                respawn_at: None,
                command,
                log_path: config
                    .log_dir
                    .as_ref()
                    .map(|d| d.join(format!("shard-{idx}.log"))),
            });
        }

        let router_addr: SocketAddr = {
            let requested: SocketAddr = config.router_addr.parse().map_err(|e| {
                io::Error::new(io::ErrorKind::InvalidInput, format!("bad router addr: {e}"))
            })?;
            if requested.port() == 0 {
                let port = reserve_port()?;
                SocketAddr::new(requested.ip(), port)
            } else {
                requested
            }
        };
        let mut router_command = vec![
            config.router_bin.display().to_string(),
            "--addr".to_string(),
            router_addr.to_string(),
        ];
        for shard in &shards {
            router_command.push("--shard".to_string());
            router_command.push(shard.addr.to_string());
        }
        router_command.extend(config.router_args.iter().cloned());
        let mut router = Ward {
            name: "router".to_string(),
            addr: router_addr,
            child: None,
            restarts: 0,
            respawn_at: None,
            command: router_command,
            log_path: config.log_dir.as_ref().map(|d| d.join("router.log")),
        };

        // Boot: shards first (the router probes them at startup), each
        // waited on until it pongs — which, with a persist dir, means
        // its WAL is replayed and its cache warm.
        let boot_deadline = Instant::now() + config.boot_timeout;
        for shard in &mut shards {
            spawn_ward(shard)?;
        }
        for shard in &shards {
            wait_ready(shard, boot_deadline)?;
        }
        spawn_ward(&mut router)?;
        wait_ready(&router, boot_deadline)?;

        publish_state(&config, &router, &shards, false);
        if let Some(path) = &config.port_file {
            std::fs::write(path, router_addr.port().to_string())?;
        }
        eprintln!(
            "qcs-supervisor: fleet ready — router {} over {} shard(s)",
            router_addr,
            shards.len()
        );

        // Monitor until a signal asks for the drain.
        let mut rng = SplitMix64::new(config.jitter_seed);
        loop {
            if signal_pending(SIGTERM) || signal_pending(SIGINT) {
                break;
            }
            let mut changed = false;
            for ward in shards.iter_mut().chain(std::iter::once(&mut router)) {
                changed |= reap_and_revive(ward, &config, &mut rng);
            }
            if changed {
                publish_state(&config, &router, &shards, false);
            }
            std::thread::sleep(MONITOR_TICK);
        }

        // Drain: router first so no new work enters the fleet while the
        // shards finish what they already accepted.
        eprintln!("qcs-supervisor: draining fleet");
        publish_state(&config, &router, &shards, true);
        let mut kills = 0usize;
        kills += drain_ward(&mut router, config.drain_timeout);
        for shard in &mut shards {
            kills += drain_ward(shard, config.drain_timeout);
        }
        publish_state(&config, &router, &shards, true);
        eprintln!("qcs-supervisor: drained ({} hard kill(s))", kills);
        Ok(if kills == 0 {
            RunOutcome::Drained
        } else {
            RunOutcome::DrainedWithKills
        })
    }
}

fn spawn_ward(ward: &mut Ward) -> io::Result<()> {
    let (program, args) = ward
        .command
        .split_first()
        .expect("ward commands are never empty");
    let mut command = Command::new(program);
    command.args(args);
    match &ward.log_path {
        Some(path) => {
            // Append across restarts: one log tells the whole story of
            // a crash-looping child.
            let open = || {
                std::fs::File::options()
                    .create(true)
                    .append(true)
                    .open(path)
            };
            command.stdout(Stdio::from(open()?));
            command.stderr(Stdio::from(open()?));
        }
        None => {
            command.stdout(Stdio::inherit());
            command.stderr(Stdio::inherit());
        }
    }
    let child = command.spawn().map_err(|e| {
        io::Error::new(e.kind(), format!("spawning {} ({program}): {e}", ward.name))
    })?;
    ward.child = Some(child);
    ward.respawn_at = None;
    Ok(())
}

fn wait_ready(ward: &Ward, deadline: Instant) -> io::Result<()> {
    while !ping(ward.addr) {
        if Instant::now() >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                format!("{} at {} never became ready", ward.name, ward.addr),
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    Ok(())
}

/// Reaps an exited child and revives it once its backoff has elapsed.
/// Returns true when the ward's externally visible state changed.
fn reap_and_revive(ward: &mut Ward, config: &SupervisorConfig, rng: &mut SplitMix64) -> bool {
    if let Some(child) = ward.child.as_mut() {
        match child.try_wait() {
            Ok(Some(status)) => {
                let delay = restart_delay(
                    config.restart_backoff,
                    config.restart_backoff_max,
                    ward.restarts,
                ) + restart_jitter(rng, config.restart_backoff);
                eprintln!(
                    "qcs-supervisor: {} exited ({status}); restart #{} in {} ms",
                    ward.name,
                    ward.restarts + 1,
                    delay.as_millis()
                );
                ward.child = None;
                ward.restarts += 1;
                ward.respawn_at = Some(Instant::now() + delay);
                return true;
            }
            Ok(None) | Err(_) => return false,
        }
    }
    if let Some(due) = ward.respawn_at {
        if Instant::now() >= due {
            match spawn_ward(ward) {
                Ok(()) => return true,
                Err(e) => {
                    // Spawn failures reschedule like crashes: the
                    // binary may be mid-redeploy.
                    eprintln!("qcs-supervisor: respawning {}: {e}", ward.name);
                    ward.respawn_at = Some(
                        Instant::now()
                            + restart_delay(
                                config.restart_backoff,
                                config.restart_backoff_max,
                                ward.restarts,
                            ),
                    );
                }
            }
        }
    }
    false
}

/// Gracefully stops one child: protocol shutdown, bounded wait, then a
/// hard kill. Returns how many hard kills were needed (0 or 1).
fn drain_ward(ward: &mut Ward, budget: Duration) -> usize {
    ward.respawn_at = None;
    let Some(mut child) = ward.child.take() else {
        return 0;
    };
    request_shutdown(ward.addr);
    let deadline = Instant::now() + budget;
    loop {
        match child.try_wait() {
            Ok(Some(_)) => return 0,
            Ok(None) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            _ => break,
        }
    }
    eprintln!(
        "qcs-supervisor: {} ignored shutdown for {} ms; killing",
        ward.name,
        budget.as_millis()
    );
    let _ = kill_process(child.id(), SIGKILL);
    let _ = child.wait();
    1
}

fn publish_state(config: &SupervisorConfig, router: &Ward, shards: &[Ward], draining: bool) {
    let Some(path) = &config.state_file else {
        return;
    };
    let state = fleet_state_json(router, shards, draining);
    if let Err(e) = write_atomically(path, &state.to_string_pretty()) {
        eprintln!("qcs-supervisor: cannot write state file: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_delay_doubles_and_caps() {
        let base = Duration::from_millis(200);
        let cap = Duration::from_secs(5);
        assert_eq!(restart_delay(base, cap, 0), Duration::from_millis(200));
        assert_eq!(restart_delay(base, cap, 1), Duration::from_millis(400));
        assert_eq!(restart_delay(base, cap, 3), Duration::from_millis(1600));
        assert_eq!(
            restart_delay(base, cap, 5),
            Duration::from_secs(5),
            "capped"
        );
        assert_eq!(restart_delay(base, cap, 60), Duration::from_secs(5));
        // Degenerate inputs stay sane.
        assert!(restart_delay(Duration::ZERO, Duration::ZERO, 9) >= Duration::from_millis(1));
    }

    #[test]
    fn restart_jitter_is_deterministic_and_bounded() {
        let base = Duration::from_millis(200);
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..64 {
            let ja = restart_jitter(&mut a, base);
            assert_eq!(ja, restart_jitter(&mut b, base));
            assert!(ja <= base / 2);
        }
    }

    #[test]
    fn reserved_ports_are_nonzero_and_fresh() {
        let a = reserve_port().expect("port reserved");
        assert_ne!(a, 0);
        // The reservation is released: the port is bindable again.
        TcpListener::bind(("127.0.0.1", a)).expect("reserved port is free after drop");
    }

    #[test]
    fn state_json_carries_fleet_topology() {
        let ward = |name: &str, port: u16, restarts: u32| Ward {
            name: name.to_string(),
            addr: format!("127.0.0.1:{port}").parse().unwrap(),
            child: None,
            restarts,
            respawn_at: None,
            command: vec!["noop".to_string()],
            log_path: None,
        };
        let router = ward("router", 7000, 0);
        let shards = vec![ward("shard-0", 7001, 2), ward("shard-1", 7002, 0)];
        let state = fleet_state_json(&router, &shards, false);
        assert_eq!(state.get("role").and_then(Json::as_str), Some("supervisor"));
        assert_eq!(
            state
                .get("router")
                .and_then(|r| r.get("addr"))
                .and_then(Json::as_str),
            Some("127.0.0.1:7000")
        );
        let Some(Json::Array(listed)) = state.get("shards") else {
            panic!("state carries a shards array");
        };
        assert_eq!(listed.len(), 2);
        assert_eq!(listed[0].get("restarts").and_then(Json::as_usize), Some(2));
        // Dead children publish pid 0, never a stale pid.
        assert_eq!(listed[0].get("pid").and_then(Json::as_usize), Some(0));
    }

    #[test]
    fn atomic_write_replaces_content() {
        let dir = std::env::temp_dir().join(format!("qcs-sup-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.json");
        write_atomically(&path, "first").unwrap();
        write_atomically(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
