//! `qcs-supervisor` — fleet supervisor binary.
//!
//! ```text
//! qcs-supervisor --shards N --root DIR
//!                [--addr HOST:PORT] [--serve-bin PATH] [--router-bin PATH]
//!                [--state-file PATH] [--port-file PATH] [--log-dir DIR]
//!                [--workers N] [--cache-mb N]
//!                [--restart-backoff-ms N] [--restart-backoff-max-ms N]
//!                [--drain-timeout-ms N]
//!                [--shard-arg ARG ...] [--router-arg ARG ...]
//! ```
//!
//! Boots `--shards` `qcs-serve` daemons (each with a WAL under
//! `<root>/shard-<i>`) behind one `qcs-router`, restarts whatever
//! crashes with exponential backoff and jitter, and drains the fleet
//! gracefully on `SIGTERM`/`SIGINT`: router first (no new work), then
//! the shards, hard-killing only children that ignore the protocol
//! shutdown. `--serve-bin`/`--router-bin` default to siblings of the
//! supervisor executable, so a built `target/release` runs as-is.
//!
//! `--shard-arg`/`--router-arg` append verbatim arguments to the child
//! command lines (repeatable) — the chaos harness uses them to arm
//! `--faults` specs on shards without touching the supervisor.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use qcs_supervisor::{RunOutcome, Supervisor, SupervisorConfig};

fn usage() -> String {
    "usage: qcs-supervisor --shards N --root DIR [--addr HOST:PORT] \
     [--serve-bin PATH] [--router-bin PATH] [--state-file PATH] \
     [--port-file PATH] [--log-dir DIR] [--workers N] [--cache-mb N] \
     [--restart-backoff-ms N] [--restart-backoff-max-ms N] \
     [--drain-timeout-ms N] [--shard-arg ARG ...] [--router-arg ARG ...]"
        .to_string()
}

/// The directory holding this executable — where sibling binaries
/// (`qcs-serve`, `qcs-router`) live after any normal cargo build.
fn sibling(name: &str) -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| exe.parent().map(|dir| dir.join(name)))
        .unwrap_or_else(|| PathBuf::from(name))
}

fn parse_args(args: &[String]) -> Result<SupervisorConfig, String> {
    let mut config = SupervisorConfig {
        serve_bin: sibling("qcs-serve"),
        router_bin: sibling("qcs-router"),
        ..SupervisorConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Err(usage());
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value\n{}", usage()))?;
        let bad = |what: &str| format!("bad {what} '{value}' for {flag}");
        match flag.as_str() {
            "--shards" => {
                config.shards = value.parse().map_err(|_| bad("shard count"))?;
                if config.shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--root" => config.root = PathBuf::from(value),
            "--addr" => config.router_addr = value.clone(),
            "--serve-bin" => config.serve_bin = PathBuf::from(value),
            "--router-bin" => config.router_bin = PathBuf::from(value),
            "--state-file" => config.state_file = Some(PathBuf::from(value)),
            "--port-file" => config.port_file = Some(PathBuf::from(value)),
            "--log-dir" => config.log_dir = Some(PathBuf::from(value)),
            "--workers" => {
                config.workers = value.parse().map_err(|_| bad("worker count"))?;
                if config.workers == 0 {
                    return Err("--workers must be at least 1".to_string());
                }
            }
            "--cache-mb" => config.cache_mb = value.parse().map_err(|_| bad("cache size"))?,
            "--restart-backoff-ms" => {
                let ms: u64 = value.parse().map_err(|_| bad("backoff"))?;
                config.restart_backoff = Duration::from_millis(ms);
            }
            "--restart-backoff-max-ms" => {
                let ms: u64 = value.parse().map_err(|_| bad("backoff cap"))?;
                config.restart_backoff_max = Duration::from_millis(ms);
            }
            "--drain-timeout-ms" => {
                let ms: u64 = value.parse().map_err(|_| bad("timeout"))?;
                config.drain_timeout = Duration::from_millis(ms);
            }
            "--shard-arg" => config.shard_args.push(value.clone()),
            "--router-arg" => config.router_args.push(value.clone()),
            _ => return Err(format!("unknown flag '{flag}'\n{}", usage())),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match Supervisor::run(config) {
        Ok(RunOutcome::Drained) => ExitCode::SUCCESS,
        Ok(RunOutcome::DrainedWithKills) => {
            // The fleet is down either way, but a drain that needed
            // hard kills is worth a nonzero exit for scripts.
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("qcs-supervisor: {e}");
            ExitCode::FAILURE
        }
    }
}
