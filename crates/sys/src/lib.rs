//! `qcs-sys` — a thin, std-only shim over `poll(2)`.
//!
//! The serving tier's event loops need exactly one operating-system
//! primitive that `std` does not expose: *readiness multiplexing* — "tell
//! me which of these sockets can make progress, or wake me after a
//! timeout". This crate wraps the POSIX `poll(2)` system call behind a
//! safe API and nothing else, following the hermetic-crates precedent
//! (PR 1): no registry dependencies, one small surface, exhaustively
//! tested in-tree.
//!
//! Design choices, in the order they matter:
//!
//! * **`poll(2)`, not `epoll`/`kqueue`.** The daemon polls a few hundred
//!   descriptors per event-loop thread at most; `poll`'s `O(n)` scan is
//!   microseconds at that scale, and it is the one readiness call that
//!   is portable across every unix the workspace builds on.
//! * **Level-triggered.** A descriptor stays readable until drained, so
//!   a loop iteration that only partially consumes a socket's bytes
//!   simply sees it ready again on the next pass — no lost-wakeup
//!   hazards for the connection state machines upstream.
//! * **Safe wrapper, raw struct.** [`PollFd`] is `#[repr(C)]` and passed
//!   straight to the kernel; [`poll`] is the only `unsafe` block in the
//!   crate, and its invariants (valid slice, length in range) are
//!   enforced by the Rust types.
//!
//! Waking a parked `poll` from another thread needs no extra syscall
//! shim: the event loops register one end of a loopback socket pair and
//! the waker writes a byte to the other end (see `qcs-serve::event`).
//!
//! The supervisor additionally needs two tiny process primitives that
//! `std` hides: observing termination signals (`SIGTERM`/`SIGINT`) as a
//! pollable flag instead of the default kill-the-process disposition,
//! and sending a signal to a child it is draining. Both live here so
//! this crate stays the sole home of `unsafe`/FFI in the tree.

#![warn(missing_docs)]
#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Readable data is available (or a peer hang-up will be reported).
pub const POLLIN: i16 = 0x001;
/// Writing now would not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition on the descriptor (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Descriptor is not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set: a descriptor, the events the caller is
/// interested in, and the events the kernel reported back.
///
/// Layout matches `struct pollfd` exactly — the slice handed to
/// [`poll`] goes to the kernel unmodified.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// A poll entry asking for `events` (a bitmask of [`POLLIN`] /
    /// [`POLLOUT`]) on `fd`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The descriptor this entry watches.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// The events the kernel reported on the last [`poll`] call.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// True when the last poll reported the descriptor readable — which
    /// includes hang-up and error conditions, since the right response
    /// to both is a read that observes the EOF/error.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// True when the last poll reported the descriptor writable (or in
    /// an error state a write would surface).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR) != 0
    }

    /// True when the kernel flagged the entry invalid (closed fd).
    pub fn invalid(&self) -> bool {
        self.revents & POLLNVAL != 0
    }
}

// The kernel's nfds_t: unsigned long on Linux, unsigned int elsewhere.
#[cfg(target_os = "linux")]
type NFds = std::os::raw::c_ulong;
#[cfg(not(target_os = "linux"))]
type NFds = std::os::raw::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NFds, timeout: std::os::raw::c_int) -> std::os::raw::c_int;
}

/// Blocks until at least one entry in `fds` has a ready event, the
/// timeout elapses (`Ok(0)`), or a signal interrupts the wait (retried
/// internally). `None` waits forever; durations are rounded up to the
/// next millisecond so a nonzero timeout never busy-spins as zero.
///
/// Returns the number of entries with nonzero `revents`.
///
/// # Errors
///
/// The raw OS error from `poll(2)` — `EINTR` excepted, which retries
/// with the same timeout (the event loops recompute deadlines each
/// iteration anyway, so a marginally longer wait is harmless).
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let millis: std::os::raw::c_int = match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            // Round sub-millisecond timeouts up so "wait a little" never
            // degenerates into a busy loop.
            let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
            std::os::raw::c_int::try_from(ms).unwrap_or(std::os::raw::c_int::MAX)
        }
    };
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd structs and the length fits nfds_t.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, millis) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// `SIGINT` (interactive interrupt, Ctrl-C).
pub const SIGINT: i32 = 2;
/// `SIGTERM` (polite termination request).
pub const SIGTERM: i32 = 15;
/// `SIGKILL` (uncatchable; only meaningful with [`kill_process`]).
pub const SIGKILL: i32 = 9;

// Pending-signal bitmask: bit `n` set means signal number `n` arrived
// since the last [`take_signal`]. Async-signal-safe because the handler
// does exactly one atomic RMW and returns.
static PENDING_SIGNALS: AtomicU64 = AtomicU64::new(0);

type SigHandler = extern "C" fn(std::os::raw::c_int);

extern "C" {
    // `signal(2)` returns the previous handler as a function pointer; we
    // never inspect it, so model it as usize to avoid a fn-pointer cast.
    fn signal(signum: std::os::raw::c_int, handler: SigHandler) -> usize;
    fn kill(pid: std::os::raw::c_int, sig: std::os::raw::c_int) -> std::os::raw::c_int;
}

extern "C" fn note_signal(signum: std::os::raw::c_int) {
    if (0..64).contains(&signum) {
        PENDING_SIGNALS.fetch_or(1u64 << signum, Ordering::SeqCst);
    }
}

/// Replaces the disposition of `signum` (e.g. [`SIGTERM`]) with a
/// handler that records the arrival in a process-global pending mask,
/// readable via [`signal_pending`] / [`take_signal`]. Idempotent.
///
/// Only small positive signal numbers are accepted; out-of-range values
/// are ignored rather than handed to the kernel.
pub fn watch_signal(signum: i32) {
    if !(1..64).contains(&signum) {
        return;
    }
    // SAFETY: `note_signal` is async-signal-safe (single atomic op) and
    // has the exact `extern "C" fn(c_int)` signature `signal(2)` expects.
    unsafe {
        signal(signum, note_signal);
    }
}

/// True when `signum` has arrived since the last [`take_signal`] for it.
pub fn signal_pending(signum: i32) -> bool {
    if !(0..64).contains(&signum) {
        return false;
    }
    PENDING_SIGNALS.load(Ordering::SeqCst) & (1u64 << signum) != 0
}

/// Consumes a pending `signum`, returning whether it was pending.
pub fn take_signal(signum: i32) -> bool {
    if !(0..64).contains(&signum) {
        return false;
    }
    let bit = 1u64 << signum;
    PENDING_SIGNALS.fetch_and(!bit, Ordering::SeqCst) & bit != 0
}

/// Sends `sig` to process `pid` via `kill(2)`.
///
/// # Errors
///
/// The raw OS error (`ESRCH` for a vanished process, `EPERM`, …).
pub fn kill_process(pid: u32, sig: i32) -> io::Result<()> {
    let pid = std::os::raw::c_int::try_from(pid)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "pid out of range"))?;
    // SAFETY: plain syscall wrapper; any (pid, sig) pair is memory-safe,
    // the kernel validates semantics.
    let rc = unsafe { kill(pid, sig) };
    if rc == 0 {
        Ok(())
    } else {
        Err(io::Error::last_os_error())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    /// A connected loopback socket pair — the same construction the
    /// event loops use for their wakers.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn timeout_expires_with_no_ready_fds() {
        let (a, _b) = socket_pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let start = Instant::now();
        let n = poll_fds(&mut fds, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn written_byte_makes_peer_readable() {
        let (mut a, b) = socket_pair();
        a.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(!fds[0].invalid());
    }

    #[test]
    fn idle_socket_is_immediately_writable() {
        let (a, _b) = socket_pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable());
    }

    #[test]
    fn hangup_reports_readable_for_eof_observation() {
        let (a, b) = socket_pair();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "hang-up must surface as readable");
        // And the read indeed observes EOF.
        let mut buf = [0u8; 8];
        let mut a = a;
        assert_eq!(a.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn multiple_fds_report_independently() {
        let (mut a, b) = socket_pair();
        let (c, _d) = socket_pair();
        a.write_all(b"ping").unwrap();
        let mut fds = [
            PollFd::new(b.as_raw_fd(), POLLIN),
            PollFd::new(c.as_raw_fd(), POLLIN),
        ];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(!fds[1].readable());
    }

    #[test]
    fn empty_set_just_sleeps() {
        let start = Instant::now();
        let n = poll_fds(&mut [], Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn watched_signal_is_recorded_and_consumed_once() {
        // SIGUSR1 — harmless to the test harness, unlike TERM/INT.
        const SIGUSR1: i32 = 10;
        watch_signal(SIGUSR1);
        assert!(!signal_pending(SIGUSR1));
        kill_process(std::process::id(), SIGUSR1).unwrap();
        // Delivery is asynchronous; wait briefly for the handler to run.
        let start = Instant::now();
        while !signal_pending(SIGUSR1) {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "signal never delivered"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(take_signal(SIGUSR1), "first take consumes the signal");
        assert!(!take_signal(SIGUSR1), "second take sees nothing pending");
        assert!(!signal_pending(SIGUSR1));
    }

    #[test]
    fn out_of_range_signals_are_ignored() {
        watch_signal(-1);
        watch_signal(64);
        assert!(!signal_pending(-1));
        assert!(!signal_pending(64));
        assert!(!take_signal(999));
    }

    #[test]
    fn kill_vanished_process_reports_os_error() {
        // Signal 0 = existence probe; pid near the u32 max is unused.
        let err = kill_process(0x7FFF_FFFE, 0).unwrap_err();
        assert!(err.raw_os_error().is_some());
    }

    #[test]
    fn submillisecond_timeout_rounds_up_not_to_zero() {
        let (a, _b) = socket_pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        // Must behave as a (tiny) wait, not an instant return loop; the
        // assertion is just that it returns cleanly with nothing ready.
        let n = poll_fds(&mut fds, Some(Duration::from_micros(100))).unwrap();
        assert_eq!(n, 0);
    }
}
