//! `qcs-sys` — a thin, std-only shim over `poll(2)`.
//!
//! The serving tier's event loops need exactly one operating-system
//! primitive that `std` does not expose: *readiness multiplexing* — "tell
//! me which of these sockets can make progress, or wake me after a
//! timeout". This crate wraps the POSIX `poll(2)` system call behind a
//! safe API and nothing else, following the hermetic-crates precedent
//! (PR 1): no registry dependencies, one small surface, exhaustively
//! tested in-tree.
//!
//! Design choices, in the order they matter:
//!
//! * **`poll(2)`, not `epoll`/`kqueue`.** The daemon polls a few hundred
//!   descriptors per event-loop thread at most; `poll`'s `O(n)` scan is
//!   microseconds at that scale, and it is the one readiness call that
//!   is portable across every unix the workspace builds on.
//! * **Level-triggered.** A descriptor stays readable until drained, so
//!   a loop iteration that only partially consumes a socket's bytes
//!   simply sees it ready again on the next pass — no lost-wakeup
//!   hazards for the connection state machines upstream.
//! * **Safe wrapper, raw struct.** [`PollFd`] is `#[repr(C)]` and passed
//!   straight to the kernel; [`poll`] is the only `unsafe` block in the
//!   crate, and its invariants (valid slice, length in range) are
//!   enforced by the Rust types.
//!
//! Waking a parked `poll` from another thread needs no extra syscall
//! shim: the event loops register one end of a loopback socket pair and
//! the waker writes a byte to the other end (see `qcs-serve::event`).

#![warn(missing_docs)]
#![cfg(unix)]

use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// Readable data is available (or a peer hang-up will be reported).
pub const POLLIN: i16 = 0x001;
/// Writing now would not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition on the descriptor (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// Descriptor is not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set: a descriptor, the events the caller is
/// interested in, and the events the kernel reported back.
///
/// Layout matches `struct pollfd` exactly — the slice handed to
/// [`poll`] goes to the kernel unmodified.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// A poll entry asking for `events` (a bitmask of [`POLLIN`] /
    /// [`POLLOUT`]) on `fd`.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The descriptor this entry watches.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// The events the kernel reported on the last [`poll`] call.
    pub fn revents(&self) -> i16 {
        self.revents
    }

    /// True when the last poll reported the descriptor readable — which
    /// includes hang-up and error conditions, since the right response
    /// to both is a read that observes the EOF/error.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// True when the last poll reported the descriptor writable (or in
    /// an error state a write would surface).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR) != 0
    }

    /// True when the kernel flagged the entry invalid (closed fd).
    pub fn invalid(&self) -> bool {
        self.revents & POLLNVAL != 0
    }
}

// The kernel's nfds_t: unsigned long on Linux, unsigned int elsewhere.
#[cfg(target_os = "linux")]
type NFds = std::os::raw::c_ulong;
#[cfg(not(target_os = "linux"))]
type NFds = std::os::raw::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NFds, timeout: std::os::raw::c_int) -> std::os::raw::c_int;
}

/// Blocks until at least one entry in `fds` has a ready event, the
/// timeout elapses (`Ok(0)`), or a signal interrupts the wait (retried
/// internally). `None` waits forever; durations are rounded up to the
/// next millisecond so a nonzero timeout never busy-spins as zero.
///
/// Returns the number of entries with nonzero `revents`.
///
/// # Errors
///
/// The raw OS error from `poll(2)` — `EINTR` excepted, which retries
/// with the same timeout (the event loops recompute deadlines each
/// iteration anyway, so a marginally longer wait is harmless).
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let millis: std::os::raw::c_int = match timeout {
        None => -1,
        Some(d) => {
            let ms = d.as_millis();
            // Round sub-millisecond timeouts up so "wait a little" never
            // degenerates into a busy loop.
            let ms = if ms == 0 && !d.is_zero() { 1 } else { ms };
            std::os::raw::c_int::try_from(ms).unwrap_or(std::os::raw::c_int::MAX)
        }
    };
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd structs and the length fits nfds_t.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, millis) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    /// A connected loopback socket pair — the same construction the
    /// event loops use for their wakers.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn timeout_expires_with_no_ready_fds() {
        let (a, _b) = socket_pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let start = Instant::now();
        let n = poll_fds(&mut fds, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].readable());
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn written_byte_makes_peer_readable() {
        let (mut a, b) = socket_pair();
        a.write_all(b"x").unwrap();
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(!fds[0].invalid());
    }

    #[test]
    fn idle_socket_is_immediately_writable() {
        let (a, _b) = socket_pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLOUT)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].writable());
    }

    #[test]
    fn hangup_reports_readable_for_eof_observation() {
        let (a, b) = socket_pair();
        drop(b);
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable(), "hang-up must surface as readable");
        // And the read indeed observes EOF.
        let mut buf = [0u8; 8];
        let mut a = a;
        assert_eq!(a.read(&mut buf).unwrap(), 0);
    }

    #[test]
    fn multiple_fds_report_independently() {
        let (mut a, b) = socket_pair();
        let (c, _d) = socket_pair();
        a.write_all(b"ping").unwrap();
        let mut fds = [
            PollFd::new(b.as_raw_fd(), POLLIN),
            PollFd::new(c.as_raw_fd(), POLLIN),
        ];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].readable());
        assert!(!fds[1].readable());
    }

    #[test]
    fn empty_set_just_sleeps() {
        let start = Instant::now();
        let n = poll_fds(&mut [], Some(Duration::from_millis(20))).unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn submillisecond_timeout_rounds_up_not_to_zero() {
        let (a, _b) = socket_pair();
        let mut fds = [PollFd::new(a.as_raw_fd(), POLLIN)];
        // Must behave as a (tiny) wait, not an instant return loop; the
        // assertion is just that it returns cleanly with nothing ready.
        let n = poll_fds(&mut fds, Some(Duration::from_micros(100))).unwrap();
        assert_eq!(n, 0);
    }
}
