//! The [`Device`] model: what the compiler knows about a quantum chip.

use std::collections::VecDeque;

use qcs_circuit::decompose::GateSet;
use qcs_graph::paths::{is_connected, UNREACHABLE};
use qcs_graph::Graph;
use qcs_json::{FromJson, Json, JsonError, ToJson};

use crate::error::{Calibration, GateFidelities};
use crate::health::DeviceHealth;

/// Error raised when constructing an inconsistent device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The coupling graph is disconnected, so some qubit pairs could never
    /// be routed together.
    Disconnected,
    /// The primitive gate set has no two-qubit entangler.
    NoEntangler,
    /// The calibration covers a different number of qubits than the
    /// coupling graph.
    CalibrationMismatch {
        /// Qubits in the coupling graph.
        coupling: usize,
        /// Qubits in the calibration.
        calibration: usize,
    },
    /// A health overlay names a qubit the device does not have.
    HealthQubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// Qubits on the device.
        qubits: usize,
    },
    /// A health overlay names a coupler the coupling graph does not have.
    HealthUnknownCoupler {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
    /// A health overlay would disable every qubit on the device.
    AllQubitsDisabled,
    /// The device would have no qubits at all (e.g. a zero-dimension
    /// site grid).
    EmptyRegister,
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Disconnected => write!(f, "device coupling graph is disconnected"),
            DeviceError::NoEntangler => {
                write!(f, "device gate set lacks a two-qubit entangling primitive")
            }
            DeviceError::CalibrationMismatch {
                coupling,
                calibration,
            } => write!(
                f,
                "calibration covers {calibration} qubits but coupling graph has {coupling}"
            ),
            DeviceError::HealthQubitOutOfRange { qubit, qubits } => write!(
                f,
                "health overlay names qubit {qubit} but device has only {qubits} qubits"
            ),
            DeviceError::HealthUnknownCoupler { u, v } => {
                write!(
                    f,
                    "health overlay names coupler ({u}, {v}) which does not exist"
                )
            }
            DeviceError::AllQubitsDisabled => {
                write!(f, "health overlay disables every qubit on the device")
            }
            DeviceError::EmptyRegister => write!(f, "device would have no qubits"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// A quantum processor model: named coupling graph, primitive gate set and
/// calibration, with precomputed all-pairs hop distances.
///
/// This is the bottom-of-stack information package that hardware-aware
/// compilation consumes. A device also carries a [`DeviceHealth`] outage
/// overlay (pristine by default): adjacency queries, neighbour lists and
/// the distance cache all respect it, so everything upstream — placement,
/// routing, scheduling — automatically avoids out-of-service resources.
/// Apply an overlay with [`Device::degrade`].
///
/// # Examples
///
/// ```
/// use qcs_topology::device::Device;
/// use qcs_circuit::decompose::GateSet;
/// use qcs_graph::generate;
///
/// let dev = Device::new(
///     "line5",
///     generate::path_graph(5),
///     GateSet::ibm_style(),
/// )?;
/// assert_eq!(dev.distance(0, 4), 4);
/// assert_eq!(dev.coupler_count(), 4);
/// # Ok::<(), qcs_topology::device::DeviceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    name: String,
    coupling: Graph,
    gate_set: GateSet,
    calibration: Calibration,
    health: DeviceHealth,
    /// Per-qubit neighbour lists over the *healthy* subgraph (the raw
    /// coupling lists when the overlay is pristine). Disabled qubits get
    /// empty lists.
    adjacency: Vec<Vec<usize>>,
    /// Precomputed hop distances over the healthy subgraph, stored
    /// row-major (`distances[u * n + v]`) so the routing hot loop reads
    /// one flat cache-friendly allocation instead of chasing a `Vec` per
    /// row. Entries are [`UNREACHABLE`] between different components of
    /// a degraded device (a pristine device is always fully reachable —
    /// construction rejects disconnected coupling graphs).
    distances: Box<[usize]>,
}

/// Neighbour lists filtered through the health overlay.
fn healthy_adjacency(coupling: &Graph, health: &DeviceHealth) -> Vec<Vec<usize>> {
    (0..coupling.node_count())
        .map(|u| {
            if health.is_qubit_disabled(u) {
                return Vec::new();
            }
            coupling
                .neighbors(u)
                .iter()
                .copied()
                .filter(|&v| !health.blocks_coupler(u, v))
                .collect()
        })
        .collect()
}

/// All-pairs BFS hop counts over filtered adjacency lists, flattened
/// row-major; rows of disabled qubits stay all-[`UNREACHABLE`].
fn healthy_distances(adjacency: &[Vec<usize>], health: &DeviceHealth) -> Box<[usize]> {
    let n = adjacency.len();
    let mut all = vec![UNREACHABLE; n * n];
    let mut queue = VecDeque::new();
    for (start, row) in all.chunks_exact_mut(n).enumerate() {
        if health.is_qubit_disabled(start) {
            continue;
        }
        row[start] = 0;
        queue.clear();
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in &adjacency[u] {
                if row[v] == UNREACHABLE {
                    row[v] = row[u] + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    all.into_boxed_slice()
}

impl Device {
    /// Creates a device with uniform (class-average) calibration.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Disconnected`] for disconnected coupling
    /// graphs and [`DeviceError::NoEntangler`] for gate sets without a
    /// two-qubit primitive.
    pub fn new(
        name: impl Into<String>,
        coupling: Graph,
        gate_set: GateSet,
    ) -> Result<Self, DeviceError> {
        let calibration = Calibration::uniform(&coupling, GateFidelities::default());
        Device::with_calibration(name, coupling, gate_set, calibration)
    }

    /// Creates a device with explicit calibration.
    ///
    /// # Errors
    ///
    /// As [`Device::new`], plus [`DeviceError::CalibrationMismatch`] when
    /// the calibration width differs from the coupling graph.
    pub fn with_calibration(
        name: impl Into<String>,
        coupling: Graph,
        gate_set: GateSet,
        calibration: Calibration,
    ) -> Result<Self, DeviceError> {
        Device::build(
            name.into(),
            coupling,
            gate_set,
            calibration,
            DeviceHealth::new(),
        )
    }

    /// Shared constructor: validates every invariant, then precomputes
    /// the health-filtered adjacency lists and distance cache.
    fn build(
        name: String,
        coupling: Graph,
        gate_set: GateSet,
        calibration: Calibration,
        health: DeviceHealth,
    ) -> Result<Self, DeviceError> {
        if !is_connected(&coupling) || coupling.node_count() == 0 {
            return Err(DeviceError::Disconnected);
        }
        if !gate_set.has_entangler() {
            return Err(DeviceError::NoEntangler);
        }
        if calibration.qubit_count() != coupling.node_count() {
            return Err(DeviceError::CalibrationMismatch {
                coupling: coupling.node_count(),
                calibration: calibration.qubit_count(),
            });
        }
        Device::validate_health(&coupling, &health)?;
        let adjacency = healthy_adjacency(&coupling, &health);
        let distances = healthy_distances(&adjacency, &health);
        Ok(Device {
            name,
            coupling,
            gate_set,
            calibration,
            health,
            adjacency,
            distances,
        })
    }

    /// Checks an overlay against a coupling graph: indices in range,
    /// couplers real, at least one qubit left alive.
    fn validate_health(coupling: &Graph, health: &DeviceHealth) -> Result<(), DeviceError> {
        let n = coupling.node_count();
        if let Some(max) = health.max_index() {
            if max >= n {
                return Err(DeviceError::HealthQubitOutOfRange {
                    qubit: max,
                    qubits: n,
                });
            }
        }
        for (u, v) in health.disabled_couplers() {
            if !coupling.has_edge(u, v) {
                return Err(DeviceError::HealthUnknownCoupler { u, v });
            }
        }
        for ((u, v), _) in health.coupler_error_overrides() {
            if !coupling.has_edge(u, v) {
                return Err(DeviceError::HealthUnknownCoupler { u, v });
            }
        }
        if health.disabled_qubit_count() >= n {
            return Err(DeviceError::AllQubitsDisabled);
        }
        Ok(())
    }

    /// Applies an outage overlay, returning a degraded copy of this
    /// device: disabled resources vanish from adjacency and neighbour
    /// queries, the distance cache is recomputed over the healthy
    /// subgraph (cross-component pairs become `UNREACHABLE`), and
    /// error-rate overrides are folded into the calibration. Overlays
    /// compose: degrading an already-degraded device merges the new
    /// overlay into the existing one.
    ///
    /// The result is renamed `{base}@{digest}` (digest of the merged
    /// overlay), so degraded devices are distinguishable — and cacheable
    /// — by name.
    ///
    /// # Errors
    ///
    /// [`DeviceError::HealthQubitOutOfRange`] /
    /// [`DeviceError::HealthUnknownCoupler`] for overlays that do not fit
    /// this device, and [`DeviceError::AllQubitsDisabled`] when nothing
    /// would remain in service.
    pub fn degrade(&self, overlay: &DeviceHealth) -> Result<Device, DeviceError> {
        Device::validate_health(&self.coupling, overlay)?;
        let merged = self.health.merged(overlay);
        let base = self.name.split('@').next().unwrap_or(&self.name);
        let name = if merged.is_empty() {
            base.to_string()
        } else {
            format!("{base}@{digest:08x}", digest = merged.digest())
        };
        let mut calibration = self.calibration.clone();
        for ((u, v), error) in overlay.coupler_error_overrides() {
            calibration.set_two_qubit_fidelity(u, v, 1.0 - error);
        }
        Device::build(
            name,
            self.coupling.clone(),
            self.gate_set.clone(),
            calibration,
            merged,
        )
    }

    /// The device's name. Degraded devices carry an `@{digest}` suffix
    /// identifying their outage overlay.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits (including out-of-service ones).
    pub fn qubit_count(&self) -> usize {
        self.coupling.node_count()
    }

    /// Number of couplers (edges in the coupling graph, including
    /// out-of-service ones).
    pub fn coupler_count(&self) -> usize {
        self.coupling.edge_count()
    }

    /// The full coupling graph (health overlay *not* applied; use
    /// [`Device::neighbors`] / [`Device::are_adjacent`] for health-aware
    /// queries).
    pub fn coupling(&self) -> &Graph {
        &self.coupling
    }

    /// The primitive gate set.
    pub fn gate_set(&self) -> &GateSet {
        &self.gate_set
    }

    /// The calibration data.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// Mutable calibration access (failure injection, recalibration).
    pub fn calibration_mut(&mut self) -> &mut Calibration {
        &mut self.calibration
    }

    /// The outage overlay currently applied (pristine by default).
    pub fn health(&self) -> &DeviceHealth {
        &self.health
    }

    /// Whether physical qubit `q` is in service.
    pub fn is_qubit_active(&self, q: usize) -> bool {
        !self.health.is_qubit_disabled(q)
    }

    /// Number of in-service qubits.
    pub fn active_qubit_count(&self) -> usize {
        self.qubit_count() - self.health.disabled_qubit_count()
    }

    /// In-service qubits, ascending.
    pub fn active_qubits(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.qubit_count()).filter(move |&q| self.is_qubit_active(q))
    }

    /// Whether physical qubits `u` and `v` share a *usable* coupler
    /// (i.e. the coupler exists and neither it nor an endpoint is out of
    /// service). A single lookup in the precomputed healthy-subgraph
    /// distance matrix: hop distance 1 is exactly a usable coupler.
    #[inline]
    pub fn are_adjacent(&self, u: usize, v: usize) -> bool {
        self.distance(u, v) == 1
    }

    /// Hop distance between physical qubits over the healthy subgraph.
    /// Returns [`UNREACHABLE`] when no healthy path exists (only
    /// possible on degraded devices).
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range.
    #[inline]
    pub fn distance(&self, u: usize, v: usize) -> usize {
        self.distances[u * self.qubit_count() + v]
    }

    /// The hop-distance row of qubit `u`: `distance_row(u)[v]` equals
    /// [`Device::distance`]`(u, v)`. One bounds check buys a whole row —
    /// the routing kernels hold rows across their inner loops.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn distance_row(&self, u: usize) -> &[usize] {
        let n = self.qubit_count();
        &self.distances[u * n..(u + 1) * n]
    }

    /// In-service physical neighbours of qubit `u` (empty for disabled
    /// qubits).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        &self.adjacency[u]
    }

    /// Average hop distance over all mutually reachable qubit pairs (a
    /// compactness figure of merit for comparing topologies).
    pub fn average_distance(&self) -> f64 {
        let n = self.qubit_count();
        let mut sum = 0usize;
        let mut pairs = 0usize;
        for u in 0..n {
            for v in (u + 1)..n {
                let d = self.distances[u * n + v];
                if d != UNREACHABLE {
                    sum += d;
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            return 0.0;
        }
        sum as f64 / pairs as f64
    }

    /// Device diameter: the largest hop distance between any mutually
    /// reachable qubit pair.
    pub fn diameter(&self) -> usize {
        self.distances
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }

    /// Read-only view of the precomputed all-pairs hop-distance matrix,
    /// flattened row-major: `distances()[u * qubit_count() + v]` = hops
    /// between physical qubits `u` and `v` over the healthy subgraph
    /// ([`UNREACHABLE`] across components of a degraded device).
    pub fn distances(&self) -> &[usize] {
        &self.distances
    }

    /// A shortest path `from → to` (inclusive) over the healthy
    /// subgraph, reconstructed from the precomputed distance matrix
    /// instead of a per-call BFS: each hop goes to the first neighbour
    /// strictly closer to `to`, costing O(path length × degree) and
    /// allocating only the result.
    ///
    /// Deterministic: neighbour order is fixed by the coupling graph, so
    /// every call (from any thread) returns the same path.
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range, or if `to` is unreachable
    /// from `from` on a degraded device — check
    /// [`Device::distance`]` != UNREACHABLE` first.
    pub fn shortest_path(&self, from: usize, to: usize) -> Vec<usize> {
        let n = self.qubit_count();
        assert!(
            self.distances[from * n + to] != UNREACHABLE,
            "no healthy path from {from} to {to}"
        );
        let mut path = Vec::with_capacity(self.distances[from * n + to] + 1);
        path.push(from);
        let mut cur = from;
        while cur != to {
            let next = self.adjacency[cur]
                .iter()
                .copied()
                .find(|&w| self.distances[w * n + to] + 1 == self.distances[cur * n + to])
                .expect("reachable target always has a closer neighbour");
            path.push(next);
            cur = next;
        }
        path
    }
}

impl ToJson for Device {
    /// The distance matrix and adjacency lists are derived state and are
    /// not serialized; they are recomputed on deserialization. The
    /// health overlay is serialized only when non-pristine.
    fn to_json(&self) -> Json {
        let mut members = vec![
            ("name", Json::from(self.name.as_str())),
            ("coupling", self.coupling.to_json()),
            ("gate_set", self.gate_set.to_json()),
            ("calibration", self.calibration.to_json()),
        ];
        if !self.health.is_empty() {
            members.push(("health", self.health.to_json()));
        }
        Json::object(members)
    }
}

impl FromJson for Device {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let name: String = qcs_json::field(json, "name")?;
        let coupling: Graph = qcs_json::field(json, "coupling")?;
        let gate_set: GateSet = qcs_json::field(json, "gate_set")?;
        let calibration: Calibration = qcs_json::field(json, "calibration")?;
        let health = match json.get("health") {
            Some(value) => DeviceHealth::from_json(value)?,
            None => DeviceHealth::new(),
        };
        Device::build(name, coupling, gate_set, calibration, health).map_err(|_| {
            JsonError::Type {
                expected: "consistent device (connected coupling, entangler, matching calibration, valid health)",
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_graph::generate;

    fn line(n: usize) -> Device {
        Device::new(
            format!("line{n}"),
            generate::path_graph(n),
            GateSet::ibm_style(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_disconnected() {
        let mut g = generate::path_graph(3);
        g.add_node();
        assert_eq!(
            Device::new("bad", g, GateSet::ibm_style()).unwrap_err(),
            DeviceError::Disconnected
        );
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Device::new("empty", Graph::new(), GateSet::ibm_style()).unwrap_err(),
            DeviceError::Disconnected
        );
    }

    #[test]
    fn rejects_no_entangler() {
        use qcs_circuit::gate::GateKind;
        let set = GateSet::new([GateKind::Rx, GateKind::Rz]);
        assert_eq!(
            Device::new("bad", generate::path_graph(2), set).unwrap_err(),
            DeviceError::NoEntangler
        );
    }

    #[test]
    fn rejects_calibration_mismatch() {
        let g3 = generate::path_graph(3);
        let g4 = generate::path_graph(4);
        let cal = Calibration::uniform(&g4, GateFidelities::default());
        assert!(matches!(
            Device::with_calibration("bad", g3, GateSet::ibm_style(), cal),
            Err(DeviceError::CalibrationMismatch {
                coupling: 3,
                calibration: 4
            })
        ));
    }

    #[test]
    fn distances_precomputed() {
        let dev = line(5);
        assert_eq!(dev.distance(0, 4), 4);
        assert_eq!(dev.distance(2, 2), 0);
        assert_eq!(dev.diameter(), 4);
        // Average over pairs of a path of 5: sum of hop distances = 20? Let
        // us verify: pairs (d=1)×4, (d=2)×3, (d=3)×2, (d=4)×1 → 4+6+6+4=20,
        // 10 pairs → 2.0.
        assert!((dev.average_distance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn adjacency_queries() {
        let dev = line(4);
        assert!(dev.are_adjacent(1, 2));
        assert!(!dev.are_adjacent(0, 3));
        assert_eq!(dev.neighbors(1), &[0, 2]);
        assert_eq!(dev.coupler_count(), 3);
    }

    #[test]
    fn calibration_hookup() {
        let mut dev = line(3);
        assert_eq!(dev.calibration().two_qubit_fidelity(0, 1), Some(0.99));
        dev.calibration_mut().set_two_qubit_fidelity(0, 1, 0.8);
        assert_eq!(dev.calibration().two_qubit_fidelity(0, 1), Some(0.8));
    }

    #[test]
    fn json_round_trip() {
        let dev = line(4);
        let json = dev.to_json().to_string_pretty();
        let back = Device::from_json(&qcs_json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, dev);
    }

    #[test]
    fn degrade_disables_coupler_and_reroutes_distances() {
        // Ring of 6: cutting coupler (0, 5) makes 0→5 go the long way.
        let dev = Device::new("ring6", generate::ring_graph(6), GateSet::ibm_style()).unwrap();
        assert_eq!(dev.distance(0, 5), 1);
        let degraded = dev
            .degrade(&DeviceHealth::new().disable_coupler(0, 5))
            .unwrap();
        assert_eq!(degraded.distance(0, 5), 5);
        assert!(!degraded.are_adjacent(0, 5));
        assert!(!degraded.neighbors(0).contains(&5));
        assert!(degraded.neighbors(0).contains(&1));
        assert_eq!(degraded.active_qubit_count(), 6);
        // The shortest path takes the healthy way around.
        assert_eq!(degraded.shortest_path(0, 5), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn degrade_disables_qubit_and_splits_components() {
        // Path of 5: losing qubit 2 splits {0, 1} from {3, 4}.
        let dev = line(5);
        let degraded = dev.degrade(&DeviceHealth::new().disable_qubit(2)).unwrap();
        assert_eq!(degraded.active_qubit_count(), 4);
        assert!(!degraded.is_qubit_active(2));
        assert!(degraded.neighbors(2).is_empty());
        assert!(!degraded.neighbors(1).contains(&2));
        assert_eq!(degraded.distance(0, 1), 1);
        assert_eq!(degraded.distance(0, 3), UNREACHABLE);
        assert_eq!(degraded.distance(2, 2), UNREACHABLE);
        assert_eq!(degraded.diameter(), 1);
        assert_eq!(
            degraded.active_qubits().collect::<Vec<_>>(),
            vec![0, 1, 3, 4]
        );
    }

    #[test]
    fn degrade_applies_error_overrides_to_calibration() {
        let dev = line(3);
        let degraded = dev
            .degrade(&DeviceHealth::new().override_coupler_error(0, 1, 0.2))
            .unwrap();
        let fidelity = degraded.calibration().two_qubit_fidelity(0, 1).unwrap();
        assert!((fidelity - 0.8).abs() < 1e-12);
        // The coupler still works; only its quality changed.
        assert!(degraded.are_adjacent(0, 1));
    }

    #[test]
    fn degrade_renames_deterministically_and_composes() {
        let dev = line(5);
        let overlay = DeviceHealth::new().disable_qubit(4);
        let a = dev.degrade(&overlay).unwrap();
        let b = dev.degrade(&overlay).unwrap();
        assert_eq!(a.name(), b.name());
        assert_ne!(a.name(), dev.name());
        assert!(a.name().starts_with("line5@"));
        // Degrading again merges overlays and re-derives the name from
        // the base, not the already-suffixed name.
        let c = a.degrade(&DeviceHealth::new().disable_qubit(3)).unwrap();
        assert!(c.name().starts_with("line5@"));
        assert_eq!(c.active_qubit_count(), 3);
        assert!(!c.is_qubit_active(3) && !c.is_qubit_active(4));
    }

    #[test]
    fn degrade_rejects_bad_overlays() {
        let dev = line(3);
        assert_eq!(
            dev.degrade(&DeviceHealth::new().disable_qubit(7))
                .unwrap_err(),
            DeviceError::HealthQubitOutOfRange {
                qubit: 7,
                qubits: 3
            }
        );
        assert_eq!(
            dev.degrade(&DeviceHealth::new().disable_coupler(0, 2))
                .unwrap_err(),
            DeviceError::HealthUnknownCoupler { u: 0, v: 2 }
        );
        let all = DeviceHealth::new()
            .disable_qubit(0)
            .disable_qubit(1)
            .disable_qubit(2);
        assert_eq!(
            dev.degrade(&all).unwrap_err(),
            DeviceError::AllQubitsDisabled
        );
    }

    #[test]
    fn degraded_json_round_trip_preserves_health() {
        let dev = line(5);
        let degraded = dev
            .degrade(
                &DeviceHealth::new()
                    .disable_qubit(4)
                    .disable_coupler(0, 1)
                    .override_coupler_error(1, 2, 0.1),
            )
            .unwrap();
        let json = degraded.to_json().to_compact_string();
        let back = Device::from_json(&qcs_json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, degraded);
        assert_eq!(back.distance(0, 1), UNREACHABLE, "qubit 0 is cut off");
        assert!(!back.are_adjacent(0, 1));
    }
}
