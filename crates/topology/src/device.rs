//! The [`Device`] model: what the compiler knows about a quantum chip.

use qcs_circuit::decompose::GateSet;
use qcs_graph::paths::{all_pairs_hopcount, is_connected, UNREACHABLE};
use qcs_graph::Graph;
use qcs_json::{FromJson, Json, JsonError, ToJson};

use crate::error::{Calibration, GateFidelities};

/// Error raised when constructing an inconsistent device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The coupling graph is disconnected, so some qubit pairs could never
    /// be routed together.
    Disconnected,
    /// The primitive gate set has no two-qubit entangler.
    NoEntangler,
    /// The calibration covers a different number of qubits than the
    /// coupling graph.
    CalibrationMismatch {
        /// Qubits in the coupling graph.
        coupling: usize,
        /// Qubits in the calibration.
        calibration: usize,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Disconnected => write!(f, "device coupling graph is disconnected"),
            DeviceError::NoEntangler => {
                write!(f, "device gate set lacks a two-qubit entangling primitive")
            }
            DeviceError::CalibrationMismatch {
                coupling,
                calibration,
            } => write!(
                f,
                "calibration covers {calibration} qubits but coupling graph has {coupling}"
            ),
        }
    }
}

impl std::error::Error for DeviceError {}

/// A quantum processor model: named coupling graph, primitive gate set and
/// calibration, with precomputed all-pairs hop distances.
///
/// This is the bottom-of-stack information package that hardware-aware
/// compilation consumes.
///
/// # Examples
///
/// ```
/// use qcs_topology::device::Device;
/// use qcs_circuit::decompose::GateSet;
/// use qcs_graph::generate;
///
/// let dev = Device::new(
///     "line5",
///     generate::path_graph(5),
///     GateSet::ibm_style(),
/// )?;
/// assert_eq!(dev.distance(0, 4), 4);
/// assert_eq!(dev.coupler_count(), 4);
/// # Ok::<(), qcs_topology::device::DeviceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    name: String,
    coupling: Graph,
    gate_set: GateSet,
    calibration: Calibration,
    /// Precomputed hop distances (`usize::MAX` would mean unreachable, but
    /// construction rejects disconnected graphs).
    distances: Vec<Vec<usize>>,
}

impl Device {
    /// Creates a device with uniform (class-average) calibration.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Disconnected`] for disconnected coupling
    /// graphs and [`DeviceError::NoEntangler`] for gate sets without a
    /// two-qubit primitive.
    pub fn new(
        name: impl Into<String>,
        coupling: Graph,
        gate_set: GateSet,
    ) -> Result<Self, DeviceError> {
        let calibration = Calibration::uniform(&coupling, GateFidelities::default());
        Device::with_calibration(name, coupling, gate_set, calibration)
    }

    /// Creates a device with explicit calibration.
    ///
    /// # Errors
    ///
    /// As [`Device::new`], plus [`DeviceError::CalibrationMismatch`] when
    /// the calibration width differs from the coupling graph.
    pub fn with_calibration(
        name: impl Into<String>,
        coupling: Graph,
        gate_set: GateSet,
        calibration: Calibration,
    ) -> Result<Self, DeviceError> {
        if !is_connected(&coupling) || coupling.node_count() == 0 {
            return Err(DeviceError::Disconnected);
        }
        if !gate_set.has_entangler() {
            return Err(DeviceError::NoEntangler);
        }
        if calibration.qubit_count() != coupling.node_count() {
            return Err(DeviceError::CalibrationMismatch {
                coupling: coupling.node_count(),
                calibration: calibration.qubit_count(),
            });
        }
        let distances = all_pairs_hopcount(&coupling);
        debug_assert!(distances
            .iter()
            .all(|row| row.iter().all(|&d| d != UNREACHABLE)));
        Ok(Device {
            name: name.into(),
            coupling,
            gate_set,
            calibration,
            distances,
        })
    }

    /// The device's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of physical qubits.
    pub fn qubit_count(&self) -> usize {
        self.coupling.node_count()
    }

    /// Number of couplers (edges in the coupling graph).
    pub fn coupler_count(&self) -> usize {
        self.coupling.edge_count()
    }

    /// The coupling graph.
    pub fn coupling(&self) -> &Graph {
        &self.coupling
    }

    /// The primitive gate set.
    pub fn gate_set(&self) -> &GateSet {
        &self.gate_set
    }

    /// The calibration data.
    pub fn calibration(&self) -> &Calibration {
        &self.calibration
    }

    /// Mutable calibration access (failure injection, recalibration).
    pub fn calibration_mut(&mut self) -> &mut Calibration {
        &mut self.calibration
    }

    /// Whether physical qubits `u` and `v` share a coupler.
    pub fn are_adjacent(&self, u: usize, v: usize) -> bool {
        self.coupling.has_edge(u, v)
    }

    /// Hop distance between physical qubits.
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range.
    pub fn distance(&self, u: usize, v: usize) -> usize {
        self.distances[u][v]
    }

    /// Physical neighbours of qubit `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn neighbors(&self, u: usize) -> &[usize] {
        self.coupling.neighbors(u)
    }

    /// Average hop distance over all qubit pairs (a compactness figure of
    /// merit for comparing topologies).
    pub fn average_distance(&self) -> f64 {
        let n = self.qubit_count();
        if n < 2 {
            return 0.0;
        }
        let mut sum = 0usize;
        let mut pairs = 0usize;
        for u in 0..n {
            for v in (u + 1)..n {
                sum += self.distances[u][v];
                pairs += 1;
            }
        }
        sum as f64 / pairs as f64
    }

    /// Device diameter: the largest hop distance between any qubit pair.
    pub fn diameter(&self) -> usize {
        self.distances
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Read-only view of the precomputed all-pairs hop-distance matrix
    /// (`distances()[u][v]` = hops between physical qubits `u` and `v`).
    pub fn distances(&self) -> &[Vec<usize>] {
        &self.distances
    }

    /// A shortest path `from → to` (inclusive), reconstructed from the
    /// precomputed distance matrix instead of a per-call BFS: each hop
    /// goes to the first neighbour strictly closer to `to`, costing
    /// O(path length × degree) and allocating only the result.
    ///
    /// Deterministic: neighbour order is fixed by the coupling graph, so
    /// every call (from any thread) returns the same path.
    ///
    /// # Panics
    ///
    /// Panics if either qubit is out of range.
    pub fn shortest_path(&self, from: usize, to: usize) -> Vec<usize> {
        let mut path = Vec::with_capacity(self.distances[from][to] + 1);
        path.push(from);
        let mut cur = from;
        while cur != to {
            let next = self
                .coupling
                .neighbors(cur)
                .iter()
                .copied()
                .find(|&w| self.distances[w][to] + 1 == self.distances[cur][to])
                .expect("connected device always has a closer neighbour");
            path.push(next);
            cur = next;
        }
        path
    }
}

impl ToJson for Device {
    /// The distance matrix is derived state and is not serialized; it is
    /// recomputed on deserialization.
    fn to_json(&self) -> Json {
        Json::object([
            ("name", Json::from(self.name.as_str())),
            ("coupling", self.coupling.to_json()),
            ("gate_set", self.gate_set.to_json()),
            ("calibration", self.calibration.to_json()),
        ])
    }
}

impl FromJson for Device {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let name: String = qcs_json::field(json, "name")?;
        let coupling: Graph = qcs_json::field(json, "coupling")?;
        let gate_set: GateSet = qcs_json::field(json, "gate_set")?;
        let calibration: Calibration = qcs_json::field(json, "calibration")?;
        Device::with_calibration(name, coupling, gate_set, calibration).map_err(|_| {
            JsonError::Type {
                expected: "consistent device (connected coupling, entangler, matching calibration)",
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_graph::generate;

    fn line(n: usize) -> Device {
        Device::new(
            format!("line{n}"),
            generate::path_graph(n),
            GateSet::ibm_style(),
        )
        .unwrap()
    }

    #[test]
    fn rejects_disconnected() {
        let mut g = generate::path_graph(3);
        g.add_node();
        assert_eq!(
            Device::new("bad", g, GateSet::ibm_style()).unwrap_err(),
            DeviceError::Disconnected
        );
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Device::new("empty", Graph::new(), GateSet::ibm_style()).unwrap_err(),
            DeviceError::Disconnected
        );
    }

    #[test]
    fn rejects_no_entangler() {
        use qcs_circuit::gate::GateKind;
        let set = GateSet::new([GateKind::Rx, GateKind::Rz]);
        assert_eq!(
            Device::new("bad", generate::path_graph(2), set).unwrap_err(),
            DeviceError::NoEntangler
        );
    }

    #[test]
    fn rejects_calibration_mismatch() {
        let g3 = generate::path_graph(3);
        let g4 = generate::path_graph(4);
        let cal = Calibration::uniform(&g4, GateFidelities::default());
        assert!(matches!(
            Device::with_calibration("bad", g3, GateSet::ibm_style(), cal),
            Err(DeviceError::CalibrationMismatch {
                coupling: 3,
                calibration: 4
            })
        ));
    }

    #[test]
    fn distances_precomputed() {
        let dev = line(5);
        assert_eq!(dev.distance(0, 4), 4);
        assert_eq!(dev.distance(2, 2), 0);
        assert_eq!(dev.diameter(), 4);
        // Average over pairs of a path of 5: sum of hop distances = 20? Let
        // us verify: pairs (d=1)×4, (d=2)×3, (d=3)×2, (d=4)×1 → 4+6+6+4=20,
        // 10 pairs → 2.0.
        assert!((dev.average_distance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn adjacency_queries() {
        let dev = line(4);
        assert!(dev.are_adjacent(1, 2));
        assert!(!dev.are_adjacent(0, 3));
        assert_eq!(dev.neighbors(1), &[0, 2]);
        assert_eq!(dev.coupler_count(), 3);
    }

    #[test]
    fn calibration_hookup() {
        let mut dev = line(3);
        assert_eq!(dev.calibration().two_qubit_fidelity(0, 1), Some(0.99));
        dev.calibration_mut().set_two_qubit_fidelity(0, 1, 0.8);
        assert_eq!(dev.calibration().two_qubit_fidelity(0, 1), Some(0.8));
    }

    #[test]
    fn json_round_trip() {
        let dev = line(4);
        let json = dev.to_json().to_string_pretty();
        let back = Device::from_json(&qcs_json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, dev);
    }
}
