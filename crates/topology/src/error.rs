//! Gate error rates, durations, coherence times and per-element
//! calibration.
//!
//! Default numbers follow the superconducting surface-code platform of
//! Versluis et al. \[32\] (the error-rate source cited for Fig. 3 of the
//! paper): ~0.1 % single-qubit gate error, ~1 % CZ error, ~0.5 % readout
//! error, 20 ns single-qubit and 40 ns two-qubit gates.

use std::collections::BTreeMap;

use qcs_graph::Graph;
use qcs_json::{FromJson, Json, JsonError, ToJson};

/// Average gate fidelities of a device class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateFidelities {
    /// Single-qubit gate fidelity in `(0, 1]`.
    pub single_qubit: f64,
    /// Two-qubit gate fidelity in `(0, 1]`.
    pub two_qubit: f64,
    /// Measurement fidelity in `(0, 1]`.
    pub measurement: f64,
}

impl GateFidelities {
    /// The Versluis et al. \[32\] defaults: 99.9 % / 99.0 % / 99.5 %.
    pub fn surface_code_defaults() -> Self {
        GateFidelities {
            single_qubit: 0.999,
            two_qubit: 0.99,
            measurement: 0.995,
        }
    }

    /// A perfect (noise-free) device, useful for isolating overhead
    /// effects in tests.
    pub fn perfect() -> Self {
        GateFidelities {
            single_qubit: 1.0,
            two_qubit: 1.0,
            measurement: 1.0,
        }
    }
}

impl Default for GateFidelities {
    fn default() -> Self {
        Self::surface_code_defaults()
    }
}

/// Gate durations in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateDurations {
    /// Single-qubit gate duration (ns).
    pub single_qubit_ns: f64,
    /// Two-qubit gate duration (ns).
    pub two_qubit_ns: f64,
    /// Measurement duration (ns).
    pub measurement_ns: f64,
}

impl GateDurations {
    /// Transmon defaults: 20 ns single-qubit, 40 ns CZ, 300 ns readout.
    pub fn surface_code_defaults() -> Self {
        GateDurations {
            single_qubit_ns: 20.0,
            two_qubit_ns: 40.0,
            measurement_ns: 300.0,
        }
    }
}

impl Default for GateDurations {
    fn default() -> Self {
        Self::surface_code_defaults()
    }
}

/// Qubit coherence times in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceTimes {
    /// Energy-relaxation time T1 (ns).
    pub t1_ns: f64,
    /// Dephasing time T2 (ns).
    pub t2_ns: f64,
}

impl CoherenceTimes {
    /// Transmon defaults: T1 = 30 µs, T2 = 20 µs.
    pub fn surface_code_defaults() -> Self {
        CoherenceTimes {
            t1_ns: 30_000.0,
            t2_ns: 20_000.0,
        }
    }
}

impl Default for CoherenceTimes {
    fn default() -> Self {
        Self::surface_code_defaults()
    }
}

/// Per-element calibration data: individual fidelities for every qubit
/// and every coupler, modelling the "error variability across the quantum
/// device" that noise-aware compilation exploits.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Device-average figures.
    pub averages: GateFidelities,
    /// Gate durations.
    pub durations: GateDurations,
    /// Coherence times.
    pub coherence: CoherenceTimes,
    /// Per-qubit single-qubit gate fidelity.
    single_qubit: Vec<f64>,
    /// Per-qubit readout fidelity.
    readout: Vec<f64>,
    /// Per-coupler two-qubit gate fidelity, keyed by `(min, max)`.
    two_qubit: BTreeMap<(usize, usize), f64>,
}

impl ToJson for GateFidelities {
    fn to_json(&self) -> Json {
        Json::object([
            ("single_qubit", self.single_qubit),
            ("two_qubit", self.two_qubit),
            ("measurement", self.measurement),
        ])
    }
}

impl FromJson for GateFidelities {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(GateFidelities {
            single_qubit: qcs_json::field(json, "single_qubit")?,
            two_qubit: qcs_json::field(json, "two_qubit")?,
            measurement: qcs_json::field(json, "measurement")?,
        })
    }
}

impl ToJson for GateDurations {
    fn to_json(&self) -> Json {
        Json::object([
            ("single_qubit_ns", self.single_qubit_ns),
            ("two_qubit_ns", self.two_qubit_ns),
            ("measurement_ns", self.measurement_ns),
        ])
    }
}

impl FromJson for GateDurations {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(GateDurations {
            single_qubit_ns: qcs_json::field(json, "single_qubit_ns")?,
            two_qubit_ns: qcs_json::field(json, "two_qubit_ns")?,
            measurement_ns: qcs_json::field(json, "measurement_ns")?,
        })
    }
}

impl ToJson for CoherenceTimes {
    fn to_json(&self) -> Json {
        Json::object([("t1_ns", self.t1_ns), ("t2_ns", self.t2_ns)])
    }
}

impl FromJson for CoherenceTimes {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(CoherenceTimes {
            t1_ns: qcs_json::field(json, "t1_ns")?,
            t2_ns: qcs_json::field(json, "t2_ns")?,
        })
    }
}

impl ToJson for Calibration {
    /// Wire format flattens the coupler map into `[u, v, fidelity]`
    /// triples (tuple map keys are not representable in JSON objects).
    fn to_json(&self) -> Json {
        Json::object([
            ("averages", self.averages.to_json()),
            ("durations", self.durations.to_json()),
            ("coherence", self.coherence.to_json()),
            ("single_qubit", self.single_qubit.to_json()),
            ("readout", self.readout.to_json()),
            (
                "two_qubit",
                Json::Array(
                    self.two_qubit
                        .iter()
                        .map(|(&(u, v), &f)| {
                            Json::Array(vec![
                                Json::from(u as f64),
                                Json::from(v as f64),
                                Json::from(f),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for Calibration {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let mut two_qubit = BTreeMap::new();
        for triple in json
            .field("two_qubit")?
            .as_array()
            .ok_or(JsonError::Type { expected: "array" })?
        {
            let parts = triple.as_array().ok_or(JsonError::Type {
                expected: "[u, v, fidelity] coupler triple",
            })?;
            if parts.len() != 3 {
                return Err(JsonError::Type {
                    expected: "[u, v, fidelity] coupler triple",
                });
            }
            let u = usize::from_json(&parts[0])?;
            let v = usize::from_json(&parts[1])?;
            let f = f64::from_json(&parts[2])?;
            two_qubit.insert((u.min(v), u.max(v)), f);
        }
        Ok(Calibration {
            averages: qcs_json::field(json, "averages")?,
            durations: qcs_json::field(json, "durations")?,
            coherence: qcs_json::field(json, "coherence")?,
            single_qubit: qcs_json::field(json, "single_qubit")?,
            readout: qcs_json::field(json, "readout")?,
            two_qubit,
        })
    }
}

impl Calibration {
    /// Uniform calibration: every qubit and coupler at the class average.
    pub fn uniform(coupling: &Graph, averages: GateFidelities) -> Self {
        let n = coupling.node_count();
        let two_qubit = coupling
            .edges()
            .map(|(u, v, _)| ((u.min(v), u.max(v)), averages.two_qubit))
            .collect();
        Calibration {
            averages,
            durations: GateDurations::default(),
            coherence: CoherenceTimes::default(),
            single_qubit: vec![averages.single_qubit; n],
            readout: vec![averages.measurement; n],
            two_qubit,
        }
    }

    /// Calibration with per-element variability: each element's *error*
    /// (1 − fidelity) is scaled by a factor drawn uniformly from
    /// `[1 − spread, 1 + spread]`.
    ///
    /// # Panics
    ///
    /// Panics if `spread` is not in `[0, 1)`.
    pub fn with_variability<R: qcs_rng::Rng>(
        coupling: &Graph,
        averages: GateFidelities,
        spread: f64,
        rng: &mut R,
    ) -> Self {
        assert!((0.0..1.0).contains(&spread), "spread must be in [0, 1)");
        let mut cal = Calibration::uniform(coupling, averages);
        let jitter = |avg: f64, rng: &mut R| {
            let err = (1.0 - avg) * (1.0 + spread * (rng.gen::<f64>() * 2.0 - 1.0));
            (1.0 - err).clamp(0.0, 1.0)
        };
        for f in &mut cal.single_qubit {
            *f = jitter(averages.single_qubit, rng);
        }
        for f in &mut cal.readout {
            *f = jitter(averages.measurement, rng);
        }
        for f in cal.two_qubit.values_mut() {
            *f = jitter(averages.two_qubit, rng);
        }
        cal
    }

    /// Number of calibrated qubits.
    pub fn qubit_count(&self) -> usize {
        self.single_qubit.len()
    }

    /// Single-qubit gate fidelity of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn single_qubit_fidelity(&self, q: usize) -> f64 {
        self.single_qubit[q]
    }

    /// Readout fidelity of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn readout_fidelity(&self, q: usize) -> f64 {
        self.readout[q]
    }

    /// Two-qubit gate fidelity of the coupler `{u, v}`, or `None` when the
    /// qubits are not coupled.
    pub fn two_qubit_fidelity(&self, u: usize, v: usize) -> Option<f64> {
        self.two_qubit.get(&(u.min(v), u.max(v))).copied()
    }

    /// Overrides the fidelity of one coupler (e.g. to model a degraded
    /// edge in failure-injection tests).
    ///
    /// # Panics
    ///
    /// Panics if the coupler does not exist or `fidelity` is outside
    /// `[0, 1]`.
    pub fn set_two_qubit_fidelity(&mut self, u: usize, v: usize, fidelity: f64) {
        assert!(
            (0.0..=1.0).contains(&fidelity),
            "fidelity must be in [0, 1]"
        );
        let key = (u.min(v), u.max(v));
        let slot = self
            .two_qubit
            .get_mut(&key)
            .expect("coupler must exist in calibration");
        *slot = fidelity;
    }

    /// Overrides the single-qubit fidelity of one qubit.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range or `fidelity` is outside `[0, 1]`.
    pub fn set_single_qubit_fidelity(&mut self, q: usize, fidelity: f64) {
        assert!(
            (0.0..=1.0).contains(&fidelity),
            "fidelity must be in [0, 1]"
        );
        self.single_qubit[q] = fidelity;
    }

    /// Iterates over `((u, v), fidelity)` for every calibrated coupler.
    pub fn couplers(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.two_qubit.iter().map(|(&k, &f)| (k, f))
    }

    /// The worst two-qubit fidelity on the device (1.0 if no couplers).
    pub fn worst_two_qubit_fidelity(&self) -> f64 {
        self.two_qubit.values().copied().fold(1.0, f64::min)
    }

    /// The best two-qubit fidelity on the device (0.0 if no couplers).
    pub fn best_two_qubit_fidelity(&self) -> f64 {
        self.two_qubit.values().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_graph::generate;
    use qcs_rng::ChaCha8Rng;
    use qcs_rng::SeedableRng;

    #[test]
    fn defaults_match_versluis() {
        let f = GateFidelities::default();
        assert_eq!(f.single_qubit, 0.999);
        assert_eq!(f.two_qubit, 0.99);
        assert_eq!(f.measurement, 0.995);
        let d = GateDurations::default();
        assert_eq!(d.two_qubit_ns, 40.0);
        let c = CoherenceTimes::default();
        assert!(c.t1_ns > c.t2_ns);
    }

    #[test]
    fn uniform_calibration() {
        let g = generate::path_graph(4);
        let cal = Calibration::uniform(&g, GateFidelities::default());
        assert_eq!(cal.qubit_count(), 4);
        assert_eq!(cal.single_qubit_fidelity(2), 0.999);
        assert_eq!(cal.two_qubit_fidelity(0, 1), Some(0.99));
        assert_eq!(cal.two_qubit_fidelity(1, 0), Some(0.99)); // symmetric
        assert_eq!(cal.two_qubit_fidelity(0, 2), None); // not coupled
        assert_eq!(cal.readout_fidelity(0), 0.995);
    }

    #[test]
    fn variability_stays_bracketed() {
        let g = generate::grid_graph(3, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let avg = GateFidelities::default();
        let cal = Calibration::with_variability(&g, avg, 0.5, &mut rng);
        for ((u, v), f) in cal.couplers() {
            let err = 1.0 - f;
            let base = 1.0 - avg.two_qubit;
            assert!(
                err >= base * 0.5 - 1e-12 && err <= base * 1.5 + 1e-12,
                "edge ({u},{v}) error {err} outside bracket"
            );
        }
        // Variability actually varies.
        let unique: std::collections::BTreeSet<u64> =
            cal.couplers().map(|(_, f)| f.to_bits()).collect();
        assert!(unique.len() > 1);
    }

    #[test]
    fn variability_deterministic_per_seed() {
        let g = generate::path_graph(5);
        let a = Calibration::with_variability(
            &g,
            GateFidelities::default(),
            0.3,
            &mut ChaCha8Rng::seed_from_u64(5),
        );
        let b = Calibration::with_variability(
            &g,
            GateFidelities::default(),
            0.3,
            &mut ChaCha8Rng::seed_from_u64(5),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn override_edge_fidelity() {
        let g = generate::path_graph(3);
        let mut cal = Calibration::uniform(&g, GateFidelities::default());
        cal.set_two_qubit_fidelity(1, 0, 0.5);
        assert_eq!(cal.two_qubit_fidelity(0, 1), Some(0.5));
        assert_eq!(cal.worst_two_qubit_fidelity(), 0.5);
        assert_eq!(cal.best_two_qubit_fidelity(), 0.99);
        cal.set_single_qubit_fidelity(2, 0.9);
        assert_eq!(cal.single_qubit_fidelity(2), 0.9);
    }

    #[test]
    #[should_panic(expected = "coupler must exist")]
    fn override_missing_edge_panics() {
        let g = generate::path_graph(3);
        let mut cal = Calibration::uniform(&g, GateFidelities::default());
        cal.set_two_qubit_fidelity(0, 2, 0.5);
    }

    #[test]
    fn perfect_fidelities() {
        let f = GateFidelities::perfect();
        assert_eq!(f.single_qubit, 1.0);
        assert_eq!(f.two_qubit, 1.0);
    }
}
