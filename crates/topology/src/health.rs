//! Device degradation: which qubits and couplers are out of service.
//!
//! Real NISQ hardware is not static — calibration drift takes qubits and
//! couplers offline between runs. [`DeviceHealth`] is an overlay on a
//! [`Device`](crate::Device)'s coupling graph recording exactly that:
//! disabled qubits, disabled couplers, and per-coupler error-rate
//! overrides for links that still work but got worse. Applying an
//! overlay with [`Device::degrade`](crate::Device::degrade) yields a new
//! device whose distance caches, adjacency lists and calibration reflect
//! the outage, so the whole mapping stack becomes outage-aware without
//! any router changes.
//!
//! # Examples
//!
//! ```
//! use qcs_topology::health::DeviceHealth;
//! use qcs_topology::surface::surface17;
//!
//! let pristine = surface17();
//! let health = DeviceHealth::new()
//!     .disable_qubit(3)
//!     .disable_coupler(0, 2)
//!     .override_coupler_error(5, 8, 0.25);
//! let degraded = pristine.degrade(&health).unwrap();
//! assert_eq!(degraded.active_qubit_count(), 16);
//! assert!(!degraded.are_adjacent(0, 2));
//! assert_eq!(degraded.calibration().two_qubit_fidelity(5, 8), Some(0.75));
//! ```

use std::collections::{BTreeMap, BTreeSet};

use qcs_circuit::hash::Fnv64;
use qcs_graph::Graph;
use qcs_json::{FromJson, Json, JsonError, ToJson};
use qcs_rng::{ChaCha8Rng, Rng, SeedableRng};

use crate::error::Calibration;

/// An outage overlay: qubits and couplers currently out of service, plus
/// error-rate overrides for couplers that degraded without dying.
///
/// All coupler keys are stored endpoint-normalised (`min ≤ max`), so
/// `(u, v)` and `(v, u)` refer to the same coupler. The overlay itself
/// carries no topology — it is validated against a concrete coupling
/// graph when applied via [`Device::degrade`](crate::Device::degrade).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceHealth {
    disabled_qubits: BTreeSet<usize>,
    disabled_couplers: BTreeSet<(usize, usize)>,
    /// Coupler → two-qubit *error rate* (`1 − fidelity`), in `[0, 1]`.
    coupler_error_overrides: BTreeMap<(usize, usize), f64>,
}

fn norm(u: usize, v: usize) -> (usize, usize) {
    (u.min(v), u.max(v))
}

impl DeviceHealth {
    /// A pristine overlay: nothing disabled, nothing overridden.
    pub fn new() -> Self {
        DeviceHealth::default()
    }

    /// Marks physical qubit `q` out of service (and, implicitly, every
    /// coupler touching it).
    #[must_use]
    pub fn disable_qubit(mut self, q: usize) -> Self {
        self.disabled_qubits.insert(q);
        self
    }

    /// Marks the coupler `(u, v)` out of service; both endpoints stay
    /// usable.
    #[must_use]
    pub fn disable_coupler(mut self, u: usize, v: usize) -> Self {
        self.disabled_couplers.insert(norm(u, v));
        self
    }

    /// Overrides the error rate of a live coupler (applied to the
    /// degraded device's calibration as `fidelity = 1 − error`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ error ≤ 1`.
    #[must_use]
    pub fn override_coupler_error(mut self, u: usize, v: usize, error: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&error),
            "coupler error rate must be in [0, 1]"
        );
        self.coupler_error_overrides.insert(norm(u, v), error);
        self
    }

    /// Derives an overlay from calibration data: any qubit whose
    /// single-qubit fidelity falls below `min_single` and any coupler
    /// whose two-qubit fidelity falls below `min_two` is taken out of
    /// service. This is the "calibration drift takes resources offline"
    /// path a control stack would run between jobs.
    pub fn from_calibration(calibration: &Calibration, min_single: f64, min_two: f64) -> Self {
        let mut health = DeviceHealth::new();
        for q in 0..calibration.qubit_count() {
            if calibration.single_qubit_fidelity(q) < min_single {
                health = health.disable_qubit(q);
            }
        }
        for ((u, v), fidelity) in calibration.couplers() {
            if fidelity < min_two {
                health = health.disable_coupler(u, v);
            }
        }
        health
    }

    /// A seeded random degradation: disables `⌊qubit_frac · n⌋` qubits
    /// and `⌊coupler_frac · m⌋` of the remaining couplers of `coupling`,
    /// chosen deterministically from `seed`. The workhorse of the chaos
    /// suite and the degraded-device catalog specs.
    ///
    /// # Panics
    ///
    /// Panics unless both fractions are in `[0, 1]`.
    pub fn random(coupling: &Graph, qubit_frac: f64, coupler_frac: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&qubit_frac) && (0.0..=1.0).contains(&coupler_frac),
            "degradation fractions must be in [0, 1]"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut health = DeviceHealth::new();
        let n = coupling.node_count();
        let qubits_out = (qubit_frac * n as f64).floor() as usize;
        let mut pool: Vec<usize> = (0..n).collect();
        for _ in 0..qubits_out.min(n) {
            let pick = rng.gen_range(0..pool.len());
            health = health.disable_qubit(pool.swap_remove(pick));
        }
        let mut edges: Vec<(usize, usize)> = coupling
            .edges()
            .map(|(u, v, _)| norm(u, v))
            .filter(|&(u, v)| !health.is_qubit_disabled(u) && !health.is_qubit_disabled(v))
            .collect();
        let couplers_out = (coupler_frac * coupling.edge_count() as f64).floor() as usize;
        for _ in 0..couplers_out.min(edges.len()) {
            let pick = rng.gen_range(0..edges.len());
            let (u, v) = edges.swap_remove(pick);
            health = health.disable_coupler(u, v);
        }
        health
    }

    /// The union of two overlays: everything disabled in either, with
    /// `other`'s error overrides winning on conflict. Degrading an
    /// already-degraded device merges overlays through this.
    #[must_use]
    pub fn merged(&self, other: &DeviceHealth) -> DeviceHealth {
        let mut out = self.clone();
        out.disabled_qubits
            .extend(other.disabled_qubits.iter().copied());
        out.disabled_couplers
            .extend(other.disabled_couplers.iter().copied());
        for (&k, &e) in &other.coupler_error_overrides {
            out.coupler_error_overrides.insert(k, e);
        }
        out
    }

    /// Whether the overlay changes nothing.
    pub fn is_empty(&self) -> bool {
        self.disabled_qubits.is_empty()
            && self.disabled_couplers.is_empty()
            && self.coupler_error_overrides.is_empty()
    }

    /// Whether qubit `q` is out of service.
    pub fn is_qubit_disabled(&self, q: usize) -> bool {
        self.disabled_qubits.contains(&q)
    }

    /// Whether the coupler `(u, v)` is unusable — because the coupler
    /// itself or either endpoint is out of service.
    pub fn blocks_coupler(&self, u: usize, v: usize) -> bool {
        self.is_qubit_disabled(u)
            || self.is_qubit_disabled(v)
            || self.disabled_couplers.contains(&norm(u, v))
    }

    /// The disabled qubits, ascending.
    pub fn disabled_qubits(&self) -> impl Iterator<Item = usize> + '_ {
        self.disabled_qubits.iter().copied()
    }

    /// The disabled couplers, endpoint-normalised, ascending.
    pub fn disabled_couplers(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.disabled_couplers.iter().copied()
    }

    /// The error-rate overrides, endpoint-normalised, ascending.
    pub fn coupler_error_overrides(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.coupler_error_overrides.iter().map(|(&k, &e)| (k, e))
    }

    /// Number of disabled qubits.
    pub fn disabled_qubit_count(&self) -> usize {
        self.disabled_qubits.len()
    }

    /// Number of explicitly disabled couplers (not counting couplers
    /// implicitly lost to disabled endpoints).
    pub fn disabled_coupler_count(&self) -> usize {
        self.disabled_couplers.len()
    }

    /// A stable content digest of the overlay, used to give degraded
    /// devices distinct names (and therefore distinct cache keys).
    pub fn digest(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_usize(self.disabled_qubits.len());
        for &q in &self.disabled_qubits {
            h.write_usize(q);
        }
        h.write_usize(self.disabled_couplers.len());
        for &(u, v) in &self.disabled_couplers {
            h.write_usize(u).write_usize(v);
        }
        h.write_usize(self.coupler_error_overrides.len());
        for (&(u, v), &e) in &self.coupler_error_overrides {
            h.write_usize(u).write_usize(v).write_f64(e);
        }
        h.finish()
    }

    /// The largest qubit index the overlay mentions, if any — used for
    /// range validation against a concrete device.
    pub(crate) fn max_index(&self) -> Option<usize> {
        let q = self.disabled_qubits.iter().next_back().copied();
        let c = self.disabled_couplers.iter().map(|&(_, v)| v).max();
        let o = self.coupler_error_overrides.keys().map(|&(_, v)| v).max();
        [q, c, o].into_iter().flatten().max()
    }
}

impl ToJson for DeviceHealth {
    fn to_json(&self) -> Json {
        let pair = |(u, v): (usize, usize)| Json::Array(vec![Json::from(u), Json::from(v)]);
        Json::object([
            (
                "disabled_qubits",
                Json::Array(
                    self.disabled_qubits
                        .iter()
                        .map(|&q| Json::from(q))
                        .collect(),
                ),
            ),
            (
                "disabled_couplers",
                Json::Array(self.disabled_couplers.iter().map(|&e| pair(e)).collect()),
            ),
            (
                "coupler_error_overrides",
                Json::Array(
                    self.coupler_error_overrides
                        .iter()
                        .map(|(&(u, v), &e)| {
                            Json::Array(vec![Json::from(u), Json::from(v), Json::from(e)])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl FromJson for DeviceHealth {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        fn pair(item: &Json) -> Result<(usize, usize), JsonError> {
            match item {
                Json::Array(xs) if xs.len() >= 2 => {
                    Ok((usize::from_json(&xs[0])?, usize::from_json(&xs[1])?))
                }
                _ => Err(JsonError::Type {
                    expected: "[u, v] coupler pair",
                }),
            }
        }
        let qubits: Vec<usize> = qcs_json::field(json, "disabled_qubits")?;
        let mut health = DeviceHealth::new();
        for q in qubits {
            health = health.disable_qubit(q);
        }
        let Some(Json::Array(couplers)) = json.get("disabled_couplers") else {
            return Err(JsonError::Type {
                expected: "disabled_couplers array",
            });
        };
        for item in couplers {
            let (u, v) = pair(item)?;
            health = health.disable_coupler(u, v);
        }
        let Some(Json::Array(overrides)) = json.get("coupler_error_overrides") else {
            return Err(JsonError::Type {
                expected: "coupler_error_overrides array",
            });
        };
        for item in overrides {
            match item {
                Json::Array(xs) if xs.len() == 3 => {
                    let (u, v) = (usize::from_json(&xs[0])?, usize::from_json(&xs[1])?);
                    let e = f64::from_json(&xs[2])?;
                    if !(0.0..=1.0).contains(&e) {
                        return Err(JsonError::Type {
                            expected: "coupler error rate in [0, 1]",
                        });
                    }
                    health = health.override_coupler_error(u, v, e);
                }
                _ => {
                    return Err(JsonError::Type {
                        expected: "[u, v, error] override triple",
                    })
                }
            }
        }
        Ok(health)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::GateFidelities;
    use qcs_graph::generate;

    #[test]
    fn endpoint_normalisation() {
        let h = DeviceHealth::new().disable_coupler(5, 2);
        assert!(h.blocks_coupler(2, 5));
        assert!(h.blocks_coupler(5, 2));
        assert!(!h.blocks_coupler(2, 3));
    }

    #[test]
    fn disabled_qubit_blocks_incident_couplers() {
        let h = DeviceHealth::new().disable_qubit(1);
        assert!(h.blocks_coupler(0, 1));
        assert!(h.blocks_coupler(1, 2));
        assert!(!h.blocks_coupler(0, 2));
    }

    #[test]
    fn from_calibration_thresholds() {
        let g = generate::path_graph(4);
        let mut cal = Calibration::uniform(&g, GateFidelities::default());
        cal.set_two_qubit_fidelity(1, 2, 0.80);
        let h = DeviceHealth::from_calibration(&cal, 0.9, 0.95);
        assert_eq!(h.disabled_qubit_count(), 0);
        assert!(h.blocks_coupler(1, 2));
        assert!(!h.blocks_coupler(0, 1));
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let g = generate::grid_graph(5, 5);
        let a = DeviceHealth::random(&g, 0.2, 0.1, 42);
        let b = DeviceHealth::random(&g, 0.2, 0.1, 42);
        assert_eq!(a, b);
        assert_eq!(a.disabled_qubit_count(), 5);
        assert_eq!(a.disabled_coupler_count(), 4);
        let c = DeviceHealth::random(&g, 0.2, 0.1, 43);
        assert_ne!(a, c, "different seeds give different outages");
        // Disabled couplers never touch a disabled qubit (they would be
        // redundant).
        for (u, v) in a.disabled_couplers() {
            assert!(!a.is_qubit_disabled(u) && !a.is_qubit_disabled(v));
        }
    }

    #[test]
    fn digest_distinguishes_overlays() {
        let a = DeviceHealth::new().disable_qubit(1);
        let b = DeviceHealth::new().disable_qubit(2);
        assert_ne!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.clone().digest());
    }

    #[test]
    fn json_round_trip() {
        let h = DeviceHealth::new()
            .disable_qubit(3)
            .disable_coupler(0, 2)
            .override_coupler_error(4, 1, 0.125);
        let json = h.to_json().to_compact_string();
        let back = DeviceHealth::from_json(&qcs_json::parse(&json).unwrap()).unwrap();
        assert_eq!(back, h);
    }
}
