//! Generic comparison topologies: grid, line, ring, heavy-hex, all-to-all.
//!
//! "For most technologies, including superconducting qubits and quantum
//! dots, qubits are arranged in a 2D grid topology allowing only
//! nearest-neighbor interactions" (Section III). These devices let the
//! benchmarks contrast the surface lattice with other common layouts.

use qcs_circuit::decompose::GateSet;
use qcs_graph::{generate, Graph};

use crate::device::Device;

fn build(name: String, coupling: Graph, gate_set: GateSet) -> Device {
    Device::new(name, coupling, gate_set).expect("generator produced a valid device")
}

/// A `rows × cols` square-grid device with CNOT-based primitives.
///
/// # Panics
///
/// Panics if the grid would be empty.
pub fn grid_device(rows: usize, cols: usize) -> Device {
    assert!(rows * cols > 0, "grid must contain at least one qubit");
    build(
        format!("grid-{rows}x{cols}"),
        generate::grid_graph(rows, cols),
        GateSet::ibm_style(),
    )
}

/// A 1-D chain of `n` qubits.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn line_device(n: usize) -> Device {
    assert!(n > 0, "line must contain at least one qubit");
    build(
        format!("line-{n}"),
        generate::path_graph(n),
        GateSet::ibm_style(),
    )
}

/// A ring of `n` qubits (ion-trap-style shuttling loop).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn ring_device(n: usize) -> Device {
    assert!(n > 0, "ring must contain at least one qubit");
    build(
        format!("ring-{n}"),
        generate::ring_graph(n),
        GateSet::ibm_style(),
    )
}

/// A fully-connected device (trapped-ion-style all-to-all interactions):
/// mapping needs no routing at all, the zero-overhead baseline.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn full_device(n: usize) -> Device {
    assert!(n > 0, "device must contain at least one qubit");
    build(
        format!("full-{n}"),
        generate::complete_graph(n),
        GateSet::ibm_style(),
    )
}

/// An IBM-style heavy-hex lattice with `rows` hexagon rows and `cols`
/// hexagon columns.
///
/// The heavy-hex graph is a hexagonal lattice with an extra qubit on every
/// edge, keeping maximum degree 3 — the layout of IBM's Falcon/Eagle
/// processors (the 127-qubit Eagle the paper's introduction mentions).
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
pub fn heavy_hex_device(rows: usize, cols: usize) -> Device {
    assert!(rows > 0 && cols > 0, "heavy-hex needs at least one cell");
    // Build the hexagonal lattice as a brick-wall grid, then subdivide
    // every edge with a mid qubit.
    //
    // Brick-wall: take a (rows+1) × (2*cols+2) grid of corner nodes; keep
    // vertical edges only on alternating columns per row parity.
    let corner_rows = rows + 1;
    let corner_cols = 2 * cols + 2;
    let corner_id = |r: usize, c: usize| r * corner_cols + c;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for r in 0..corner_rows {
        for c in 0..corner_cols {
            if c + 1 < corner_cols {
                edges.push((corner_id(r, c), corner_id(r, c + 1)));
            }
            if r + 1 < corner_rows && (c + r) % 2 == 0 {
                edges.push((corner_id(r, c), corner_id(r + 1, c)));
            }
        }
    }
    // Subdivide: mid qubits get fresh ids after the corners.
    let corners = corner_rows * corner_cols;
    let mut g = Graph::with_nodes(corners + edges.len());
    for (i, &(u, v)) in edges.iter().enumerate() {
        let mid = corners + i;
        g.add_edge(u, mid).expect("valid subdivision edge");
        g.add_edge(mid, v).expect("valid subdivision edge");
    }
    build(format!("heavy-hex-{rows}x{cols}"), g, GateSet::ibm_style())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_graph::paths::is_connected;

    #[test]
    fn grid_device_shape() {
        let dev = grid_device(3, 4);
        assert_eq!(dev.qubit_count(), 12);
        assert_eq!(dev.coupler_count(), 17);
        assert_eq!(dev.name(), "grid-3x4");
    }

    #[test]
    fn line_and_ring() {
        assert_eq!(line_device(6).diameter(), 5);
        assert_eq!(ring_device(6).diameter(), 3);
    }

    #[test]
    fn full_device_distance_one() {
        let dev = full_device(5);
        assert_eq!(dev.diameter(), 1);
        assert_eq!(dev.average_distance(), 1.0);
    }

    #[test]
    fn heavy_hex_degree_at_most_three() {
        let dev = heavy_hex_device(2, 2);
        assert!(is_connected(dev.coupling()));
        for q in 0..dev.qubit_count() {
            assert!(
                dev.coupling().degree(q) <= 3,
                "qubit {q} has degree {}",
                dev.coupling().degree(q)
            );
        }
    }

    #[test]
    fn heavy_hex_mid_qubits_degree_two() {
        let dev = heavy_hex_device(1, 1);
        // Mid (subdivision) qubits have exactly degree 2.
        let n = dev.qubit_count();
        let deg2 = (0..n).filter(|&q| dev.coupling().degree(q) == 2).count();
        assert!(deg2 * 2 >= n, "subdivision qubits should dominate");
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn empty_grid_panics() {
        let _ = grid_device(0, 3);
    }
}
