//! Quantum device models: coupling graphs, primitive gate sets and
//! calibration data.
//!
//! This crate is the "quantum chip" layer of the full-stack (Fig. 1).
//! It exposes exactly the information the paper says must flow *up* the
//! stack for hardware-aware compilation: "qubits' connectivity, gate error
//! rates, error variability across the quantum device, primitive quantum
//! gates" (Section I).
//!
//! * [`device`] — [`device::Device`]: coupling graph + primitive gate set +
//!   calibration + precomputed hop distances.
//! * [`error`] — gate fidelities, durations, coherence times and per-qubit
//!   / per-edge calibration with device variability.
//! * [`health`] — [`health::DeviceHealth`] outage overlays (disabled
//!   qubits/couplers, error overrides) applied via
//!   [`device::Device::degrade`] for degraded-device compilation.
//! * [`surface`] — the Surface-7 and Surface-17 processors of Versluis et
//!   al. \[32\] and arbitrary-distance extensions of the same lattice
//!   (the paper's "extended 100-qubit version of the Surface-17").
//! * [`lattice`] — generic grid, line, ring, heavy-hex and all-to-all
//!   devices for comparison studies.
//!
//! # Examples
//!
//! ```
//! use qcs_topology::surface::surface7;
//!
//! let dev = surface7();
//! assert_eq!(dev.qubit_count(), 7);
//! assert!(dev.are_adjacent(3, 5));
//! assert!(!dev.are_adjacent(0, 6));
//! assert_eq!(dev.distance(0, 3), 2);
//! assert_eq!(dev.distance(0, 6), 4);
//! ```

#![warn(missing_docs)]

pub mod device;
pub mod error;
pub mod health;
pub mod lattice;
pub mod surface;

pub use device::Device;
pub use error::{Calibration, CoherenceTimes, GateDurations, GateFidelities};
pub use health::DeviceHealth;
