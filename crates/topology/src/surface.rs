//! Surface-code processor layouts (Versluis et al. \[32\]).
//!
//! The Surface-7 and Surface-17 transmon chips arrange qubits on a
//! *diagonal square lattice*: rows of alternating width, each row offset
//! half a site from its neighbours, with couplers between diagonal
//! neighbours. [`surface_lattice`] generates that lattice for arbitrary row
//! widths; [`surface7`], [`surface17`] and [`surface_extended`] are the
//! named instances.
//!
//! Row-width patterns of the rotated distance-`d` surface code:
//! `2d + 1` rows alternating `d − 1` and `d` qubits, totalling
//! `2d² − 1` qubits — `d = 2` gives Surface-7, `d = 3` Surface-17,
//! `d = 7` the 97-qubit device used here as the paper's "extended
//! 100-qubit version of the Surface-17" (the closest regular extension of
//! the same lattice; see EXPERIMENTS.md).

use qcs_circuit::decompose::GateSet;
use qcs_graph::Graph;

use crate::device::Device;
use crate::error::{Calibration, GateFidelities};

/// Builds the diagonal-lattice coupling graph for the given row widths.
///
/// Row `r` contains `rows[r]` qubits; qubit ids increase left-to-right,
/// top-to-bottom. Even rows sit at half-integer x positions
/// (offset 0.5), odd rows at integer positions, so adjacent-row qubits at
/// horizontal distance 0.5 share a coupler — exactly the surface-code
/// brick pattern.
pub fn surface_lattice(rows: &[usize]) -> Graph {
    let total: usize = rows.iter().sum();
    let mut g = Graph::with_nodes(total);
    // Starting index of each row.
    let mut starts = Vec::with_capacity(rows.len());
    let mut acc = 0;
    for &w in rows {
        starts.push(acc);
        acc += w;
    }
    let x_of = |r: usize, c: usize| -> f64 {
        let offset = if r.is_multiple_of(2) { 0.5 } else { 0.0 };
        c as f64 + offset
    };
    for r in 0..rows.len().saturating_sub(1) {
        for c in 0..rows[r] {
            let u = starts[r] + c;
            let xu = x_of(r, c);
            for c2 in 0..rows[r + 1] {
                let v = starts[r + 1] + c2;
                if (x_of(r + 1, c2) - xu).abs() == 0.5 {
                    g.add_edge(u, v).expect("lattice edge is valid");
                }
            }
        }
    }
    g
}

/// Row widths of the rotated distance-`d` surface lattice.
///
/// # Panics
///
/// Panics if `d < 2`.
pub fn surface_row_widths(d: usize) -> Vec<usize> {
    assert!(d >= 2, "surface code distance must be at least 2");
    (0..2 * d + 1)
        .map(|r| if r % 2 == 0 { d - 1 } else { d })
        .collect()
}

fn surface_device(name: &str, d: usize) -> Device {
    let coupling = surface_lattice(&surface_row_widths(d));
    let calibration = Calibration::uniform(&coupling, GateFidelities::surface_code_defaults());
    Device::with_calibration(name, coupling, GateSet::surface_code_native(), calibration)
        .expect("surface lattice is connected and CZ-native")
}

/// The 7-qubit Surface-7 processor (distance-2 lattice, 8 couplers) shown
/// in Fig. 2 of the paper.
///
/// # Examples
///
/// ```
/// let dev = qcs_topology::surface::surface7();
/// assert_eq!(dev.qubit_count(), 7);
/// assert_eq!(dev.coupler_count(), 8);
/// ```
pub fn surface7() -> Device {
    surface_device("surface-7", 2)
}

/// The 17-qubit Surface-17 processor (distance-3 lattice, 24 couplers).
pub fn surface17() -> Device {
    surface_device("surface-17", 3)
}

/// An extended surface lattice of code distance `d` (`2d² − 1` qubits).
///
/// `surface_extended(7)` is the 97-qubit device standing in for the
/// paper's "extended 100-qubit version of the Surface-17 hardware
/// configuration".
///
/// Qubit ids are renumbered along a nearest-neighbour **snake walk** of
/// the lattice, so successive indices are physically coupled wherever the
/// walk permits — mirroring device configuration files (e.g. OpenQL's
/// Surface-17) where one-to-one "trivial" initial placement is meaningful
/// rather than pathological.
///
/// # Panics
///
/// Panics if `d < 2`.
pub fn surface_extended(d: usize) -> Device {
    let raw = surface_lattice(&surface_row_widths(d));
    let order = snake_order(&raw);
    // order[k] = old id visited k-th; relabel old -> new position.
    let mut new_of_old = vec![0usize; raw.node_count()];
    for (new, &old) in order.iter().enumerate() {
        new_of_old[old] = new;
    }
    let coupling = raw.relabel(&new_of_old);
    let calibration = Calibration::uniform(&coupling, GateFidelities::surface_code_defaults());
    Device::with_calibration(
        format!("surface-{}", 2 * d * d - 1),
        coupling,
        GateSet::surface_code_native(),
        calibration,
    )
    .expect("surface lattice is connected and CZ-native")
}

/// Greedy nearest-neighbour walk visiting every node: each step moves to
/// an unvisited neighbour when one exists, otherwise jumps to the closest
/// unvisited node (BFS distance). Returns the visit order.
fn snake_order(g: &Graph) -> Vec<usize> {
    let n = g.node_count();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut current = 0usize;
    visited[0] = true;
    order.push(0);
    while order.len() < n {
        // Prefer the unvisited neighbour with the fewest unvisited
        // neighbours of its own (classic Warnsdorff tie-break keeps the
        // walk from stranding corners).
        let next = g
            .neighbors(current)
            .iter()
            .copied()
            .filter(|&v| !visited[v])
            .min_by_key(|&v| {
                let onward = g.neighbors(v).iter().filter(|&&w| !visited[w]).count();
                (onward, v)
            });
        let next = match next {
            Some(v) => v,
            None => {
                // Stuck: jump to the nearest unvisited node.
                let dist = qcs_graph::paths::bfs_distances(g, current);
                (0..n)
                    .filter(|&v| !visited[v])
                    .min_by_key(|&v| (dist[v], v))
                    .expect("some node unvisited")
            }
        };
        visited[next] = true;
        order.push(next);
        current = next;
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_graph::metrics::GraphMetrics;
    use qcs_graph::paths::is_connected;

    #[test]
    fn surface7_matches_published_layout() {
        let dev = surface7();
        assert_eq!(dev.qubit_count(), 7);
        assert_eq!(dev.coupler_count(), 8);
        // Row widths [1, 2, 1, 2, 1]: ids 0 | 1 2 | 3 | 4 5 | 6.
        // Published couplers (relabelled): the middle row connects widely.
        let expected_edges = [
            (0, 1),
            (0, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (3, 5),
            (4, 6),
            (5, 6),
        ];
        for (u, v) in expected_edges {
            assert!(dev.are_adjacent(u, v), "expected coupler ({u},{v})");
        }
    }

    #[test]
    fn surface17_size() {
        let dev = surface17();
        assert_eq!(dev.qubit_count(), 17);
        assert_eq!(dev.coupler_count(), 24);
        assert!(is_connected(dev.coupling()));
    }

    #[test]
    fn extended_sizes_follow_formula() {
        for d in 2..=7 {
            let dev = surface_extended(d);
            assert_eq!(dev.qubit_count(), 2 * d * d - 1, "distance {d}");
            assert!(is_connected(dev.coupling()));
            // Max degree 4 (diagonal lattice).
            let m = GraphMetrics::compute(dev.coupling());
            assert!(m.max_degree <= 4.0);
        }
    }

    #[test]
    fn extended_97_is_the_fig3_device() {
        let dev = surface_extended(7);
        assert_eq!(dev.qubit_count(), 97);
        assert_eq!(dev.name(), "surface-97");
        // Plenty of room for the 1–54 qubit benchmark suite.
        assert!(dev.qubit_count() >= 54);
    }

    #[test]
    fn native_set_is_cz_based() {
        use qcs_circuit::gate::GateKind;
        let dev = surface17();
        assert!(dev.gate_set().contains(GateKind::Cz));
        assert!(!dev.gate_set().contains(GateKind::Cnot));
    }

    #[test]
    fn lattice_degree_bound() {
        let g = surface_lattice(&surface_row_widths(5));
        for u in 0..g.node_count() {
            assert!(g.degree(u) <= 4, "qubit {u} exceeds degree 4");
        }
    }

    #[test]
    fn row_widths_pattern() {
        assert_eq!(surface_row_widths(2), vec![1, 2, 1, 2, 1]);
        assert_eq!(surface_row_widths(3), vec![2, 3, 2, 3, 2, 3, 2]);
    }

    #[test]
    #[should_panic(expected = "distance must be at least 2")]
    fn rejects_tiny_distance() {
        let _ = surface_row_widths(1);
    }

    #[test]
    fn snake_numbering_keeps_successors_close() {
        // The extended device renumbers qubits so that consecutive ids
        // are mostly coupled (one-to-one placement of chain circuits is
        // then meaningful, as on OpenQL's Surface-17 numbering).
        let dev = surface_extended(5);
        let n = dev.qubit_count();
        let adjacent = (1..n).filter(|&q| dev.are_adjacent(q - 1, q)).count();
        assert!(
            adjacent * 10 >= (n - 1) * 8,
            "only {adjacent}/{} consecutive pairs coupled",
            n - 1
        );
        // And never far apart even across walk jumps.
        for q in 1..n {
            assert!(dev.distance(q - 1, q) <= 4, "ids {q}-1,{q} too far");
        }
    }

    #[test]
    fn calibration_covers_device() {
        let dev = surface_extended(4);
        assert_eq!(dev.calibration().qubit_count(), dev.qubit_count());
        assert_eq!(dev.calibration().couplers().count(), dev.coupler_count());
    }
}
