//! Cuccaro ripple-carry adder circuits.
//!
//! A textbook arithmetic workload: deep, Toffoli-dense, and with a linear
//! chain interaction graph — representative of the reversible-arithmetic
//! family in benchmark suites.

use qcs_circuit::circuit::{Circuit, CircuitError};

/// Qubit layout of [`cuccaro_adder`]: carry-in at 0, then interleaved
/// `b_i`, `a_i` pairs, carry-out last; width `2n + 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdderLayout {
    /// Number of bits per operand.
    pub bits: usize,
}

impl AdderLayout {
    /// Circuit width.
    pub fn width(&self) -> usize {
        2 * self.bits + 2
    }
    /// Carry-in ancilla qubit.
    pub fn carry_in(&self) -> usize {
        0
    }
    /// Qubit holding bit `i` of operand `b` (receives the sum).
    pub fn b(&self, i: usize) -> usize {
        1 + 2 * i
    }
    /// Qubit holding bit `i` of operand `a`.
    pub fn a(&self, i: usize) -> usize {
        2 + 2 * i
    }
    /// Carry-out qubit.
    pub fn carry_out(&self) -> usize {
        2 * self.bits + 1
    }
}

fn maj(c: &mut Circuit, x: usize, y: usize, z: usize) -> Result<(), CircuitError> {
    c.cnot(z, y)?;
    c.cnot(z, x)?;
    c.toffoli(x, y, z)?;
    Ok(())
}

fn uma(c: &mut Circuit, x: usize, y: usize, z: usize) -> Result<(), CircuitError> {
    c.toffoli(x, y, z)?;
    c.cnot(z, x)?;
    c.cnot(x, y)?;
    Ok(())
}

/// Builds the `n`-bit Cuccaro ripple-carry adder: computes `b := a + b`
/// with the carry in the carry-out qubit (layout per [`AdderLayout`]).
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for `n ≥ 1`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn cuccaro_adder(n: usize) -> Result<Circuit, CircuitError> {
    assert!(n > 0, "adder needs at least one bit");
    let l = AdderLayout { bits: n };
    let mut c = Circuit::with_name(l.width(), format!("cuccaro-{n}"));
    // MAJ ladder.
    maj(&mut c, l.carry_in(), l.b(0), l.a(0))?;
    for i in 1..n {
        maj(&mut c, l.a(i - 1), l.b(i), l.a(i))?;
    }
    c.cnot(l.a(n - 1), l.carry_out())?;
    // UMA ladder (reverse).
    for i in (1..n).rev() {
        uma(&mut c, l.a(i - 1), l.b(i), l.a(i))?;
    }
    uma(&mut c, l.carry_in(), l.b(0), l.a(0))?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_sim::exec::run_unitary;
    use qcs_sim::StateVector;

    /// Runs the adder classically on basis inputs and reads the sum.
    fn add(n: usize, a: usize, b: usize) -> (usize, bool) {
        let l = AdderLayout { bits: n };
        let mut index = 0usize;
        for i in 0..n {
            if a >> i & 1 == 1 {
                index |= 1 << l.a(i);
            }
            if b >> i & 1 == 1 {
                index |= 1 << l.b(i);
            }
        }
        let c = cuccaro_adder(n).unwrap();
        let s = run_unitary(&c, StateVector::basis(l.width(), index));
        let out = s
            .probabilities()
            .iter()
            .position(|&p| p > 1.0 - 1e-9)
            .expect("basis input must map to a basis output");
        let mut sum = 0usize;
        for i in 0..n {
            if out >> l.b(i) & 1 == 1 {
                sum |= 1 << i;
            }
        }
        let carry = out >> l.carry_out() & 1 == 1;
        // Operand a must be restored.
        let mut a_out = 0usize;
        for i in 0..n {
            if out >> l.a(i) & 1 == 1 {
                a_out |= 1 << i;
            }
        }
        assert_eq!(a_out, a, "operand a must be preserved");
        (sum, carry)
    }

    #[test]
    fn adds_exhaustively_3_bits() {
        for a in 0..8usize {
            for b in 0..8usize {
                let (sum, carry) = add(3, a, b);
                let total = a + b;
                assert_eq!(sum, total & 0b111, "{a}+{b}");
                assert_eq!(carry, total > 7, "{a}+{b} carry");
            }
        }
    }

    #[test]
    fn one_bit_adder_is_half_adder() {
        assert_eq!(add(1, 1, 1), (0, true));
        assert_eq!(add(1, 1, 0), (1, false));
        assert_eq!(add(1, 0, 0), (0, false));
    }

    #[test]
    fn gate_count_scales_linearly() {
        let g4 = cuccaro_adder(4).unwrap().gate_count();
        let g8 = cuccaro_adder(8).unwrap().gate_count();
        // 6 gates per MAJ/UMA pair per bit + 1 carry CNOT.
        assert_eq!(g4, 6 * 4 + 1);
        assert_eq!(g8, 6 * 8 + 1);
    }

    #[test]
    fn layout_indices_disjoint() {
        let l = AdderLayout { bits: 3 };
        let mut seen = std::collections::BTreeSet::new();
        seen.insert(l.carry_in());
        seen.insert(l.carry_out());
        for i in 0..3 {
            seen.insert(l.a(i));
            seen.insert(l.b(i));
        }
        assert_eq!(seen.len(), l.width());
    }
}
