//! Bernstein–Vazirani circuits.
//!
//! BV finds a secret bit-string `s` with a single oracle query. The
//! circuit uses `n` input qubits plus one ancilla; its interaction graph
//! is a star centred on the ancilla, with one edge per set bit of `s`.

use qcs_circuit::circuit::{Circuit, CircuitError};

/// Builds the Bernstein–Vazirani circuit for an `n`-bit secret.
///
/// Qubits `0..n` are the input register; qubit `n` is the ancilla. The
/// secret's bit `k` is `(secret >> k) & 1`.
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for valid widths).
///
/// # Panics
///
/// Panics if `n == 0`, `n > 63`, or `secret` has bits above `n`.
pub fn bernstein_vazirani(n: usize, secret: u64) -> Result<Circuit, CircuitError> {
    assert!(n > 0 && n <= 63, "secret width must be 1..=63");
    assert!(secret < (1u64 << n), "secret wider than register");
    let mut c = Circuit::with_name(n + 1, format!("bv-{n}-s{secret}"));
    // Ancilla in |−⟩.
    c.x(n)?;
    c.h(n)?;
    for q in 0..n {
        c.h(q)?;
    }
    // Oracle: CNOT from each secret bit into the ancilla.
    for q in 0..n {
        if secret >> q & 1 == 1 {
            c.cnot(q, n)?;
        }
    }
    for q in 0..n {
        c.h(q)?;
    }
    for q in 0..n {
        c.measure(q)?;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::interaction::interaction_graph;
    use qcs_rng::ChaCha8Rng;
    use qcs_rng::SeedableRng;
    use qcs_sim::exec::run;
    use qcs_sim::StateVector;

    #[test]
    fn recovers_secret() {
        let n = 5;
        for secret in [0b10110u64, 0b00001, 0b11111, 0] {
            let c = bernstein_vazirani(n, secret).unwrap();
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let (_, record) = run(&c, StateVector::zero(n + 1), &mut rng);
            let mut measured = 0u64;
            for &(q, bit) in &record {
                if bit {
                    measured |= 1 << q;
                }
            }
            assert_eq!(measured, secret, "failed for secret {secret:b}");
        }
    }

    #[test]
    fn interaction_graph_is_ancilla_star() {
        let c = bernstein_vazirani(6, 0b101101).unwrap();
        let ig = interaction_graph(&c);
        assert_eq!(ig.degree(6), 4); // four set bits
        assert_eq!(ig.edge_count(), 4);
    }

    #[test]
    #[should_panic(expected = "wider than register")]
    fn rejects_oversized_secret() {
        let _ = bernstein_vazirani(3, 0b1000);
    }
}
