//! GHZ state preparation circuits.

use qcs_circuit::circuit::{Circuit, CircuitError};

/// Linear-chain GHZ preparation: `H(0)` then a CNOT ladder — interaction
/// graph is a path, the easiest possible routing case.
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for `n ≥ 1`).
pub fn ghz_chain(n: usize) -> Result<Circuit, CircuitError> {
    let mut c = Circuit::with_name(n, format!("ghz-{n}"));
    if n == 0 {
        return Ok(c);
    }
    c.h(0)?;
    for q in 1..n {
        c.cnot(q - 1, q)?;
    }
    Ok(c)
}

/// Star-shaped GHZ preparation: all CNOTs fan out from qubit 0 —
/// interaction graph is a star, stressing a single high-degree hub.
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for `n ≥ 1`).
pub fn ghz_star(n: usize) -> Result<Circuit, CircuitError> {
    let mut c = Circuit::with_name(n, format!("ghz-star-{n}"));
    if n == 0 {
        return Ok(c);
    }
    c.h(0)?;
    for q in 1..n {
        c.cnot(0, q)?;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::interaction::interaction_graph;
    use qcs_graph::metrics::GraphMetrics;
    use qcs_sim::exec::run_unitary;
    use qcs_sim::StateVector;

    #[test]
    fn chain_prepares_ghz() {
        let c = ghz_chain(4).unwrap();
        let s = run_unitary(&c, StateVector::zero(4));
        let p = s.probabilities();
        assert!((p[0b0000] - 0.5).abs() < 1e-12);
        assert!((p[0b1111] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn star_prepares_same_state() {
        let a = run_unitary(&ghz_chain(5).unwrap(), StateVector::zero(5));
        let b = run_unitary(&ghz_star(5).unwrap(), StateVector::zero(5));
        assert!(a.approx_eq_up_to_phase(&b, 1e-10));
    }

    #[test]
    fn interaction_shapes_differ() {
        let chain = GraphMetrics::compute(&interaction_graph(&ghz_chain(8).unwrap()));
        let star = GraphMetrics::compute(&interaction_graph(&ghz_star(8).unwrap()));
        assert_eq!(chain.max_degree, 2.0);
        assert_eq!(star.max_degree, 7.0);
        assert!(star.avg_shortest_path < chain.avg_shortest_path);
    }

    #[test]
    fn empty_and_single() {
        assert!(ghz_chain(0).unwrap().is_empty());
        assert_eq!(ghz_chain(1).unwrap().gate_count(), 1);
    }
}
