//! Grover search circuits with Toffoli-ladder multi-controlled oracles.
//!
//! Interaction-graph-wise, Grover is ancilla-ladder shaped: heavy Toffoli
//! traffic between adjacent ladder qubits, a "real algorithm" profile very
//! unlike random circuits of the same size.

use qcs_circuit::circuit::{Circuit, CircuitError};

/// Appends a multi-controlled X (controls `controls`, target `t`) using
/// the standard Toffoli ladder through `ancillas` (compute–act–uncompute).
///
/// Requires `ancillas.len() ≥ controls.len().saturating_sub(2)`.
///
/// # Errors
///
/// Propagates [`CircuitError`] on invalid operands.
///
/// # Panics
///
/// Panics if too few ancillas are supplied.
pub fn multi_controlled_x(
    c: &mut Circuit,
    controls: &[usize],
    t: usize,
    ancillas: &[usize],
) -> Result<(), CircuitError> {
    match controls.len() {
        0 => {
            c.x(t)?;
        }
        1 => {
            c.cnot(controls[0], t)?;
        }
        2 => {
            c.toffoli(controls[0], controls[1], t)?;
        }
        k => {
            assert!(
                ancillas.len() >= k - 2,
                "need {} ancillas for {} controls, got {}",
                k - 2,
                k,
                ancillas.len()
            );
            // Compute AND-ladder.
            c.toffoli(controls[0], controls[1], ancillas[0])?;
            for i in 2..k - 1 {
                c.toffoli(controls[i], ancillas[i - 2], ancillas[i - 1])?;
            }
            c.toffoli(controls[k - 1], ancillas[k - 3], t)?;
            // Uncompute.
            for i in (2..k - 1).rev() {
                c.toffoli(controls[i], ancillas[i - 2], ancillas[i - 1])?;
            }
            c.toffoli(controls[0], controls[1], ancillas[0])?;
        }
    }
    Ok(())
}

/// Appends a multi-controlled Z over `qubits` (symmetric), using
/// `ancillas` for the ladder.
///
/// # Errors
///
/// Propagates [`CircuitError`] on invalid operands.
///
/// # Panics
///
/// Panics if `qubits` is empty or too few ancillas are supplied.
pub fn multi_controlled_z(
    c: &mut Circuit,
    qubits: &[usize],
    ancillas: &[usize],
) -> Result<(), CircuitError> {
    assert!(!qubits.is_empty(), "need at least one qubit");
    match qubits.len() {
        1 => {
            c.z(qubits[0])?;
        }
        2 => {
            c.cz(qubits[0], qubits[1])?;
        }
        _ => {
            let (t, controls) = qubits.split_last().expect("non-empty");
            c.h(*t)?;
            multi_controlled_x(c, controls, *t, ancillas)?;
            c.h(*t)?;
        }
    }
    Ok(())
}

/// Number of physical qubits a Grover circuit over `n` search qubits
/// occupies (search register plus Toffoli-ladder ancillas).
pub fn grover_width(n: usize) -> usize {
    n + n.saturating_sub(2)
}

/// Builds a Grover search circuit over `n` qubits marking basis state
/// `marked`, with the textbook iteration count `⌊π/4 · √(2^n)⌋`
/// (minimum 1).
///
/// Qubits `0..n` are the search register; the rest are ladder ancillas.
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for valid inputs).
///
/// # Panics
///
/// Panics if `n == 0` or `marked ≥ 2^n`.
pub fn grover(n: usize, marked: u64) -> Result<Circuit, CircuitError> {
    grover_with_iterations(n, marked, optimal_iterations(n))
}

/// The textbook optimal Grover iteration count for `n` qubits.
pub fn optimal_iterations(n: usize) -> usize {
    let amplitude = (1u64 << n) as f64;
    ((std::f64::consts::FRAC_PI_4 * amplitude.sqrt()).floor() as usize).max(1)
}

/// [`grover`] with an explicit iteration count.
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for valid inputs).
///
/// # Panics
///
/// Panics if `n == 0` or `marked ≥ 2^n`.
pub fn grover_with_iterations(
    n: usize,
    marked: u64,
    iterations: usize,
) -> Result<Circuit, CircuitError> {
    assert!(n > 0, "need at least one search qubit");
    assert!(n <= 63 && marked < (1u64 << n), "marked state out of range");
    let width = grover_width(n);
    let search: Vec<usize> = (0..n).collect();
    let ancillas: Vec<usize> = (n..width).collect();
    let mut c = Circuit::with_name(width, format!("grover-{n}-m{marked}"));

    for q in 0..n {
        c.h(q)?;
    }
    for _ in 0..iterations {
        // Oracle: phase-flip the marked state.
        for q in 0..n {
            if marked >> q & 1 == 0 {
                c.x(q)?;
            }
        }
        multi_controlled_z(&mut c, &search, &ancillas)?;
        for q in 0..n {
            if marked >> q & 1 == 0 {
                c.x(q)?;
            }
        }
        // Diffusion about the mean.
        for q in 0..n {
            c.h(q)?;
        }
        for q in 0..n {
            c.x(q)?;
        }
        multi_controlled_z(&mut c, &search, &ancillas)?;
        for q in 0..n {
            c.x(q)?;
        }
        for q in 0..n {
            c.h(q)?;
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_sim::exec::run_unitary;
    use qcs_sim::StateVector;

    fn marked_probability(n: usize, marked: u64) -> f64 {
        let c = grover(n, marked).unwrap();
        let s = run_unitary(&c, StateVector::zero(c.qubit_count()));
        // Sum probability over all states whose low n bits equal `marked`
        // (ancillas are restored to |0⟩, but sum defensively).
        let mask = (1usize << n) - 1;
        s.probabilities()
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask == marked as usize)
            .map(|(_, p)| p)
            .sum()
    }

    #[test]
    fn amplifies_marked_state_small() {
        for (n, marked) in [(2, 0b01u64), (3, 0b110), (4, 0b1011)] {
            let p = marked_probability(n, marked);
            assert!(p > 0.8, "n={n} marked={marked:b}: probability {p}");
        }
    }

    #[test]
    fn ancillas_restored() {
        let n = 4;
        let c = grover(n, 7).unwrap();
        let s = run_unitary(&c, StateVector::zero(c.qubit_count()));
        // No amplitude outside ancilla-|0⟩ subspace.
        let ancilla_mask = !((1usize << n) - 1);
        let leak: f64 = s
            .probabilities()
            .iter()
            .enumerate()
            .filter(|(i, _)| i & ancilla_mask != 0)
            .map(|(_, p)| p)
            .sum();
        assert!(leak < 1e-9, "ancilla leakage {leak}");
    }

    #[test]
    fn mcx_truth_table() {
        // 3 controls, 1 ancilla, 1 target = 5 qubits.
        let controls = [0, 1, 2];
        let ancillas = [3];
        let t = 4;
        for input in 0..8usize {
            let mut c = Circuit::new(5);
            multi_controlled_x(&mut c, &controls, t, &ancillas).unwrap();
            let s = run_unitary(&c, StateVector::basis(5, input));
            let expect = if input == 0b111 {
                input | 1 << t
            } else {
                input
            };
            assert!(s.probabilities()[expect] > 1.0 - 1e-9, "input {input:03b}");
        }
    }

    #[test]
    fn width_formula() {
        assert_eq!(grover_width(2), 2);
        assert_eq!(grover_width(3), 4);
        assert_eq!(grover_width(5), 8);
    }

    #[test]
    fn iteration_count_grows() {
        assert_eq!(optimal_iterations(2), 1);
        assert!(optimal_iterations(6) > optimal_iterations(4));
    }

    #[test]
    #[should_panic(expected = "need")]
    fn mcx_rejects_missing_ancillas() {
        let mut c = Circuit::new(5);
        let _ = multi_controlled_x(&mut c, &[0, 1, 2, 3], 4, &[]);
    }
}
