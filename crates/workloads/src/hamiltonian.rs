//! Trotterized 2-local Hamiltonian simulation circuits.
//!
//! The workload class targeted by application-specific compilers such as
//! 2QAN (the paper's ref \[31\], "a quantum compiler for 2-local qubit
//! Hamiltonian simulation algorithms"): time evolution under
//! `H = Σ_(u,v) J_uv Z_u Z_v + Σ_q h_q X_q`, first-order Trotterized.
//! Its interaction graph equals the coupling pattern of `H`, making it
//! the cleanest testbed for algorithm-driven placement.

use qcs_rng::ChaCha8Rng;
use qcs_rng::{Rng, SeedableRng};

use qcs_circuit::circuit::{Circuit, CircuitError};
use qcs_graph::{generate, Graph};

/// Builds a first-order-Trotter evolution circuit for an Ising-type
/// Hamiltonian on `interactions` (edge weights are the couplings
/// `J_uv`), with a transverse field on every qubit, for `steps` Trotter
/// steps of length `dt`.
///
/// Each `ZZ(θ)` term is realized as `CNOT · Rz(2 J dt) · CNOT`; each
/// field term as `Rx(2 h dt)` with `h = 1`.
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for well-formed graphs).
///
/// # Panics
///
/// Panics if `steps == 0` or `dt` is not finite.
pub fn trotter_ising(interactions: &Graph, steps: usize, dt: f64) -> Result<Circuit, CircuitError> {
    assert!(steps > 0, "need at least one Trotter step");
    assert!(dt.is_finite(), "dt must be finite");
    let n = interactions.node_count();
    let mut c = Circuit::with_name(n, format!("ising-{n}q-s{steps}"));
    for _ in 0..steps {
        for (u, v, j) in interactions.edges() {
            c.cnot(u, v)?;
            c.rz(v, 2.0 * j * dt)?;
            c.cnot(u, v)?;
        }
        for q in 0..n {
            c.rx(q, 2.0 * dt)?;
        }
    }
    Ok(c)
}

/// Ising evolution on a ring (the 1-D transverse-field Ising chain with
/// periodic boundary).
///
/// # Errors
///
/// As [`trotter_ising`].
pub fn ising_ring(qubits: usize, steps: usize, dt: f64) -> Result<Circuit, CircuitError> {
    trotter_ising(&generate::ring_graph(qubits), steps, dt)
}

/// Ising evolution on a `rows × cols` square lattice (the 2-D model whose
/// interaction graph matches grid devices exactly).
///
/// # Errors
///
/// As [`trotter_ising`].
pub fn ising_grid(
    rows: usize,
    cols: usize,
    steps: usize,
    dt: f64,
) -> Result<Circuit, CircuitError> {
    trotter_ising(&generate::grid_graph(rows, cols), steps, dt)
}

/// Ising evolution on a random `d`-regular-ish coupling graph with
/// couplings drawn uniformly from `[0.5, 1.5]`.
///
/// # Errors
///
/// As [`trotter_ising`].
pub fn ising_random(
    qubits: usize,
    degree: usize,
    steps: usize,
    dt: f64,
    seed: u64,
) -> Result<Circuit, CircuitError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let skeleton = generate::regularish_graph(qubits, degree, &mut rng);
    let mut weighted = Graph::with_nodes(qubits);
    for (u, v, _) in skeleton.edges() {
        weighted
            .add_edge_weighted(u, v, rng.gen_range(0.5..1.5))
            .expect("valid edge");
    }
    trotter_ising(&weighted, steps, dt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::interaction::interaction_graph;

    #[test]
    fn interaction_graph_matches_hamiltonian() {
        let h = generate::grid_graph(2, 3);
        let c = trotter_ising(&h, 3, 0.1).unwrap();
        let ig = interaction_graph(&c);
        assert_eq!(ig.edge_count(), h.edge_count());
        for (u, v, _) in h.edges() {
            // 2 CNOTs per edge per step × 3 steps.
            assert_eq!(ig.weight(u, v), Some(6.0));
        }
    }

    #[test]
    fn gate_count_formula() {
        let n = 6;
        let steps = 4;
        let c = ising_ring(n, steps, 0.05).unwrap();
        // per step: n edges × 3 gates + n Rx.
        assert_eq!(c.gate_count(), steps * (n * 3 + n));
        assert_eq!(c.two_qubit_gate_count(), steps * n * 2);
    }

    #[test]
    fn couplings_enter_angles() {
        let mut h = Graph::with_nodes(2);
        h.add_edge_weighted(0, 1, 2.5).unwrap();
        let c = trotter_ising(&h, 1, 0.1).unwrap();
        let angles: Vec<f64> = c.gates().iter().filter_map(|g| g.angle()).collect();
        // Rz angle = 2 J dt = 0.5; Rx angles = 0.2.
        assert!((angles[0] - 0.5).abs() < 1e-12);
        assert!((angles[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn grid_model_embeds_perfectly_on_grid_device() {
        use qcs_circuit::circuit::Circuit;
        let c: Circuit = ising_grid(2, 3, 2, 0.1).unwrap();
        let ig = interaction_graph(&c);
        // The interaction graph IS the 2×3 grid.
        assert_eq!(ig.to_unweighted(), generate::grid_graph(2, 3));
    }

    #[test]
    fn random_model_deterministic() {
        assert_eq!(
            ising_random(8, 3, 2, 0.1, 5).unwrap(),
            ising_random(8, 3, 2, 0.1, 5).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "Trotter step")]
    fn zero_steps_panics() {
        let _ = ising_ring(4, 0, 0.1);
    }
}
