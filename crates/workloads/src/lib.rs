//! Benchmark circuit generators — the reproduction's stand-in for the
//! qbench suite \[34\] and the RevLib reversible circuits \[48\].
//!
//! The paper's experiments run over "200 quantum circuits … of a large
//! variety in size (1–54 qubits, 5–100000 gates, 10–90 % two-qubit gate
//! percentage) and type (random, reversible ones and those corresponding
//! to real algorithms)". This crate generates a suite with the same
//! envelope and the same real/synthetic split:
//!
//! * **Real algorithm families** — [`qaoa`], [`qft`], [`qpe`], [`grover`],
//!   [`ghz`], [`wstate`], [`bv`], [`adder`], [`vqe`], [`hamiltonian`]
//!   (trotterized Ising evolution), [`qvolume`] (quantum-volume model
//!   circuits), [`supremacy`] (grid random-circuit-sampling pattern).
//! * **Reversible oracles** — [`reversible`]: Toffoli/CNOT/X networks
//!   standing in for RevLib.
//! * **Synthetic circuits** — [`random`]: size-parameterized random gate
//!   soup (the paper's "randomly generated circuits").
//! * **The suite** — [`suite`]: a deterministic, seeded sampler producing
//!   the 200-circuit benchmark collection used by the figure harnesses.
//!
//! All generators are deterministic in their seed.
//!
//! # Examples
//!
//! ```
//! let qft = qcs_workloads::qft::qft(5)?;
//! assert_eq!(qft.qubit_count(), 5);
//! let ig = qcs_circuit::interaction::interaction_graph(&qft);
//! assert_eq!(ig.density(), 1.0); // QFT couples every qubit pair
//! # Ok::<(), qcs_circuit::CircuitError>(())
//! ```

#![warn(missing_docs)]

pub mod adder;
pub mod bv;
pub mod ghz;
pub mod grover;
pub mod hamiltonian;
pub mod qaoa;
pub mod qft;
pub mod qpe;
pub mod qvolume;
pub mod random;
pub mod reversible;
pub mod suite;
pub mod supremacy;
pub mod vqe;
pub mod wstate;
