//! QAOA MaxCut circuits — the paper's exemplar "real algorithm" (Fig. 4).
//!
//! A depth-`p` QAOA circuit for MaxCut on graph `G`: Hadamards on every
//! qubit, then `p` alternating layers of the cost unitary
//! `exp(−iγ Σ_{(u,v)∈G} Z_u Z_v)` (one CNOT–Rz–CNOT block per edge) and
//! the mixer `exp(−iβ Σ X_q)` (one Rx per qubit). Its interaction graph is
//! exactly `G` with edge weights `2p` — the structure Fig. 4 contrasts
//! with a random circuit of identical size parameters.

use qcs_rng::ChaCha8Rng;
use qcs_rng::SeedableRng;

use qcs_circuit::circuit::{Circuit, CircuitError};
use qcs_graph::{generate, Graph};

/// Builds a QAOA MaxCut circuit for `problem` with `layers` alternating
/// rounds. Angles are drawn deterministically from `seed` (their values
/// do not affect mapping behaviour, only simulation results).
///
/// # Errors
///
/// Propagates [`CircuitError`] if the problem graph references qubits
/// outside its node range (impossible for well-formed graphs).
pub fn qaoa_maxcut(problem: &Graph, layers: usize, seed: u64) -> Result<Circuit, CircuitError> {
    let n = problem.node_count();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, format!("qaoa-{n}q-p{layers}"));
    for q in 0..n {
        c.h(q)?;
    }
    for _ in 0..layers {
        let gamma = qcs_rng::Rng::gen::<f64>(&mut rng) * std::f64::consts::PI;
        let beta = qcs_rng::Rng::gen::<f64>(&mut rng) * std::f64::consts::PI;
        for (u, v, _) in problem.edges() {
            c.cnot(u, v)?;
            c.rz(v, 2.0 * gamma)?;
            c.cnot(u, v)?;
        }
        for q in 0..n {
            c.rx(q, 2.0 * beta)?;
        }
    }
    Ok(c)
}

/// QAOA on a ring (cycle) MaxCut instance.
///
/// # Errors
///
/// As [`qaoa_maxcut`].
pub fn qaoa_maxcut_ring(qubits: usize, layers: usize, seed: u64) -> Result<Circuit, CircuitError> {
    qaoa_maxcut(&generate::ring_graph(qubits), layers, seed)
}

/// QAOA on a random `d`-regular-ish MaxCut instance.
///
/// # Errors
///
/// As [`qaoa_maxcut`].
pub fn qaoa_maxcut_regular(
    qubits: usize,
    degree: usize,
    layers: usize,
    seed: u64,
) -> Result<Circuit, CircuitError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9E37_79B9);
    let g = generate::regularish_graph(qubits, degree, &mut rng);
    qaoa_maxcut(&g, layers, seed)
}

/// The Fig. 4 instance: a 6-qubit QAOA whose size parameters are
/// (qubits = 6, gates = 456, two-qubit fraction ≈ 0.135).
///
/// A 6-node ring has 6 edges; each layer contributes 12 CNOTs + 6 Rz + 6
/// Rx. The paper's instance is matched by scaling the layer count so the
/// totals land on 456 gates with ~13.5 % two-qubit share; we use the ring
/// topology at depth 18: 6 H + 18 × (6 edges × 3 + 6) = 438 … plus the
/// final measurement-free padding of single-qubit rotations to reach the
/// printed totals. See `fig4_qaoa`'s tests for the realized numbers.
///
/// # Errors
///
/// As [`qaoa_maxcut`].
pub fn fig4_qaoa(seed: u64) -> Result<Circuit, CircuitError> {
    // Ring of 6, depth 18 → 6 + 18 × 24 = 438 gates, 216 two-qubit.
    // That exceeds 13.5 %; the paper's instance is sparser, so thin the
    // cost layer: use depth 3 with heavy single-qubit dressing instead.
    // Chosen realization: depth 5 on the ring (6 + 5 × 24 = 126 gates,
    // 60 2q → 47 %) is still too dense. The paper's 13.5 % at 456 gates
    // implies ~62 two-qubit gates: ring depth 5 (60 CNOTs) + single-qubit
    // padding to 456 gates gives 61-62 2q gates ≈ 13.4–13.6 %.
    let n = 6;
    let layers = 5;
    let mut c = qaoa_maxcut(&generate::ring_graph(n), layers, seed)?;
    // Pad with mixer-style single-qubit rotations (physically: finer
    // Trotterization of the mixer) up to 456 total gates.
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x51_7CC1);
    let mut q = 0usize;
    while c.gate_count() < 456 {
        let angle = qcs_rng::Rng::gen::<f64>(&mut rng) * std::f64::consts::PI;
        c.rx(q % n, angle)?;
        q += 1;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::interaction::interaction_graph;

    #[test]
    fn ring_qaoa_interaction_graph_is_the_ring() {
        let c = qaoa_maxcut_ring(6, 2, 1).unwrap();
        let ig = interaction_graph(&c);
        assert_eq!(ig.edge_count(), 6);
        for u in 0..6 {
            assert_eq!(ig.degree(u), 2);
            // Each edge hit by 2 CNOTs per layer × 2 layers.
            let v = (u + 1) % 6;
            assert_eq!(ig.weight(u, v), Some(4.0));
        }
    }

    #[test]
    fn gate_counts_follow_formula() {
        let n = 8;
        let p = 3;
        let c = qaoa_maxcut_ring(n, p, 9).unwrap();
        // n H + p × (edges × 3 + n Rx); ring has n edges.
        assert_eq!(c.gate_count(), n + p * (n * 3 + n));
        assert_eq!(c.two_qubit_gate_count(), p * n * 2);
    }

    #[test]
    fn fig4_instance_matches_paper_parameters() {
        let c = fig4_qaoa(4).unwrap();
        assert_eq!(c.qubit_count(), 6);
        assert_eq!(c.gate_count(), 456);
        let frac = c.two_qubit_fraction();
        assert!(
            (frac - 0.135).abs() < 0.005,
            "two-qubit fraction {frac} should be ≈ 0.135"
        );
        // And crucially: its interaction graph stays the sparse ring.
        let ig = interaction_graph(&c);
        assert_eq!(ig.edge_count(), 6);
    }

    #[test]
    fn regular_instances_connected() {
        let c = qaoa_maxcut_regular(10, 3, 1, 5).unwrap();
        let ig = interaction_graph(&c);
        assert!(qcs_graph::paths::is_connected(&ig));
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            qaoa_maxcut_ring(5, 2, 3).unwrap(),
            qaoa_maxcut_ring(5, 2, 3).unwrap()
        );
        assert_ne!(
            qaoa_maxcut_ring(5, 2, 3).unwrap(),
            qaoa_maxcut_ring(5, 2, 4).unwrap()
        );
    }

    #[test]
    fn zero_layers_is_hadamard_wall() {
        let c = qaoa_maxcut_ring(4, 0, 0).unwrap();
        assert_eq!(c.gate_count(), 4);
        assert_eq!(c.two_qubit_gate_count(), 0);
    }
}
