//! Quantum Fourier Transform circuits.
//!
//! The QFT is the densest-interacting standard algorithm: every qubit
//! pair shares a controlled-phase gate, so its interaction graph is the
//! complete graph — the opposite end of the spectrum from QAOA rings.

use std::f64::consts::PI;

use qcs_circuit::circuit::{Circuit, CircuitError};

/// The standard `n`-qubit QFT with final bit-reversal SWAPs.
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for `n ≥ 1`).
pub fn qft(n: usize) -> Result<Circuit, CircuitError> {
    let mut c = Circuit::with_name(n, format!("qft-{n}"));
    for target in (0..n).rev() {
        c.h(target)?;
        for control in (0..target).rev() {
            let k = target - control;
            c.cphase(control, target, PI / (1u64 << k) as f64)?;
        }
    }
    for q in 0..n / 2 {
        c.swap(q, n - 1 - q)?;
    }
    Ok(c)
}

/// QFT without the trailing SWAP network (the common compiled form where
/// downstream code re-indexes instead).
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for `n ≥ 1`).
pub fn qft_no_swaps(n: usize) -> Result<Circuit, CircuitError> {
    let mut c = qft(n)?;
    // Rebuild without the trailing swaps rather than mutating in place.
    let keep = c.len() - n / 2;
    let mut out = Circuit::with_name(n, format!("qft-noswap-{n}"));
    for &g in &c.gates()[..keep] {
        out.push(g)?;
    }
    c.set_name("consumed");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::interaction::interaction_graph;
    use qcs_sim::exec::run_unitary;
    use qcs_sim::{StateVector, C64};

    #[test]
    fn gate_count_formula() {
        let n = 6;
        let c = qft(n).unwrap();
        // n H + n(n−1)/2 cphase + n/2 swaps.
        assert_eq!(c.gate_count(), n + n * (n - 1) / 2 + n / 2);
    }

    #[test]
    fn interaction_graph_is_complete() {
        let ig = interaction_graph(&qft(5).unwrap());
        assert_eq!(ig.density(), 1.0);
    }

    #[test]
    fn qft_of_zero_state_is_uniform() {
        let c = qft(3).unwrap();
        let s = run_unitary(&c, StateVector::zero(3));
        let expect = 1.0 / 8.0f64;
        for p in s.probabilities() {
            assert!((p - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn qft_matches_dft_on_basis_state() {
        // QFT|x⟩ = (1/√N) Σ_y e^{2πi x y / N} |y⟩ (with bit reversal folded
        // in by the SWAP network).
        let n = 3;
        let x = 5usize;
        let c = qft(n).unwrap();
        let s = run_unitary(&c, StateVector::basis(n, x));
        let len = 1usize << n;
        let norm = 1.0 / (len as f64).sqrt();
        for y in 0..len {
            let phase = 2.0 * PI * (x as f64) * (y as f64) / len as f64;
            let expect = C64::from_polar_unit(phase).scale(norm);
            assert!(
                s.amplitude(y).approx_eq(expect, 1e-9),
                "amplitude at {y}: {} vs {}",
                s.amplitude(y),
                expect
            );
        }
    }

    #[test]
    fn no_swap_variant_drops_swaps() {
        let with = qft(6).unwrap();
        let without = qft_no_swaps(6).unwrap();
        assert_eq!(with.gate_count() - 3, without.gate_count());
        assert!(without.gates().iter().all(|g| g.name() != "swap"));
    }

    #[test]
    fn single_qubit_qft_is_hadamard() {
        let c = qft(1).unwrap();
        assert_eq!(c.gate_count(), 1);
    }
}
