//! Quantum phase estimation circuits.
//!
//! QPE estimates the eigenphase of a unitary; here the unitary is a
//! single-qubit phase rotation `U = diag(1, e^{2πi φ})`, so the exact
//! output is known and the simulator can verify the whole circuit. The
//! interaction graph is a star from every counting qubit into the
//! eigenstate register — a distinctive "funnel" profile between GHZ
//! stars and QFT completeness.

use std::f64::consts::PI;

use qcs_circuit::circuit::{Circuit, CircuitError};

/// Builds a QPE circuit with `precision` counting qubits estimating the
/// phase `phi ∈ [0, 1)` of `U = diag(1, e^{2πi φ})`.
///
/// Layout: qubits `0..precision` are the counting register (qubit `k`
/// weights `2^k`), qubit `precision` holds the eigenstate `|1⟩`.
/// The circuit prepares the eigenstate, applies controlled powers of `U`,
/// and finishes with the inverse QFT on the counting register.
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for valid sizes).
///
/// # Panics
///
/// Panics if `precision == 0` or `phi` is outside `[0, 1)`.
pub fn phase_estimation(precision: usize, phi: f64) -> Result<Circuit, CircuitError> {
    assert!(precision > 0, "need at least one counting qubit");
    assert!((0.0..1.0).contains(&phi), "phase must be in [0, 1)");
    let target = precision;
    let mut c = Circuit::with_name(precision + 1, format!("qpe-{precision}-phi{phi}"));
    // Eigenstate |1⟩ of U.
    c.x(target)?;
    // Superposition over the counting register.
    for q in 0..precision {
        c.h(q)?;
    }
    // Controlled-U^(2^j): counting qubit k controls the power
    // 2^(precision−1−k), matching the bit order of the swap-free inverse
    // QFT below (which absorbs the usual bit-reversal SWAP network).
    for k in 0..precision {
        let angle = 2.0 * PI * phi * (1u64 << (precision - 1 - k)) as f64;
        c.cphase(k, target, angle)?;
    }
    // Inverse QFT on the counting register (no swaps; bit-reversed
    // reading is folded into the controlled-power weighting above).
    inverse_qft_no_swap(&mut c, precision)?;
    for q in 0..precision {
        c.measure(q)?;
    }
    Ok(c)
}

/// Appends the swap-free inverse QFT on qubits `0..n`.
fn inverse_qft_no_swap(c: &mut Circuit, n: usize) -> Result<(), CircuitError> {
    for target in 0..n {
        for control in 0..target {
            let k = target - control;
            c.cphase(control, target, -PI / (1u64 << k) as f64)?;
        }
        c.h(target)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::interaction::interaction_graph;
    use qcs_sim::exec::run_unitary;
    use qcs_sim::StateVector;

    /// Runs QPE and returns the most probable counting-register value.
    fn estimate(precision: usize, phi: f64) -> usize {
        let c = phase_estimation(precision, phi).unwrap();
        let s = run_unitary(&c, StateVector::zero(precision + 1));
        let probs = s.probabilities();
        let mask = (1usize << precision) - 1;
        // Marginalize over the eigenstate qubit.
        let mut counting = vec![0.0; 1 << precision];
        for (i, p) in probs.iter().enumerate() {
            counting[i & mask] += p;
        }
        counting
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    }

    #[test]
    fn exact_phases_recovered() {
        // φ = k / 2^n is represented exactly: QPE returns k with
        // certainty.
        for (precision, k) in [(3usize, 3u64), (4, 5), (4, 0), (5, 17)] {
            let phi = k as f64 / (1u64 << precision) as f64;
            let measured = estimate(precision, phi);
            assert_eq!(
                measured as u64, k,
                "precision {precision}, phase {phi}: got {measured}"
            );
        }
    }

    #[test]
    fn inexact_phase_lands_on_nearest() {
        // φ = 0.3 with 4 bits: nearest grid points are 5/16 = 0.3125.
        let measured = estimate(4, 0.3);
        assert!(
            measured == 5 || measured == 4,
            "expected 4 or 5, got {measured}"
        );
    }

    #[test]
    fn interaction_profile_is_funnel_plus_counting_mesh() {
        let c = phase_estimation(5, 0.25).unwrap();
        let ig = interaction_graph(&c);
        // The eigenstate qubit touches every counting qubit.
        assert_eq!(ig.degree(5), 5);
        // Counting register is fully meshed by the inverse QFT.
        for a in 0..5 {
            for b in (a + 1)..5 {
                assert!(ig.has_edge(a, b), "counting pair ({a},{b}) missing");
            }
        }
    }

    #[test]
    fn gate_count_scales_quadratically() {
        let c3 = phase_estimation(3, 0.5).unwrap().gate_count();
        let c6 = phase_estimation(6, 0.5).unwrap().gate_count();
        assert!(c6 > 2 * c3); // inverse QFT dominates with n²/2 cphases
    }

    #[test]
    #[should_panic(expected = "must be in")]
    fn rejects_out_of_range_phase() {
        let _ = phase_estimation(3, 1.5);
    }
}
