//! Quantum-volume model circuits.
//!
//! The IBM quantum-volume protocol's circuit shape: square circuits
//! (depth = width) of layers, each pairing the qubits under a random
//! permutation and applying a generic two-qubit block to every pair. The
//! interaction graph rapidly approaches all-to-all with near-uniform
//! weights — the hardest regular mapping profile.

use qcs_rng::ChaCha8Rng;
use qcs_rng::{Rng, SeedableRng};

use qcs_circuit::circuit::{Circuit, CircuitError};

/// Appends a pseudo-SU(4) block on `(a, b)`: rotations, CNOT, rotations,
/// CNOT, rotations — the standard KAK-style template.
fn su4_block<R: Rng>(c: &mut Circuit, a: usize, b: usize, rng: &mut R) -> Result<(), CircuitError> {
    let rot = |c: &mut Circuit, q: usize, rng: &mut R| -> Result<(), CircuitError> {
        c.rz(q, rng.gen::<f64>() * std::f64::consts::TAU)?;
        c.ry(q, rng.gen::<f64>() * std::f64::consts::TAU)?;
        c.rz(q, rng.gen::<f64>() * std::f64::consts::TAU)?;
        Ok(())
    };
    rot(c, a, rng)?;
    rot(c, b, rng)?;
    c.cnot(a, b)?;
    rot(c, a, rng)?;
    rot(c, b, rng)?;
    c.cnot(b, a)?;
    rot(c, a, rng)?;
    rot(c, b, rng)?;
    Ok(())
}

/// Builds a quantum-volume model circuit: `depth` layers over `qubits`
/// qubits (use `depth = qubits` for the square QV shape).
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for valid widths).
///
/// # Panics
///
/// Panics if `qubits < 2`.
pub fn quantum_volume(qubits: usize, depth: usize, seed: u64) -> Result<Circuit, CircuitError> {
    assert!(qubits >= 2, "quantum volume needs at least two qubits");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut c = Circuit::with_name(qubits, format!("qvolume-{qubits}x{depth}"));
    for _ in 0..depth {
        // Random permutation, pair adjacent entries.
        let mut perm: Vec<usize> = (0..qubits).collect();
        for i in (1..perm.len()).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        for pair in perm.chunks_exact(2) {
            su4_block(&mut c, pair[0], pair[1], &mut rng)?;
        }
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::interaction::interaction_graph;

    #[test]
    fn layer_structure() {
        let n = 6;
        let c = quantum_volume(n, 1, 1).unwrap();
        // 3 pairs × (2 CNOT + 18 rotations) per layer.
        assert_eq!(c.two_qubit_gate_count(), 6);
        assert_eq!(c.gate_count(), 3 * 20);
    }

    #[test]
    fn odd_width_leaves_one_idle_per_layer() {
        let c = quantum_volume(5, 1, 2).unwrap();
        assert_eq!(c.two_qubit_gate_count(), 4); // 2 pairs
    }

    #[test]
    fn square_circuit_densifies_interactions() {
        let n = 6;
        let c = quantum_volume(n, n, 3).unwrap();
        let ig = interaction_graph(&c);
        // With 6 layers of random pairings most pairs appear.
        assert!(ig.density() > 0.5, "density {}", ig.density());
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            quantum_volume(4, 4, 7).unwrap(),
            quantum_volume(4, 4, 7).unwrap()
        );
        assert_ne!(
            quantum_volume(4, 4, 7).unwrap(),
            quantum_volume(4, 4, 8).unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_single_qubit() {
        let _ = quantum_volume(1, 1, 0);
    }
}
