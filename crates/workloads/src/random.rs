//! Random circuit generation — the paper's synthetic benchmark class.
//!
//! A random circuit is parameterized by exactly the three "common
//! algorithm parameters" the paper contrasts with interaction-graph
//! metrics: qubit count, gate count and two-qubit-gate percentage. Fig. 4
//! exploits this: a random circuit generated to match a QAOA instance on
//! those three numbers still has a completely different interaction graph.

use qcs_rng::ChaCha8Rng;
use qcs_rng::{Rng, SeedableRng};

use qcs_circuit::circuit::{Circuit, CircuitError};
use qcs_circuit::gate::Gate;

/// Specification of a random circuit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomSpec {
    /// Number of qubits (≥ 1; two-qubit gates need ≥ 2).
    pub qubits: usize,
    /// Total gate count.
    pub gates: usize,
    /// Fraction of two-qubit gates in `[0, 1]`.
    pub two_qubit_fraction: f64,
    /// RNG seed (the generator is fully deterministic per seed).
    pub seed: u64,
}

/// Generates a random circuit per `spec`.
///
/// Two-qubit gates are CNOT or CZ on uniformly random distinct pairs;
/// single-qubit gates are drawn from {X, Y, Z, H, S, T, Rx, Ry, Rz} with
/// uniform random angles. The realized two-qubit count is exactly
/// `round(gates × fraction)` (placed at random positions), so the spec's
/// percentage is honoured deterministically rather than in expectation.
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for valid specs).
///
/// # Panics
///
/// Panics if `qubits == 0`, the fraction is outside `[0, 1]`, or a
/// two-qubit gate is requested with fewer than 2 qubits.
pub fn random_circuit(spec: &RandomSpec) -> Result<Circuit, CircuitError> {
    assert!(spec.qubits > 0, "need at least one qubit");
    assert!(
        (0.0..=1.0).contains(&spec.two_qubit_fraction),
        "two-qubit fraction must be in [0, 1]"
    );
    let two_qubit_count = (spec.gates as f64 * spec.two_qubit_fraction).round() as usize;
    assert!(
        two_qubit_count == 0 || spec.qubits >= 2,
        "two-qubit gates need at least two qubits"
    );

    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    // Choose which positions hold two-qubit gates (partial Fisher–Yates).
    let mut slots: Vec<bool> = (0..spec.gates).map(|i| i < two_qubit_count).collect();
    for i in (1..slots.len()).rev() {
        let j = rng.gen_range(0..=i);
        slots.swap(i, j);
    }

    let mut c = Circuit::with_name(spec.qubits, format!("random-{}", spec.seed));
    for is_two in slots {
        let gate = if is_two {
            let a = rng.gen_range(0..spec.qubits);
            let mut b = rng.gen_range(0..spec.qubits - 1);
            if b >= a {
                b += 1;
            }
            if rng.gen_bool(0.5) {
                Gate::Cnot(a, b)
            } else {
                Gate::Cz(a, b)
            }
        } else {
            let q = rng.gen_range(0..spec.qubits);
            match rng.gen_range(0..9) {
                0 => Gate::X(q),
                1 => Gate::Y(q),
                2 => Gate::Z(q),
                3 => Gate::H(q),
                4 => Gate::S(q),
                5 => Gate::T(q),
                6 => Gate::Rx(q, rng.gen::<f64>() * std::f64::consts::TAU),
                7 => Gate::Ry(q, rng.gen::<f64>() * std::f64::consts::TAU),
                _ => Gate::Rz(q, rng.gen::<f64>() * std::f64::consts::TAU),
            }
        };
        c.push(gate)?;
    }
    Ok(c)
}

/// Convenience wrapper matching Fig. 4's caption: a random circuit with
/// the same "size parameters" as a given real circuit.
///
/// # Errors
///
/// As [`random_circuit`].
pub fn random_like(
    qubits: usize,
    gates: usize,
    two_qubit_fraction: f64,
    seed: u64,
) -> Result<Circuit, CircuitError> {
    random_circuit(&RandomSpec {
        qubits,
        gates,
        two_qubit_fraction,
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honours_size_parameters_exactly() {
        let spec = RandomSpec {
            qubits: 6,
            gates: 456,
            two_qubit_fraction: 0.135,
            seed: 42,
        };
        let c = random_circuit(&spec).unwrap();
        assert_eq!(c.qubit_count(), 6);
        assert_eq!(c.gate_count(), 456);
        assert_eq!(c.two_qubit_gate_count(), 62); // round(456 × 0.135)
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = RandomSpec {
            qubits: 5,
            gates: 100,
            two_qubit_fraction: 0.4,
            seed: 7,
        };
        assert_eq!(
            random_circuit(&spec).unwrap(),
            random_circuit(&spec).unwrap()
        );
        let other = RandomSpec { seed: 8, ..spec };
        assert_ne!(
            random_circuit(&spec).unwrap(),
            random_circuit(&other).unwrap()
        );
    }

    #[test]
    fn extreme_fractions() {
        let all_single = random_circuit(&RandomSpec {
            qubits: 3,
            gates: 50,
            two_qubit_fraction: 0.0,
            seed: 1,
        })
        .unwrap();
        assert_eq!(all_single.two_qubit_gate_count(), 0);
        let all_two = random_circuit(&RandomSpec {
            qubits: 3,
            gates: 50,
            two_qubit_fraction: 1.0,
            seed: 1,
        })
        .unwrap();
        assert_eq!(all_two.two_qubit_gate_count(), 50);
    }

    #[test]
    fn single_qubit_circuit() {
        let c = random_circuit(&RandomSpec {
            qubits: 1,
            gates: 20,
            two_qubit_fraction: 0.0,
            seed: 3,
        })
        .unwrap();
        assert_eq!(c.gate_count(), 20);
    }

    #[test]
    #[should_panic(expected = "at least two qubits")]
    fn rejects_impossible_two_qubit_request() {
        let _ = random_circuit(&RandomSpec {
            qubits: 1,
            gates: 10,
            two_qubit_fraction: 0.5,
            seed: 0,
        });
    }

    #[test]
    fn operands_always_distinct() {
        let c = random_circuit(&RandomSpec {
            qubits: 2,
            gates: 200,
            two_qubit_fraction: 0.9,
            seed: 11,
        })
        .unwrap();
        for g in c.iter() {
            let qs = g.qubits();
            if qs.len() == 2 {
                assert_ne!(qs[0], qs[1]);
            }
        }
    }
}
