//! Reversible-logic circuits — the RevLib \[48\] substitute.
//!
//! RevLib circuits are classical reversible functions expressed as
//! X/CNOT/Toffoli networks. This module synthesizes the same class:
//! seeded random Toffoli networks (matching RevLib's size spread) and a
//! deterministic reversible incrementer, both purely classical so the
//! simulator can check them on basis states.

use qcs_rng::ChaCha8Rng;
use qcs_rng::{Rng, SeedableRng};

use qcs_circuit::circuit::{Circuit, CircuitError};
use qcs_circuit::gate::Gate;

use crate::grover::multi_controlled_x;

/// Specification of a random reversible (Toffoli) network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReversibleSpec {
    /// Number of bits (qubits).
    pub qubits: usize,
    /// Number of gates.
    pub gates: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a random reversible network of X, CNOT and Toffoli gates
/// (weighted 20 / 40 / 40 %, Toffoli degrading to CNOT/X on narrow
/// registers).
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for valid specs).
///
/// # Panics
///
/// Panics if `qubits == 0`.
pub fn toffoli_network(spec: &ReversibleSpec) -> Result<Circuit, CircuitError> {
    assert!(spec.qubits > 0, "need at least one bit");
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
    let mut c = Circuit::with_name(spec.qubits, format!("reversible-{}", spec.seed));
    let pick_distinct = |rng: &mut ChaCha8Rng, n: usize, k: usize| -> Vec<usize> {
        let mut pool: Vec<usize> = (0..n).collect();
        for i in (1..pool.len()).rev() {
            let j = rng.gen_range(0..=i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    };
    for _ in 0..spec.gates {
        let roll = rng.gen_range(0..10);
        let gate = if roll < 2 || spec.qubits == 1 {
            Gate::X(rng.gen_range(0..spec.qubits))
        } else if roll < 6 || spec.qubits == 2 {
            let ops = pick_distinct(&mut rng, spec.qubits, 2);
            Gate::Cnot(ops[0], ops[1])
        } else {
            let ops = pick_distinct(&mut rng, spec.qubits, 3);
            Gate::Toffoli(ops[0], ops[1], ops[2])
        };
        c.push(gate)?;
    }
    Ok(c)
}

/// Builds a reversible incrementer: maps `|x⟩ → |x + 1 mod 2^n⟩` on the
/// low `n` qubits, using `n.saturating_sub(2)` ladder ancillas above them.
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for valid `n`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn incrementer(n: usize) -> Result<Circuit, CircuitError> {
    assert!(n > 0, "incrementer needs at least one bit");
    let ancilla_count = n.saturating_sub(2);
    let width = n + ancilla_count;
    let ancillas: Vec<usize> = (n..width).collect();
    let mut c = Circuit::with_name(width, format!("increment-{n}"));
    // From the top bit down: bit k flips iff all lower bits are 1.
    for k in (1..n).rev() {
        let controls: Vec<usize> = (0..k).collect();
        multi_controlled_x(&mut c, &controls, k, &ancillas)?;
    }
    c.x(0)?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_sim::exec::run_unitary;
    use qcs_sim::StateVector;

    /// Applies a classical reversible circuit to a basis state and returns
    /// the output basis index.
    fn classical_out(c: &Circuit, input: usize) -> usize {
        let s = run_unitary(c, StateVector::basis(c.qubit_count(), input));
        s.probabilities()
            .iter()
            .position(|&p| p > 1.0 - 1e-9)
            .expect("classical circuit must keep basis states")
    }

    #[test]
    fn network_is_classical_permutation() {
        let spec = ReversibleSpec {
            qubits: 4,
            gates: 30,
            seed: 5,
        };
        let c = toffoli_network(&spec).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for input in 0..16usize {
            seen.insert(classical_out(&c, input));
        }
        assert_eq!(seen.len(), 16, "must be a bijection");
    }

    #[test]
    fn network_deterministic_and_sized() {
        let spec = ReversibleSpec {
            qubits: 6,
            gates: 100,
            seed: 9,
        };
        let a = toffoli_network(&spec).unwrap();
        assert_eq!(a, toffoli_network(&spec).unwrap());
        assert_eq!(a.gate_count(), 100);
    }

    #[test]
    fn narrow_registers_degrade_gracefully() {
        let one = toffoli_network(&ReversibleSpec {
            qubits: 1,
            gates: 10,
            seed: 0,
        })
        .unwrap();
        assert!(one.gates().iter().all(|g| g.arity() == 1));
        let two = toffoli_network(&ReversibleSpec {
            qubits: 2,
            gates: 10,
            seed: 0,
        })
        .unwrap();
        assert!(two.gates().iter().all(|g| g.arity() <= 2));
    }

    #[test]
    fn incrementer_counts() {
        let n = 3;
        let c = incrementer(n).unwrap();
        for x in 0..8usize {
            let out = classical_out(&c, x);
            // Ancillas must be restored: output fits in low n bits.
            assert_eq!(out >> n, 0, "ancilla leak for input {x}");
            assert_eq!(out & 0b111, (x + 1) % 8, "increment of {x}");
        }
    }

    #[test]
    fn single_bit_incrementer_is_x() {
        let c = incrementer(1).unwrap();
        assert_eq!(c.gate_count(), 1);
        assert_eq!(classical_out(&c, 0), 1);
        assert_eq!(classical_out(&c, 1), 0);
    }
}
