//! The qbench-style benchmark suite.
//!
//! The paper's evaluation compiles "200 quantum circuits … of a large
//! variety in size (1–54 qubits, 5–100000 gates, 10–90 % two-qubit gate
//! percentage) and type (random, reversible ones and those corresponding
//! to real algorithms)". [`generate_suite`] reproduces that collection
//! deterministically from a seed, cycling through every workload family
//! of this crate with sizes sampled across the same envelope.
//!
//! The default gate-count ceiling is 5 000 rather than 100 000 so the
//! whole suite maps in seconds; the ceiling is a [`SuiteConfig`] knob and
//! the envelope substitution is documented in DESIGN.md/EXPERIMENTS.md.

use qcs_rng::ChaCha8Rng;
use qcs_rng::{Rng, SeedableRng};

use qcs_circuit::circuit::{Circuit, CircuitStats};

use crate::random::RandomSpec;
use crate::reversible::ReversibleSpec;

/// The benchmark families in the suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Random gate soup (the paper's *synthetic* class).
    Random,
    /// Reversible Toffoli networks (RevLib substitute).
    Reversible,
    /// QAOA MaxCut.
    Qaoa,
    /// Quantum Fourier Transform.
    Qft,
    /// Grover search.
    Grover,
    /// GHZ preparation.
    Ghz,
    /// Bernstein–Vazirani.
    BernsteinVazirani,
    /// Cuccaro ripple-carry adder.
    Adder,
    /// Hardware-efficient VQE ansatz.
    Vqe,
    /// Quantum-volume model circuit.
    QuantumVolume,
    /// Grid random-circuit sampling.
    Supremacy,
    /// Quantum phase estimation.
    Qpe,
    /// W-state preparation cascade.
    WState,
    /// Trotterized transverse-field Ising evolution.
    Ising,
}

impl Family {
    /// All families, in sampling rotation order.
    pub fn all() -> &'static [Family] {
        use Family::*;
        &[
            Random,
            Reversible,
            Qaoa,
            Qft,
            Grover,
            Ghz,
            BernsteinVazirani,
            Adder,
            Vqe,
            QuantumVolume,
            Supremacy,
            Qpe,
            WState,
            Ising,
        ]
    }

    /// Whether the paper plots this family as "synthetically generated"
    /// (squares) rather than a real algorithm (circles).
    pub fn is_synthetic(&self) -> bool {
        matches!(self, Family::Random)
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Family::Random => "random",
            Family::Reversible => "reversible",
            Family::Qaoa => "qaoa",
            Family::Qft => "qft",
            Family::Grover => "grover",
            Family::Ghz => "ghz",
            Family::BernsteinVazirani => "bv",
            Family::Adder => "adder",
            Family::Vqe => "vqe",
            Family::QuantumVolume => "qvolume",
            Family::Supremacy => "supremacy",
            Family::Qpe => "qpe",
            Family::WState => "wstate",
            Family::Ising => "ising",
        };
        f.write_str(s)
    }
}

/// One suite entry: a circuit plus its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Benchmark {
    /// Unique name within the suite.
    pub name: String,
    /// Generating family.
    pub family: Family,
    /// The circuit itself.
    pub circuit: Circuit,
}

impl Benchmark {
    /// Whether this entry belongs to the synthetic (random) class.
    pub fn is_synthetic(&self) -> bool {
        self.family.is_synthetic()
    }

    /// The circuit's size statistics.
    pub fn stats(&self) -> CircuitStats {
        self.circuit.stats()
    }
}

/// Suite generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteConfig {
    /// Number of benchmarks to produce (paper: 200).
    pub count: usize,
    /// Maximum circuit width (paper: 54).
    pub max_qubits: usize,
    /// Gate-count ceiling for the unbounded families (paper envelope:
    /// 100 000; default here 5 000 for tractable full-suite runs).
    pub max_gates: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            count: 200,
            max_qubits: 54,
            max_gates: 5_000,
            seed: 0xDA7E_2022,
        }
    }
}

/// Log-uniform sample in `[lo, hi]`.
fn log_uniform<R: Rng>(lo: usize, hi: usize, rng: &mut R) -> usize {
    let (lo_f, hi_f) = (lo.max(1) as f64, hi.max(2) as f64);
    let x = rng.gen::<f64>() * (hi_f.ln() - lo_f.ln()) + lo_f.ln();
    (x.exp().round() as usize).clamp(lo, hi)
}

/// Generates the deterministic benchmark suite for `config`.
///
/// Families rotate round-robin so every class contributes ~equally; sizes
/// are sampled per family across the paper's envelope. The result is
/// fully reproducible for a fixed config.
pub fn generate_suite(config: &SuiteConfig) -> Vec<Benchmark> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let families = Family::all();
    let mut out = Vec::with_capacity(config.count);
    for i in 0..config.count {
        let family = families[i % families.len()];
        let seed = rng.gen::<u64>();
        let circuit = build_member(family, config, seed, &mut rng);
        out.push(Benchmark {
            name: format!("{family}-{i:03}"),
            family,
            circuit,
        });
    }
    out
}

fn build_member<R: Rng>(family: Family, config: &SuiteConfig, seed: u64, rng: &mut R) -> Circuit {
    let max_q = config.max_qubits.max(4);
    match family {
        Family::Random => {
            let qubits = rng.gen_range(2..=max_q);
            let gates = log_uniform(5, config.max_gates, rng);
            let frac = rng.gen_range(0.10..=0.90);
            crate::random::random_circuit(&RandomSpec {
                qubits,
                gates,
                two_qubit_fraction: frac,
                seed,
            })
            .expect("valid random spec")
        }
        Family::Reversible => {
            let qubits = rng.gen_range(3..=max_q);
            let gates = log_uniform(5, config.max_gates, rng);
            crate::reversible::toffoli_network(&ReversibleSpec {
                qubits,
                gates,
                seed,
            })
            .expect("valid reversible spec")
        }
        Family::Qaoa => {
            let qubits = rng.gen_range(4..=max_q);
            let degree = rng.gen_range(2..=4);
            let layers = rng.gen_range(1..=8);
            crate::qaoa::qaoa_maxcut_regular(qubits, degree, layers, seed)
                .expect("valid qaoa instance")
        }
        Family::Qft => {
            let qubits = rng.gen_range(2..=max_q.min(32));
            crate::qft::qft(qubits).expect("valid qft")
        }
        Family::Grover => {
            // Width = 2n − 2 must stay within max_qubits.
            let n_max = (max_q + 2) / 2;
            let n = rng.gen_range(2..=n_max.min(12));
            // Cap iterations so gate count respects the ceiling.
            let iters = crate::grover::optimal_iterations(n).min(20);
            crate::grover::grover_with_iterations(n, rng.gen_range(0..1u64 << n), iters)
                .expect("valid grover instance")
        }
        Family::Ghz => {
            let qubits = rng.gen_range(2..=max_q);
            if rng.gen_bool(0.5) {
                crate::ghz::ghz_chain(qubits).expect("valid ghz")
            } else {
                crate::ghz::ghz_star(qubits).expect("valid ghz")
            }
        }
        Family::BernsteinVazirani => {
            let n = rng.gen_range(2..=max_q - 1);
            let secret = rng.gen::<u64>() & ((1u64 << n.min(63)) - 1);
            crate::bv::bernstein_vazirani(n.min(63), secret).expect("valid bv")
        }
        Family::Adder => {
            let bits = rng.gen_range(1..=(max_q - 2) / 2);
            crate::adder::cuccaro_adder(bits).expect("valid adder")
        }
        Family::Vqe => {
            let qubits = rng.gen_range(2..=max_q);
            let layers = rng.gen_range(1..=10);
            crate::vqe::hardware_efficient_ansatz(qubits, layers, seed).expect("valid vqe")
        }
        Family::QuantumVolume => {
            let qubits = rng.gen_range(2..=max_q.min(20));
            crate::qvolume::quantum_volume(qubits, qubits, seed).expect("valid qv")
        }
        Family::Supremacy => {
            let rows = rng.gen_range(2..=7);
            let max_cols = (max_q / rows).max(2);
            let cols = rng.gen_range(2..=max_cols.min(7));
            let cycles = rng.gen_range(4..=20);
            crate::supremacy::supremacy_grid(rows, cols, cycles, seed).expect("valid supremacy")
        }
        Family::Qpe => {
            let precision = rng.gen_range(2..=max_q.min(24) - 1);
            let phi = rng.gen_range(0.0..1.0);
            crate::qpe::phase_estimation(precision, phi).expect("valid qpe")
        }
        Family::WState => {
            let qubits = rng.gen_range(2..=max_q);
            crate::wstate::w_state(qubits).expect("valid wstate")
        }
        Family::Ising => {
            let qubits = rng.gen_range(4..=max_q);
            let degree = rng.gen_range(2..=4);
            let steps = rng.gen_range(1..=8);
            crate::hamiltonian::ising_random(qubits, degree, steps, 0.1, seed).expect("valid ising")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_suite_has_200_members() {
        let suite = generate_suite(&SuiteConfig {
            count: 28, // two full rotations, cheap for tests
            ..SuiteConfig::default()
        });
        assert_eq!(suite.len(), 28);
        // Every family appears exactly twice in 28 entries.
        for f in Family::all() {
            assert_eq!(suite.iter().filter(|b| b.family == *f).count(), 2);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SuiteConfig {
            count: 14,
            ..SuiteConfig::default()
        };
        assert_eq!(generate_suite(&cfg), generate_suite(&cfg));
        let other = SuiteConfig { seed: 1, ..cfg };
        assert_ne!(generate_suite(&cfg), generate_suite(&other));
    }

    #[test]
    fn suite_respects_envelope() {
        let cfg = SuiteConfig {
            count: 33,
            max_qubits: 30,
            max_gates: 2_000,
            seed: 7,
        };
        for b in generate_suite(&cfg) {
            let s = b.stats();
            assert!(s.qubits <= 30, "{}: {} qubits", b.name, s.qubits);
            assert!(s.gates >= 1, "{}: empty", b.name);
            // Families with analytic size (qft, grover…) may exceed the
            // random ceiling slightly; random/reversible must respect it.
            if matches!(b.family, Family::Random | Family::Reversible) {
                assert!(s.gates <= 2_000, "{}: {} gates", b.name, s.gates);
            }
        }
    }

    #[test]
    fn synthetic_flag_matches_family() {
        let suite = generate_suite(&SuiteConfig {
            count: 14,
            ..SuiteConfig::default()
        });
        for b in &suite {
            assert_eq!(b.is_synthetic(), b.family == Family::Random);
        }
        assert!(suite.iter().any(|b| b.is_synthetic()));
        assert!(suite.iter().any(|b| !b.is_synthetic()));
    }

    #[test]
    fn names_are_unique() {
        let suite = generate_suite(&SuiteConfig {
            count: 28,
            ..SuiteConfig::default()
        });
        let names: std::collections::BTreeSet<&str> =
            suite.iter().map(|b| b.name.as_str()).collect();
        assert_eq!(names.len(), suite.len());
    }

    #[test]
    fn family_display_round_trip() {
        assert_eq!(Family::Qaoa.to_string(), "qaoa");
        assert_eq!(Family::all().len(), 14);
    }
}
