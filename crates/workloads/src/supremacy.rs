//! Grid random-circuit-sampling ("supremacy-style") circuits.
//!
//! The Sycamore-experiment circuit shape the paper's introduction cites:
//! qubits on a 2-D grid, cycles of random single-qubit gates from
//! {√X, √Y, T} followed by CZ gates on one of four alternating grid-edge
//! patterns. The interaction graph is exactly the grid — a perfect match
//! for grid devices and a routing stress test for everything else.

use qcs_rng::ChaCha8Rng;
use qcs_rng::{Rng, SeedableRng};

use qcs_circuit::circuit::{Circuit, CircuitError};
use qcs_circuit::gate::Gate;

/// Builds a supremacy-style grid circuit on `rows × cols` qubits with the
/// given number of cycles. Qubit `(r, c)` has index `r * cols + c`.
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for valid grids).
///
/// # Panics
///
/// Panics if the grid is empty.
pub fn supremacy_grid(
    rows: usize,
    cols: usize,
    cycles: usize,
    seed: u64,
) -> Result<Circuit, CircuitError> {
    assert!(rows * cols > 0, "grid must be non-empty");
    let n = rows * cols;
    let id = |r: usize, c: usize| r * cols + c;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut circuit = Circuit::with_name(n, format!("supremacy-{rows}x{cols}-c{cycles}"));

    // Initial Hadamard wall.
    for q in 0..n {
        circuit.h(q)?;
    }

    for cycle in 0..cycles {
        // Random single-qubit layer: √X ≈ Rx(π/2), √Y ≈ Ry(π/2), T.
        for q in 0..n {
            let g = match rng.gen_range(0..3) {
                0 => Gate::Rx(q, std::f64::consts::FRAC_PI_2),
                1 => Gate::Ry(q, std::f64::consts::FRAC_PI_2),
                _ => Gate::T(q),
            };
            circuit.push(g)?;
        }
        // CZ pattern: alternate among 4 stagger patterns.
        match cycle % 4 {
            0 => {
                // Horizontal, even columns.
                for r in 0..rows {
                    for c in (0..cols.saturating_sub(1)).step_by(2) {
                        circuit.cz(id(r, c), id(r, c + 1))?;
                    }
                }
            }
            1 => {
                // Vertical, even rows.
                for r in (0..rows.saturating_sub(1)).step_by(2) {
                    for c in 0..cols {
                        circuit.cz(id(r, c), id(r + 1, c))?;
                    }
                }
            }
            2 => {
                // Horizontal, odd columns.
                for r in 0..rows {
                    for c in (1..cols.saturating_sub(1)).step_by(2) {
                        circuit.cz(id(r, c), id(r, c + 1))?;
                    }
                }
            }
            _ => {
                // Vertical, odd rows.
                for r in (1..rows.saturating_sub(1)).step_by(2) {
                    for c in 0..cols {
                        circuit.cz(id(r, c), id(r + 1, c))?;
                    }
                }
            }
        }
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::interaction::interaction_graph;
    use qcs_graph::generate;

    #[test]
    fn interaction_graph_is_subset_of_grid() {
        let (rows, cols) = (3, 4);
        let c = supremacy_grid(rows, cols, 8, 1).unwrap();
        let ig = interaction_graph(&c);
        let grid = generate::grid_graph(rows, cols);
        for (u, v, _) in ig.edges() {
            assert!(grid.has_edge(u, v), "non-grid interaction ({u},{v})");
        }
    }

    #[test]
    fn enough_cycles_cover_whole_grid() {
        let (rows, cols) = (3, 3);
        let c = supremacy_grid(rows, cols, 8, 2).unwrap();
        let ig = interaction_graph(&c);
        let grid = generate::grid_graph(rows, cols);
        assert_eq!(ig.edge_count(), grid.edge_count());
    }

    #[test]
    fn cycle_gate_counts() {
        let c = supremacy_grid(2, 2, 4, 3).unwrap();
        // 4 H + 4 cycles × 4 single-qubit; CZ pattern per cycle on 2×2:
        // cycle 0: 2 horizontal; cycle 1: 2 vertical; cycle 2: 0; cycle 3: 0.
        assert_eq!(c.gate_count(), 4 + 16 + 4);
        assert_eq!(c.two_qubit_gate_count(), 4);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            supremacy_grid(3, 3, 5, 11).unwrap(),
            supremacy_grid(3, 3, 5, 11).unwrap()
        );
    }

    #[test]
    fn single_row_grid() {
        let c = supremacy_grid(1, 5, 4, 0).unwrap();
        let ig = interaction_graph(&c);
        // Only horizontal patterns can fire.
        assert!(ig.edge_count() <= 4);
    }
}
