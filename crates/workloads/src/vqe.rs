//! Hardware-efficient VQE ansatz circuits.
//!
//! The variational workhorse of NISQ algorithms: alternating layers of
//! parametrized single-qubit rotations and a linear CZ entangling chain.
//! Its interaction graph is a path with weight equal to the layer count.

use qcs_rng::ChaCha8Rng;
use qcs_rng::{Rng, SeedableRng};

use qcs_circuit::circuit::{Circuit, CircuitError};

/// Builds a hardware-efficient ansatz: `layers` rounds of per-qubit
/// `Ry · Rz` rotations followed by a CZ chain, with a final rotation
/// layer. Angles are seeded.
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for `n ≥ 1`).
///
/// # Panics
///
/// Panics if `qubits == 0`.
pub fn hardware_efficient_ansatz(
    qubits: usize,
    layers: usize,
    seed: u64,
) -> Result<Circuit, CircuitError> {
    assert!(qubits > 0, "ansatz needs at least one qubit");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut c = Circuit::with_name(qubits, format!("vqe-{qubits}q-l{layers}"));
    let rotation_layer = |c: &mut Circuit, rng: &mut ChaCha8Rng| -> Result<(), CircuitError> {
        for q in 0..qubits {
            c.ry(q, rng.gen::<f64>() * std::f64::consts::TAU)?;
            c.rz(q, rng.gen::<f64>() * std::f64::consts::TAU)?;
        }
        Ok(())
    };
    for _ in 0..layers {
        rotation_layer(&mut c, &mut rng)?;
        for q in 1..qubits {
            c.cz(q - 1, q)?;
        }
    }
    rotation_layer(&mut c, &mut rng)?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::interaction::interaction_graph;

    #[test]
    fn gate_count_formula() {
        let (n, l) = (6, 3);
        let c = hardware_efficient_ansatz(n, l, 1).unwrap();
        assert_eq!(c.gate_count(), (l + 1) * 2 * n + l * (n - 1));
    }

    #[test]
    fn interaction_graph_is_weighted_path() {
        let c = hardware_efficient_ansatz(5, 4, 2).unwrap();
        let ig = interaction_graph(&c);
        assert_eq!(ig.edge_count(), 4);
        assert_eq!(ig.weight(0, 1), Some(4.0));
        assert_eq!(ig.weight(0, 2), None);
    }

    #[test]
    fn zero_layers_still_rotates() {
        let c = hardware_efficient_ansatz(3, 0, 5).unwrap();
        assert_eq!(c.two_qubit_gate_count(), 0);
        assert_eq!(c.gate_count(), 6);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            hardware_efficient_ansatz(4, 2, 9).unwrap(),
            hardware_efficient_ansatz(4, 2, 9).unwrap()
        );
    }
}
