//! W-state preparation circuits.
//!
//! The W state `(|100…⟩ + |010…⟩ + … + |0…01⟩)/√n` is the other standard
//! entanglement benchmark next to GHZ; its cascade construction yields a
//! chain interaction graph with *decreasing* rotation angles — a
//! real-algorithm profile with non-uniform single-qubit structure.

use qcs_circuit::circuit::{Circuit, CircuitError};

/// Builds an `n`-qubit W-state preparation via the standard cascade:
/// qubit 0 starts in `|1⟩`; each step rotates part of the excitation
/// amplitude onto the next qubit with a controlled-Ry built from
/// `Ry · CZ · Ry`, followed by a CNOT redistributing the excitation.
///
/// # Errors
///
/// Propagates [`CircuitError`] (unreachable for `n ≥ 1`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn w_state(n: usize) -> Result<Circuit, CircuitError> {
    assert!(n > 0, "need at least one qubit");
    let mut c = Circuit::with_name(n, format!("wstate-{n}"));
    c.x(0)?;
    for k in 1..n {
        // Remaining excitation is on qubit k-1 with squared amplitude
        // (n-k+1)/n relative weight; split off 1/(n-k+1) onto qubit k.
        let remaining = (n - k + 1) as f64;
        let theta = (1.0 / remaining.sqrt()).acos() * 2.0;
        // Controlled-Ry(θ) with control k-1, target k, via the
        // Ry(θ/2)·CZ·Ry(−θ/2) conjugation.
        c.ry(k, theta / 2.0)?;
        c.cz(k - 1, k)?;
        c.ry(k, -theta / 2.0)?;
        // Move the "remaining" branch onto qubit k: CNOT(k, k-1) clears
        // the control when the excitation moved.
        c.cnot(k, k - 1)?;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcs_circuit::interaction::interaction_graph;
    use qcs_sim::exec::run_unitary;
    use qcs_sim::StateVector;

    #[test]
    fn produces_the_w_state() {
        for n in 2..=6 {
            let c = w_state(n).unwrap();
            let s = run_unitary(&c, StateVector::zero(n));
            let probs = s.probabilities();
            let expect = 1.0 / n as f64;
            for (i, p) in probs.iter().enumerate() {
                if i.count_ones() == 1 {
                    assert!(
                        (p - expect).abs() < 1e-9,
                        "n={n}: weight-1 state {i:b} has p={p}, want {expect}"
                    );
                } else {
                    assert!(*p < 1e-9, "n={n}: state {i:b} has spurious p={p}");
                }
            }
        }
    }

    #[test]
    fn chain_interaction_graph() {
        let c = w_state(6).unwrap();
        let ig = interaction_graph(&c);
        assert_eq!(ig.edge_count(), 5);
        for k in 1..6 {
            assert_eq!(ig.weight(k - 1, k), Some(2.0)); // CZ + CNOT
        }
    }

    #[test]
    fn single_qubit_case() {
        let c = w_state(1).unwrap();
        let s = run_unitary(&c, StateVector::zero(1));
        assert!((s.probabilities()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gate_count_linear() {
        assert_eq!(w_state(5).unwrap().gate_count(), 1 + 4 * 4);
    }
}
