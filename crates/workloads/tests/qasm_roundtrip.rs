//! Property test: QASM emission and parsing are mutually inverse on the
//! random-circuit family.
//!
//! For seeded random circuits spanning the generator's whole parameter
//! space, `parse(print(c))` must reproduce the exact gate list (angles
//! included — the printer uses shortest-round-trip float formatting),
//! and a second `print` must be a byte-for-byte fixpoint. This is the
//! contract the compilation daemon leans on when it ships circuits as
//! QASM text.

use qcs_circuit::qasm;
use qcs_workloads::random::{random_circuit, RandomSpec};

#[test]
fn random_circuits_round_trip_through_qasm() {
    qcs_check::check("qasm_roundtrip_random", 64, |g| {
        let qubits = g.usize_in_incl(1..=24);
        let spec = RandomSpec {
            qubits,
            gates: g.usize_in_incl(0..=300),
            // Two-qubit gates need two qubits to act on.
            two_qubit_fraction: if qubits < 2 { 0.0 } else { g.f64_unit() },
            seed: g.u64(),
        };
        let circuit = random_circuit(&spec).expect("spec is within generator bounds");

        let text = qasm::print(&circuit);
        let reparsed = qasm::parse(&text).expect("printer output must be parseable");
        assert_eq!(
            reparsed.qubit_count(),
            circuit.qubit_count(),
            "width survives"
        );
        assert_eq!(
            reparsed.gates(),
            circuit.gates(),
            "gate list survives exactly"
        );

        // Emit → parse → emit is a fixpoint: the second emission is
        // byte-identical to the first.
        assert_eq!(qasm::print(&reparsed), text, "printing is a fixpoint");
    });
}

#[test]
fn measured_random_circuits_round_trip() {
    qcs_check::check("qasm_roundtrip_measured", 16, |g| {
        let spec = RandomSpec {
            qubits: g.usize_in_incl(2..=12),
            gates: g.usize_in_incl(1..=80),
            two_qubit_fraction: 0.5,
            seed: g.u64(),
        };
        let mut circuit = random_circuit(&spec).expect("spec is within generator bounds");
        circuit.measure_all();
        let reparsed = qasm::parse(&qasm::print(&circuit)).expect("parseable");
        assert_eq!(reparsed.gates(), circuit.gates());
    });
}
