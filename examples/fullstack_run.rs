//! A complete full-stack run (Fig. 1): OpenQASM source in, control
//! events out, with the co-design layer choosing the mapper.
//!
//! Run with: `cargo run --example fullstack_run`

use nisq_codesign::stack::pipeline::FullStack;
use nisq_codesign::topology::surface::surface17;

const PROGRAM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
creg c[6];
// GHZ-like entangling chain with some phase structure.
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[3];
cx q[3],q[4];
cx q[4],q[5];
rz(pi/4) q[5];
cx q[4],q[5];
measure q[0] -> c[0];
measure q[5] -> c[5];
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stack = FullStack::new(surface17());
    let run = stack.run_qasm(PROGRAM)?;

    println!("=== layer 1: frontend ===");
    println!(
        "parsed {} gates; optimizer removed {} (cancelled {}, merged {})",
        run.prepared.circuit.gate_count(),
        run.prepared.optimization.total_removed(),
        run.prepared.optimization.cancelled,
        run.prepared.optimization.merged,
    );

    println!("\n=== layer 2: co-design decision ===");
    println!("selected mapping strategy: {:?}", run.mapper_choice);
    println!(
        "placer = {}, router = {}",
        run.outcome.report.placer, run.outcome.report.router
    );

    println!("\n=== layer 3: compiler (mapping) ===");
    let r = &run.outcome.report;
    println!(
        "decomposed {} -> routed {} native gates ({} SWAPs, {:.1}% overhead)",
        r.decomposed_gates, r.routed_gates, r.swaps_inserted, r.gate_overhead_pct
    );
    println!(
        "estimated fidelity {:.4} -> {:.4}; makespan {:.0} ns",
        r.fidelity_before, r.fidelity_after, r.makespan_ns
    );

    println!("\n=== layer 4: quantum ISA ===");
    println!(
        "{} instructions ({} ops + {} waits), {} cycles @ {} ns",
        run.isa.instructions.len(),
        run.isa.instruction_count(),
        run.isa.wait_count(),
        run.isa.total_cycles,
        run.isa.cycle_ns
    );
    // First few assembly lines.
    for line in run.isa.to_assembly().lines().take(12) {
        println!("  {line}");
    }
    println!("  …");

    println!("\n=== layer 5: control electronics ===");
    println!(
        "{} events dispatched over {} analog channels",
        run.control.event_count(),
        run.control.channel_count()
    );
    for (channel, events) in run.control.iter().take(6) {
        println!("  {channel}: {} events", events.len());
    }
    println!("  …");
    Ok(())
}
