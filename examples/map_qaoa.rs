//! Mapping a QAOA workload: compare the trivial, look-ahead and
//! algorithm-driven mappers on the same MaxCut instance across devices —
//! the paper's motivating use case for algorithm-driven compilation.
//!
//! Run with: `cargo run --example map_qaoa`

use nisq_codesign::core::mapper::Mapper;
use nisq_codesign::topology::lattice::{full_device, grid_device};
use nisq_codesign::topology::surface::surface17;
use nisq_codesign::workloads::qaoa;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3-regular MaxCut instance on 12 qubits, depth-2 QAOA.
    let circuit = qaoa::qaoa_maxcut_regular(12, 3, 2, 0xC0FFEE)?;
    let stats = circuit.stats();
    println!(
        "QAOA instance: {} qubits, {} gates, {:.1}% two-qubit, depth {}",
        stats.qubits,
        stats.gates,
        stats.two_qubit_fraction * 100.0,
        stats.depth
    );

    let devices = vec![surface17(), grid_device(4, 4), full_device(12)];
    let mappers = vec![
        ("trivial", Mapper::trivial()),
        ("lookahead", Mapper::lookahead()),
        ("algorithm-driven", Mapper::algorithm_driven()),
    ];

    println!(
        "\n{:<14} {:<18} {:>7} {:>11} {:>11} {:>10}",
        "device", "mapper", "swaps", "overhead%", "depth-ov%", "fidelity"
    );
    println!("{}", "-".repeat(76));
    for device in &devices {
        for (label, mapper) in &mappers {
            let r = mapper.map(&circuit, device)?.report;
            println!(
                "{:<14} {:<18} {:>7} {:>11.1} {:>11.1} {:>10.4}",
                device.name(),
                label,
                r.swaps_inserted,
                r.gate_overhead_pct,
                r.depth_overhead_pct,
                r.fidelity_after
            );
        }
    }

    println!("\nreading the table:");
    println!("  • the all-to-all device needs no routing at all (0 swaps);");
    println!("  • on constrained devices the algorithm-driven mapper places the");
    println!("    MaxCut graph into the lattice first, cutting the SWAP bill;");
    println!("  • fewer inserted gates directly translate into higher estimated");
    println!("    fidelity — the co-design argument of the paper.");
    Ok(())
}
