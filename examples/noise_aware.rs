//! Hardware-aware compilation in action: route around degraded couplers
//! using calibration data, and watch estimated fidelity recover.
//!
//! Run with: `cargo run --example noise_aware`

use nisq_codesign::core::mapper::Mapper;
use nisq_codesign::core::place::TrivialPlacer;
use nisq_codesign::core::route::{NoiseAwareRouter, TrivialRouter};
use nisq_codesign::topology::lattice::grid_device;

/// The couplers that degrade: the top-right "L" of the grid — exactly
/// the corridor a hop-count router uses for corner-to-corner traffic.
const DEGRADED: [(usize, usize); 4] = [(0, 1), (1, 2), (2, 5), (5, 8)];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 3×3 grid:
    //
    //   0 — 1 — 2
    //   |   |   |
    //   3 — 4 — 5
    //   |   |   |
    //   6 — 7 — 8
    //
    let mut device = grid_device(3, 3);
    for (a, b) in DEGRADED {
        device.calibration_mut().set_two_qubit_fidelity(a, b, 0.80);
    }
    println!(
        "device {}: couplers {:?} degraded to fidelity 0.80 (rest at 0.99)",
        device.name(),
        DEGRADED
    );

    // A workload that repeatedly wants the corners to talk.
    let mut circuit = nisq_codesign::circuit::circuit::Circuit::new(9);
    for _ in 0..4 {
        circuit.cnot(0, 8)?;
    }
    println!(
        "workload: {} corner-to-corner CNOTs\n",
        circuit.two_qubit_gate_count()
    );

    for (label, mapper) in [
        (
            "fidelity-blind (trivial router)",
            Mapper::new(Box::new(TrivialPlacer), Box::new(TrivialRouter)),
        ),
        (
            "noise-aware router",
            Mapper::new(Box::new(TrivialPlacer), Box::new(NoiseAwareRouter)),
        ),
    ] {
        let outcome = mapper.map(&circuit, &device)?;
        let on_degraded = outcome
            .routed
            .circuit
            .gates()
            .iter()
            .filter(|g| {
                let qs = g.qubits();
                qs.len() == 2
                    && DEGRADED
                        .iter()
                        .any(|&(a, b)| (qs[0] == a && qs[1] == b) || (qs[0] == b && qs[1] == a))
            })
            .count();
        println!("{label}:");
        println!(
            "  SWAPs inserted:          {}",
            outcome.report.swaps_inserted
        );
        println!("  2q gates on bad couplers: {on_degraded}");
        println!(
            "  estimated fidelity:       {:.4}\n",
            outcome.report.fidelity_after
        );
    }

    println!("the noise-aware router detours through the healthy bottom-left of the");
    println!("chip — the calibration-driven behaviour the paper calls \"noise-aware");
    println!("compilation methods\" [30], enabled by error data flowing up the stack");
    Ok(())
}
