//! Interaction-graph profiling of a benchmark suite (the Section IV
//! workflow): extract Table-I metrics, prune codependent ones with a
//! Pearson correlation matrix, and cluster the algorithms.
//!
//! Run with: `cargo run --example profile_suite`

use nisq_codesign::core::profile::{
    cluster_profiles_selected, prune_codependent_metrics, CircuitProfile,
};
use nisq_codesign::workloads::suite::{generate_suite, SuiteConfig};
use qcs_rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SuiteConfig {
        count: 33,
        max_qubits: 16,
        max_gates: 500,
        ..SuiteConfig::default()
    };
    let suite = generate_suite(&config);
    println!("generated {} benchmark circuits\n", suite.len());

    let profiles: Vec<CircuitProfile> = suite
        .iter()
        .map(|b| CircuitProfile::of(&b.circuit))
        .collect();

    // A few example profiles: classical parameters + graph metrics.
    println!(
        "{:<16} {:>6} {:>7} {:>6} {:>8} {:>8} {:>8}",
        "circuit", "qubits", "gates", "2q%", "avg-sp", "max-deg", "adj-std"
    );
    println!("{}", "-".repeat(68));
    for p in profiles.iter().take(11) {
        println!(
            "{:<16} {:>6} {:>7} {:>6.1} {:>8.2} {:>8.0} {:>8.2}",
            p.name.chars().take(16).collect::<String>(),
            p.stats.qubits,
            p.stats.gates,
            p.stats.two_qubit_fraction * 100.0,
            p.metrics.avg_shortest_path,
            p.metrics.max_degree,
            p.metrics.adjacency_std
        );
    }

    // Correlation pruning, as in the paper.
    let kept = prune_codependent_metrics(&profiles, 0.9);
    println!("\nfeatures retained at |r| < 0.9: {kept:?}");

    // Clustering on the paper's selected metric subset.
    let mut rng = qcs_rng::ChaCha8Rng::seed_from_u64(7);
    let clustering = cluster_profiles_selected(&profiles, 3, &mut rng);
    println!("\nk-means (k = 3) on the selected Table-I metrics:");
    for c in 0..3 {
        let members: Vec<&str> = suite
            .iter()
            .enumerate()
            .filter(|(i, _)| clustering.assignments[*i] == c)
            .map(|(_, b)| b.name.as_str())
            .collect();
        println!(
            "  cluster {c} ({} members): {}",
            members.len(),
            members.join(", ")
        );
    }
    println!(
        "\n(algorithms in the same cluster should behave similarly under a given\n mapping strategy — the paper's Section IV hypothesis)"
    );
    Ok(())
}
