//! Quickstart: build a circuit, map it onto the Surface-7 chip, inspect
//! the report, and verify the mapped circuit against the simulator.
//!
//! Run with: `cargo run --example quickstart`

use nisq_codesign::prelude::*;
use qcs_rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small quantum program: the Fig. 2 circuit of the paper.
    let mut circuit = Circuit::with_name(4, "fig2");
    circuit
        .cnot(1, 0)?
        .cnot(1, 2)?
        .cnot(2, 3)?
        .cnot(2, 0)?
        .cnot(1, 2)?;
    println!(
        "input circuit:\n{}",
        nisq_codesign::circuit::draw::draw(&circuit)
    );

    // 2. Its interaction graph: the object the paper profiles.
    let ig = nisq_codesign::circuit::interaction::interaction_graph(&circuit);
    println!("interaction graph:\n{ig}");

    // 3. A real device model: the Surface-7 transmon processor.
    let device = surface7();
    println!(
        "device: {} ({} qubits, {} couplers)",
        device.name(),
        device.qubit_count(),
        device.coupler_count()
    );

    // 4. Map with the trivial (OpenQL-style) mapper.
    let outcome = Mapper::trivial().map(&circuit, &device)?;
    println!(
        "\nmapped with {} placement + {} routing:",
        outcome.report.placer, outcome.report.router
    );
    println!("  SWAPs inserted:   {}", outcome.report.swaps_inserted);
    println!(
        "  gate overhead:    {:.1}%",
        outcome.report.gate_overhead_pct
    );
    println!(
        "  depth overhead:   {:.1}%",
        outcome.report.depth_overhead_pct
    );
    println!(
        "  estimated fidelity: {:.4} -> {:.4}",
        outcome.report.fidelity_before, outcome.report.fidelity_after
    );

    // 5. Verify: the routed circuit implements the original, up to the
    //    tracked qubit permutation.
    let mut rng = qcs_rng::ChaCha8Rng::seed_from_u64(42);
    nisq_codesign::sim::equiv::mapped_equivalent(
        &circuit,
        &outcome.routed.circuit,
        device.qubit_count(),
        outcome.routed.initial.as_assignment(),
        outcome.routed.final_layout.as_assignment(),
        3,
        &mut rng,
    )?;
    println!("\nsimulator check passed: mapping preserved the circuit's semantics");
    Ok(())
}
