//! # nisq-codesign
//!
//! Facade crate for the reproduction of *"Full-stack quantum computing
//! systems in the NISQ era: algorithm-driven and hardware-aware compilation
//! techniques"* (Bandic, Feld, Almudever — DATE 2022).
//!
//! The workspace implements every functional element of the quantum
//! computing full-stack described by the paper, from circuit IR to device
//! models, and the paper's co-design example: interaction-graph-based
//! profiling driving hardware-aware quantum circuit mapping.
//!
//! Each layer lives in its own crate and is re-exported here:
//!
//! * [`graph`] — weighted graphs, Table I metrics, Pearson correlation,
//!   k-means ([`qcs_graph`]).
//! * [`circuit`] — circuit IR, DAG, QASM, interaction graphs
//!   ([`qcs_circuit`]).
//! * [`topology`] — Surface-7/17 devices, lattices, calibration
//!   ([`qcs_topology`]).
//! * [`sim`] — state-vector simulation and mapping verification
//!   ([`qcs_sim`]).
//! * [`workloads`] — benchmark generators and the qbench-style suite
//!   ([`qcs_workloads`]).
//! * [`core`] — placement, routing, scheduling, fidelity estimation and
//!   profiling: the paper's contribution ([`qcs_core`]).
//! * [`stack`] — the full-stack pipeline of Fig. 1 ([`qcs_stack`]).
//!
//! # Examples
//!
//! Map a QAOA circuit onto the Surface-7 chip and inspect the overhead:
//!
//! ```
//! use nisq_codesign::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let device = surface7();
//! let circuit = qcs_workloads::qaoa::qaoa_maxcut_ring(4, 1, 0xBEEF)?;
//! let mapper = Mapper::trivial();
//! let outcome = mapper.map(&circuit, &device)?;
//! assert!(outcome.report.routed_two_qubit_gates >= outcome.report.original_two_qubit_gates);
//! # Ok(())
//! # }
//! ```

pub use qcs_circuit as circuit;
pub use qcs_core as core;
pub use qcs_graph as graph;
pub use qcs_sim as sim;
pub use qcs_stack as stack;
pub use qcs_topology as topology;
pub use qcs_workloads as workloads;

/// Convenience re-exports for examples and quick starts.
pub mod prelude {
    pub use qcs_circuit::circuit::Circuit;
    pub use qcs_circuit::gate::Gate;
    pub use qcs_core::mapper::Mapper;
    pub use qcs_graph::Graph;
    pub use qcs_topology::device::Device;
    pub use qcs_topology::surface::{surface17, surface7, surface_extended};
    pub use qcs_workloads;
}
