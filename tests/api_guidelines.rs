//! API-guideline conformance checks (C-SEND-SYNC, C-GOOD-ERR,
//! C-COMMON-TRAITS): the public types stay thread-safe and the error
//! types stay well-behaved as the crates evolve.

use nisq_codesign::circuit::circuit::{Circuit, CircuitError};
use nisq_codesign::circuit::decompose::DecomposeError;
use nisq_codesign::circuit::qasm::ParseQasmError;
use nisq_codesign::core::layout::{Layout, LayoutError};
use nisq_codesign::core::mapper::{MapError, MapReport};
use nisq_codesign::core::place::PlaceError;
use nisq_codesign::core::route::{RouteError, RoutedCircuit};
use nisq_codesign::core::schedule::Schedule;
use nisq_codesign::graph::{Graph, GraphError};
use nisq_codesign::sim::StateVector;
use nisq_codesign::stack::control::ChannelConflict;
use nisq_codesign::stack::pipeline::StackError;
use nisq_codesign::topology::device::{Device, DeviceError};
use nisq_codesign::topology::Calibration;

fn assert_send_sync<T: Send + Sync>() {}
fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}

#[test]
fn data_types_are_send_and_sync() {
    assert_send_sync::<Graph>();
    assert_send_sync::<Circuit>();
    assert_send_sync::<Device>();
    assert_send_sync::<Calibration>();
    assert_send_sync::<Layout>();
    assert_send_sync::<StateVector>();
    assert_send_sync::<Schedule>();
    assert_send_sync::<RoutedCircuit>();
    assert_send_sync::<MapReport>();
}

#[test]
fn error_types_implement_error_send_sync() {
    assert_error::<GraphError>();
    assert_error::<CircuitError>();
    assert_error::<ParseQasmError>();
    assert_error::<DecomposeError>();
    assert_error::<DeviceError>();
    assert_error::<LayoutError>();
    assert_error::<PlaceError>();
    assert_error::<RouteError>();
    assert_error::<MapError>();
    assert_error::<ChannelConflict>();
    assert_error::<StackError>();
}

#[test]
fn error_messages_are_lowercase_without_trailing_punctuation() {
    // C-GOOD-ERR style: concise, lowercase, no trailing period.
    let messages = vec![
        GraphError::SelfLoop(3).to_string(),
        CircuitError::DuplicateOperand(1).to_string(),
        DeviceError::Disconnected.to_string(),
        LayoutError::Collision { phys: 2 }.to_string(),
        PlaceError::CircuitTooWide {
            circuit: 9,
            device: 7,
        }
        .to_string(),
        RouteError::LayoutMismatch.to_string(),
    ];
    for m in messages {
        assert!(
            m.chars().next().unwrap().is_lowercase(),
            "message should start lowercase: {m}"
        );
        assert!(
            !m.ends_with('.'),
            "message should not end with a period: {m}"
        );
    }
}

#[test]
fn devices_are_usable_across_threads() {
    // The practical C-SEND-SYNC check: share a device and map on threads.
    let device = std::sync::Arc::new(nisq_codesign::topology::surface::surface17());
    let handles: Vec<_> = (0..4)
        .map(|i| {
            let device = std::sync::Arc::clone(&device);
            std::thread::spawn(move || {
                let c = nisq_codesign::workloads::ghz::ghz_chain(4 + i).unwrap();
                nisq_codesign::core::mapper::Mapper::trivial()
                    .map(&c, &device)
                    .unwrap()
                    .report
                    .swaps_inserted
            })
        })
        .collect();
    for h in handles {
        let _ = h.join().unwrap();
    }
}
