//! Invariants of the experiment pipeline itself — the properties the
//! paper's figures rely on, checked over a reduced suite so the whole
//! file runs in seconds.

use nisq_codesign::core::mapper::{Mapper, StageTiming};
use nisq_codesign::core::profile::{
    profile_correlation, prune_codependent_metrics, CircuitProfile,
};
use nisq_codesign::core::report::MappingRecord;
use nisq_codesign::topology::surface::surface_extended;
use nisq_codesign::workloads::suite::{generate_suite, SuiteConfig};

fn reduced_records() -> Vec<MappingRecord> {
    let config = SuiteConfig {
        count: 22,
        max_qubits: 16,
        max_gates: 400,
        ..Default::default()
    };
    let device = surface_extended(4);
    let mapper = Mapper::trivial();
    generate_suite(&config)
        .iter()
        .map(|b| {
            let outcome = mapper.map(&b.circuit, &device).expect("maps");
            let mut report = outcome.report;
            // Wall-clock stage timing is measurement, not content: zero it
            // so record equality means content equality.
            report.timing = StageTiming::ZERO;
            MappingRecord {
                name: b.name.clone(),
                family: b.family.to_string(),
                synthetic: b.is_synthetic(),
                profile: CircuitProfile::of(&b.circuit),
                report,
            }
        })
        .collect()
}

#[test]
fn fig3_invariants_hold_per_record() {
    for r in reduced_records() {
        // Routing can only add gates.
        assert!(
            r.report.routed_gates >= r.report.decomposed_gates,
            "{}: lost gates",
            r.name
        );
        assert!(r.report.gate_overhead_pct >= 0.0, "{}", r.name);
        // Fidelity product can only shrink as gates are added.
        assert!(
            r.report.fidelity_after <= r.report.fidelity_before + 1e-12,
            "{}: fidelity grew",
            r.name
        );
        assert!(
            (0.0..=100.0).contains(&r.report.fidelity_decrease_pct),
            "{}: decrease {}%",
            r.name,
            r.report.fidelity_decrease_pct
        );
        // SWAP accounting: each SWAP adds 3 native two-qubit gates.
        assert_eq!(
            r.report.routed_two_qubit_gates,
            r.report.original_two_qubit_gates + 3 * r.report.swaps_inserted,
            "{}: swap accounting",
            r.name
        );
    }
}

#[test]
fn suite_and_mapping_fully_deterministic() {
    let a = reduced_records();
    let b = reduced_records();
    assert_eq!(a, b);
}

#[test]
fn fig4_contrast_reproduces() {
    // The centrepiece of Section IV: same size parameters, different
    // graphs, different mapping cost.
    let qaoa = nisq_codesign::workloads::qaoa::fig4_qaoa(4).unwrap();
    let s = qaoa.stats();
    let random =
        nisq_codesign::workloads::random::random_like(s.qubits, s.gates, s.two_qubit_fraction, 99)
            .unwrap();
    assert_eq!(random.stats().gates, s.gates);
    assert_eq!(random.stats().qubits, s.qubits);

    let device = nisq_codesign::topology::surface::surface17();
    let mapper = Mapper::trivial();
    let rq = mapper.map(&qaoa, &device).unwrap().report;
    let rr = mapper.map(&random, &device).unwrap().report;
    assert!(
        rr.swaps_inserted > rq.swaps_inserted,
        "random ({}) must out-swap QAOA ({})",
        rr.swaps_inserted,
        rq.swaps_inserted
    );
    assert!(rr.fidelity_after < rq.fidelity_after);
}

#[test]
fn correlation_matrix_well_formed_over_suite() {
    let records = reduced_records();
    let profiles: Vec<CircuitProfile> = records.iter().map(|r| r.profile.clone()).collect();
    let corr = profile_correlation(&profiles);
    let k = CircuitProfile::feature_names().len();
    assert_eq!(corr.len(), k);
    for (i, row) in corr.iter().enumerate() {
        assert!((row[i] - 1.0).abs() < 1e-9);
        for (j, &v) in row.iter().enumerate() {
            assert!(v.abs() <= 1.0 + 1e-9);
            assert!((v - corr[j][i]).abs() < 1e-12);
        }
    }
    // Pruning monotonicity: a stricter threshold keeps no more features.
    let loose = prune_codependent_metrics(&profiles, 0.95).len();
    let strict = prune_codependent_metrics(&profiles, 0.70).len();
    assert!(strict <= loose);
}

#[test]
fn overhead_grows_with_connectivity_pressure() {
    // The headline shape of Fig. 3(b): among same-shape random circuits,
    // raising the two-qubit percentage raises routing overhead.
    let device = surface_extended(4);
    let mapper = Mapper::trivial();
    let mut last = -1.0f64;
    for (i, frac) in [0.1, 0.5, 0.9].iter().enumerate() {
        let c =
            nisq_codesign::workloads::random::random_like(12, 600, *frac, 7 + i as u64).unwrap();
        let r = mapper.map(&c, &device).unwrap().report;
        assert!(
            r.gate_overhead_pct > last,
            "overhead not increasing at 2q fraction {frac}: {} <= {last}",
            r.gate_overhead_pct
        );
        last = r.gate_overhead_pct;
    }
}

#[test]
fn fidelity_decays_with_gate_count() {
    // Fig. 3(a): same family, growing size, strictly decaying fidelity.
    let device = surface_extended(4);
    let mapper = Mapper::trivial();
    let mut last = f64::INFINITY;
    for gates in [50, 200, 800] {
        let c = nisq_codesign::workloads::random::random_like(10, gates, 0.3, 11).unwrap();
        let r = mapper.map(&c, &device).unwrap().report;
        assert!(
            r.fidelity_after < last,
            "fidelity not decaying at {gates} gates"
        );
        last = r.fidelity_after;
    }
}

#[test]
fn analytic_fidelity_matches_monte_carlo_on_mapped_circuit() {
    // The Fig. 3 estimator (product of gate fidelities) must equal the
    // fault-free shot frequency under Pauli fault injection with the same
    // per-gate rates — across the *mapped* circuit, SWAPs included.
    use nisq_codesign::sim::noise::{run_noisy, NoiseModel};
    use qcs_rng::SeedableRng;

    let circuit = nisq_codesign::workloads::ghz::ghz_chain(5).unwrap();
    let device = nisq_codesign::topology::lattice::line_device(6);
    // Inflate the error rates so the Monte-Carlo statistic converges with
    // few shots; keep the ratio 1q:2q realistic.
    let mut noisy_device = device.clone();
    for q in 0..6 {
        noisy_device
            .calibration_mut()
            .set_single_qubit_fidelity(q, 0.98);
    }
    for ((u, v), _) in device.calibration().couplers().collect::<Vec<_>>() {
        noisy_device
            .calibration_mut()
            .set_two_qubit_fidelity(u, v, 0.90);
    }
    let outcome = Mapper::trivial().map(&circuit, &noisy_device).unwrap();
    let analytic = outcome.report.fidelity_after;

    let model = NoiseModel::from_fidelities(0.98, 0.90, 1.0);
    assert!(
        (model.analytic_success(&outcome.native) - analytic).abs() < 1e-9,
        "fidelity model and noise model disagree analytically"
    );
    let mut rng = qcs_rng::ChaCha8Rng::seed_from_u64(17);
    let stats = run_noisy(&outcome.native, &model, 4000, &mut rng);
    assert!(
        (stats.fault_free_fraction - analytic).abs() < 0.03,
        "Monte-Carlo {} vs analytic {analytic}",
        stats.fault_free_fraction
    );
}

#[test]
fn convenience_mappers_work_end_to_end() {
    let circuit = nisq_codesign::workloads::qaoa::qaoa_maxcut_ring(8, 1, 3).unwrap();
    let device = nisq_codesign::topology::surface::surface17();
    for mapper in [
        Mapper::trivial(),
        Mapper::lookahead(),
        Mapper::algorithm_driven(),
        Mapper::noise_aware(),
        Mapper::subgraph(),
        Mapper::sabre(),
    ] {
        let outcome = mapper.map(&circuit, &device).unwrap();
        assert!(outcome.routed.respects_connectivity(&device));
    }
    // The ring embeds into the surface lattice: subgraph placement must
    // find a zero-swap embedding.
    let outcome = Mapper::subgraph().map(&circuit, &device).unwrap();
    assert_eq!(outcome.report.swaps_inserted, 0);
}

#[test]
fn records_survive_json_round_trip() {
    let records = reduced_records();
    let json = MappingRecord::batch_to_json(&records);
    let back = MappingRecord::batch_from_json(&json).unwrap();
    assert_eq!(back, records);
}
