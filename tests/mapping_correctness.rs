//! Cross-crate correctness: every mapper on every device preserves
//! circuit semantics, verified against the state-vector simulator, with
//! property-based circuit generation.

use qcs_check::{check, Gen};
use qcs_rng::{ChaCha8Rng, SeedableRng};

use nisq_codesign::circuit::circuit::Circuit;
use nisq_codesign::circuit::gate::Gate;
use nisq_codesign::core::mapper::Mapper;
use nisq_codesign::core::place::{GraphSimilarityPlacer, RandomPlacer, TrivialPlacer};
use nisq_codesign::core::route::{
    BidirectionalRouter, LookaheadRouter, NoiseAwareRouter, TrivialRouter,
};
use nisq_codesign::sim::equiv::mapped_equivalent;
use nisq_codesign::topology::device::Device;
use nisq_codesign::topology::lattice::{grid_device, line_device, ring_device};
use nisq_codesign::topology::surface::surface7;

const CASES: u64 = 24;

/// An arbitrary unitary gate on `n` qubits (arity ≤ 2 so every router
/// accepts it directly, plus Cphase to exercise angle handling).
fn gen_gate(g: &mut Gen, n: usize) -> Gate {
    let q1 = |g: &mut Gen| g.usize_in(0..n);
    let q2 = |g: &mut Gen| {
        let a = g.usize_in(0..n);
        let mut b = g.usize_in(0..n - 1);
        if b >= a {
            b += 1;
        }
        (a, b)
    };
    match g.usize_in(0..10) {
        0 => Gate::X(q1(g)),
        1 => Gate::H(q1(g)),
        2 => Gate::S(q1(g)),
        3 => Gate::T(q1(g)),
        4 => Gate::Rz(q1(g), g.f64_in(-3.0..3.0)),
        5 => Gate::Ry(q1(g), g.f64_in(-3.0..3.0)),
        6 => {
            let (a, b) = q2(g);
            Gate::Cnot(a, b)
        }
        7 => {
            let (a, b) = q2(g);
            Gate::Cz(a, b)
        }
        8 => {
            let (a, b) = q2(g);
            Gate::Swap(a, b)
        }
        _ => {
            let (a, b) = q2(g);
            Gate::Cphase(a, b, g.f64_in(-3.0..3.0))
        }
    }
}

fn gen_circuit(g: &mut Gen, n: usize, max_gates: usize) -> Circuit {
    let gates = g.vec(1..max_gates, |g| gen_gate(g, n));
    let mut c = Circuit::with_name(n, "prop");
    for gate in gates {
        c.push(gate).expect("generator produces valid gates");
    }
    c
}

fn all_mappers() -> Vec<Mapper> {
    vec![
        Mapper::new(Box::new(TrivialPlacer), Box::new(TrivialRouter)),
        Mapper::new(Box::new(TrivialPlacer), Box::new(BidirectionalRouter)),
        Mapper::new(
            Box::new(TrivialPlacer),
            Box::new(LookaheadRouter::default()),
        ),
        Mapper::new(Box::new(RandomPlacer { seed: 3 }), Box::new(TrivialRouter)),
        Mapper::new(
            Box::new(GraphSimilarityPlacer),
            Box::new(LookaheadRouter::default()),
        ),
        Mapper::new(Box::new(GraphSimilarityPlacer), Box::new(NoiseAwareRouter)),
    ]
}

fn check_mapping(circuit: &Circuit, device: &Device, mapper: &Mapper) {
    let outcome = mapper.map(circuit, device).unwrap_or_else(|e| {
        panic!(
            "{}-{} failed: {e}",
            mapper.placer_name(),
            mapper.router_name()
        )
    });
    // Invariant 1: connectivity respected.
    assert!(
        outcome.routed.respects_connectivity(device),
        "{}-{} violated connectivity",
        mapper.placer_name(),
        mapper.router_name()
    );
    // Invariant 2: everything native after decomposition.
    assert!(outcome
        .native
        .gates()
        .iter()
        .all(|g| device.gate_set().contains(g.kind())));
    // Invariant 3: semantics preserved up to the tracked permutation.
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    mapped_equivalent(
        circuit,
        &outcome.routed.circuit,
        device.qubit_count(),
        outcome.routed.initial.as_assignment(),
        outcome.routed.final_layout.as_assignment(),
        2,
        &mut rng,
    )
    .unwrap_or_else(|e| {
        panic!(
            "{}-{} broke semantics: {e}\ncircuit: {circuit}",
            mapper.placer_name(),
            mapper.router_name()
        )
    });
    // Invariant 4: layouts stay internally consistent.
    assert!(outcome.routed.initial.is_consistent());
    assert!(outcome.routed.final_layout.is_consistent());
}

#[test]
fn random_circuits_map_correctly_on_line() {
    check("random_circuits_map_correctly_on_line", CASES, |g| {
        let c = gen_circuit(g, 4, 20);
        let device = line_device(5);
        for mapper in all_mappers() {
            check_mapping(&c, &device, &mapper);
        }
    });
}

#[test]
fn random_circuits_map_correctly_on_surface7() {
    check("random_circuits_map_correctly_on_surface7", CASES, |g| {
        let c = gen_circuit(g, 5, 16);
        let device = surface7();
        for mapper in all_mappers() {
            check_mapping(&c, &device, &mapper);
        }
    });
}

#[test]
fn random_circuits_map_correctly_on_grid() {
    check("random_circuits_map_correctly_on_grid", CASES, |g| {
        let c = gen_circuit(g, 6, 14);
        let device = grid_device(2, 4);
        for mapper in all_mappers() {
            check_mapping(&c, &device, &mapper);
        }
    });
}

#[test]
fn random_circuits_map_correctly_on_ring() {
    check("random_circuits_map_correctly_on_ring", CASES, |g| {
        let c = gen_circuit(g, 4, 14);
        let device = ring_device(6);
        for mapper in all_mappers() {
            check_mapping(&c, &device, &mapper);
        }
    });
}

#[test]
fn toffoli_circuits_map_via_decomposition() {
    let mut c = Circuit::new(3);
    c.toffoli(0, 1, 2).unwrap().toffoli(2, 0, 1).unwrap();
    let device = surface7();
    for mapper in all_mappers() {
        check_mapping(&c, &device, &mapper);
    }
}

#[test]
fn real_workloads_map_correctly() {
    // Small instances of every "real algorithm" family, checked
    // end-to-end on a line device (worst connectivity).
    let circuits: Vec<Circuit> = vec![
        nisq_codesign::workloads::ghz::ghz_chain(5).unwrap(),
        nisq_codesign::workloads::ghz::ghz_star(5).unwrap(),
        nisq_codesign::workloads::qft::qft(5).unwrap(),
        nisq_codesign::workloads::qaoa::qaoa_maxcut_ring(5, 2, 1).unwrap(),
        nisq_codesign::workloads::bv::bernstein_vazirani(4, 0b1011).unwrap(),
        nisq_codesign::workloads::adder::cuccaro_adder(2).unwrap(),
        nisq_codesign::workloads::vqe::hardware_efficient_ansatz(5, 2, 3).unwrap(),
        nisq_codesign::workloads::qvolume::quantum_volume(4, 4, 5).unwrap(),
        nisq_codesign::workloads::supremacy::supremacy_grid(2, 3, 6, 7).unwrap(),
        nisq_codesign::workloads::reversible::toffoli_network(
            &nisq_codesign::workloads::reversible::ReversibleSpec {
                qubits: 5,
                gates: 20,
                seed: 2,
            },
        )
        .unwrap(),
    ];
    let device = line_device(6);
    let mapper = Mapper::trivial();
    for c in &circuits {
        check_mapping(c, &device, &mapper);
    }
}

#[test]
fn grover_maps_and_verifies() {
    // Grover has measure-free ancilla structure; verify on surface-7.
    let c = nisq_codesign::workloads::grover::grover_with_iterations(3, 5, 1).unwrap();
    check_mapping(&c, &surface7(), &Mapper::lookahead());
}
