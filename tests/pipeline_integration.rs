//! End-to-end full-stack integration: QASM in, control events out, every
//! layer's invariants checked against the one below it.

use nisq_codesign::circuit::qasm;
use nisq_codesign::core::mapper::Mapper;
use nisq_codesign::stack::codesign::MapperChoice;
use nisq_codesign::stack::control::ControlTrace;
use nisq_codesign::stack::pipeline::{FullStack, StackError};
use nisq_codesign::topology::lattice::grid_device;
use nisq_codesign::topology::surface::{surface17, surface7};

#[test]
fn qasm_source_survives_every_layer() {
    let src = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
rz(pi/8) q[2];
cx q[2],q[3];
cx q[3],q[4];
measure q[4] -> c[4];
"#;
    let stack = FullStack::new(surface17());
    let run = stack.run_qasm(src).expect("stack runs");

    // Frontend produced what the parser alone would (modulo optimization).
    let parsed = qasm::parse(src).expect("parses");
    assert!(run.prepared.circuit.gate_count() <= parsed.gate_count());

    // Compiler output is consistent with the device.
    assert!(run.outcome.routed.respects_connectivity(stack.device()));

    // ISA instruction count equals native gate count minus barriers.
    assert_eq!(run.isa.instruction_count(), run.outcome.native.gate_count());

    // Control trace covers every ISA op.
    assert_eq!(run.control.event_count(), run.isa.instruction_count());

    // Re-dispatching the ISA is deterministic.
    let again = ControlTrace::dispatch(&run.isa).expect("redispatch");
    assert_eq!(again, run.control);
}

#[test]
fn stack_serializes_back_to_qasm() {
    // The routed physical circuit can be printed as QASM and re-parsed —
    // the interchange loop a real toolchain needs.
    let stack = FullStack::new(surface7()).with_mapper(Mapper::trivial());
    let circuit = nisq_codesign::workloads::ghz::ghz_chain(4).unwrap();
    let run = stack.run_circuit(&circuit).expect("runs");
    let text = qasm::print(&run.outcome.routed.circuit);
    let back = qasm::parse(&text).expect("round-trips");
    assert_eq!(back.gates(), run.outcome.routed.circuit.gates());
}

#[test]
fn codesign_choice_varies_with_workload() {
    let stack = FullStack::new(surface17());
    let sparse = nisq_codesign::workloads::vqe::hardware_efficient_ansatz(8, 2, 1).unwrap();
    let dense = nisq_codesign::workloads::qft::qft(8).unwrap();
    let run_sparse = stack.run_circuit(&sparse).expect("sparse runs");
    let run_dense = stack.run_circuit(&dense).expect("dense runs");
    assert_eq!(run_sparse.mapper_choice, MapperChoice::AlgorithmDriven);
    assert_eq!(run_dense.mapper_choice, MapperChoice::Lookahead);
}

#[test]
fn every_workload_family_clears_the_stack() {
    let device = grid_device(4, 4);
    let stack = FullStack::new(device);
    let suite = nisq_codesign::workloads::suite::generate_suite(
        &nisq_codesign::workloads::suite::SuiteConfig {
            count: 22,
            max_qubits: 12,
            max_gates: 300,
            ..Default::default()
        },
    );
    for b in &suite {
        let run = stack
            .run_circuit(&b.circuit)
            .unwrap_or_else(|e| panic!("{} failed: {e}", b.name));
        assert!(
            run.outcome.report.fidelity_after > 0.0,
            "{}: zero fidelity",
            b.name
        );
        assert!(run.isa.total_cycles > 0, "{}: empty program", b.name);
    }
}

#[test]
fn oversized_programs_fail_cleanly() {
    let stack = FullStack::new(surface7());
    let big = nisq_codesign::workloads::qft::qft(10).unwrap();
    match stack.run_circuit(&big) {
        Err(StackError::Map(_)) => {}
        other => panic!("expected Map error, got {other:?}"),
    }
}

#[test]
fn malformed_qasm_fails_cleanly() {
    let stack = FullStack::new(surface7());
    match stack.run_qasm("OPENQASM 2.0;\nqreg q[2];\nfrob q[0];\n") {
        Err(StackError::Parse(e)) => assert!(e.message.contains("unknown")),
        other => panic!("expected Parse error, got {other:?}"),
    }
}
