//! The portfolio selector's baked-in thresholds and the committed
//! calibration sweep must agree.
//!
//! `SelectorThresholds::default()` hardcodes the winning thresholds of
//! the `portfolio_calibrate` grid search so the serving path needs no
//! file I/O; `CALIBRATION_portfolio.json` is the committed, re-derivable
//! record of that search. If either changes without the other, the
//! selector silently serves with thresholds nobody calibrated — this
//! test makes that drift a build failure. (The *freshness* of the
//! committed file itself is separately gated by
//! `portfolio_calibrate --check` and the portfolio section of
//! BENCH_mapper.json.)

use qcs_core::portfolio::{SelectorThresholds, ADEQUACY_FACTOR, ADEQUACY_SLACK};
use qcs_json::Json;

fn committed() -> Json {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/CALIBRATION_portfolio.json");
    let text = std::fs::read_to_string(path).expect("CALIBRATION_portfolio.json is committed");
    qcs_json::parse(&text).expect("calibration file parses")
}

fn number(doc: &Json, section: &str, key: &str) -> f64 {
    let Some(Json::Number(n)) = doc.get(section).and_then(|s| s.get(key)) else {
        panic!("calibration file misses {section}.{key}");
    };
    *n
}

#[test]
fn default_thresholds_match_committed_calibration() {
    let doc = committed();
    let defaults = SelectorThresholds::default();
    assert_eq!(
        number(&doc, "thresholds", "trivial_min_path"),
        defaults.trivial_min_path
    );
    assert_eq!(
        number(&doc, "thresholds", "trivial_max_degree"),
        defaults.trivial_max_degree
    );
    assert_eq!(
        number(&doc, "thresholds", "lookahead_max_path"),
        defaults.lookahead_max_path
    );
    assert_eq!(
        number(&doc, "thresholds", "lookahead_min_degree"),
        defaults.lookahead_min_degree
    );
    assert_eq!(number(&doc, "thresholds", "margin"), defaults.margin);
}

#[test]
fn adequacy_constants_match_committed_calibration() {
    let doc = committed();
    assert_eq!(number(&doc, "adequacy", "factor"), ADEQUACY_FACTOR);
    assert_eq!(number(&doc, "adequacy", "slack"), ADEQUACY_SLACK as f64);
}
