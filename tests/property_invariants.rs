//! Property-based tests on cross-crate invariants: graph metrics,
//! layouts, scheduling, QASM, and the fidelity model.

use qcs_check::{check, Gen};
use qcs_rng::SeedableRng;

use nisq_codesign::circuit::circuit::Circuit;
use nisq_codesign::circuit::dag::DependencyDag;
use nisq_codesign::circuit::interaction::interaction_graph;
use nisq_codesign::circuit::optimize::optimize;
use nisq_codesign::circuit::qasm;
use nisq_codesign::core::fidelity::estimate_fidelity;
use nisq_codesign::core::layout::Layout;
use nisq_codesign::core::schedule::{schedule_alap, schedule_asap, ControlGroups};
use nisq_codesign::graph::metrics::GraphMetrics;
use nisq_codesign::graph::stats::pearson;
use nisq_codesign::graph::Graph;
use nisq_codesign::sim::exec::run_unitary;
use nisq_codesign::sim::StateVector;
use nisq_codesign::topology::error::GateDurations;
use nisq_codesign::topology::lattice::line_device;

const CASES: u64 = 48;

#[test]
fn u2_parses_to_hadamard_up_to_phase() {
    use nisq_codesign::sim::unitary::circuits_equal_exact;
    // qelib1 defines h == u2(0, pi).
    let parsed = qasm::parse("qreg q[1]; u2(0,pi) q[0];").unwrap();
    let mut h = Circuit::new(1);
    h.h(0).unwrap();
    assert!(circuits_equal_exact(&parsed, &h, 1e-10));
}

#[test]
fn u3_parses_to_correct_rotation() {
    use nisq_codesign::sim::unitary::circuits_equal_exact;
    // u3(pi, 0, pi) == x (qelib1 identity).
    let parsed = qasm::parse("qreg q[1]; u3(pi,0,pi) q[0];").unwrap();
    let mut x = Circuit::new(1);
    x.x(0).unwrap();
    assert!(circuits_equal_exact(&parsed, &x, 1e-10));
}

/// Random edge list over up to 9 nodes, weights 1..6.
fn gen_graph(g: &mut Gen) -> Graph {
    let mut graph = Graph::with_nodes(9);
    let edges = g.vec(0..24, |g| {
        (g.usize_in(0..9), g.usize_in(0..9), g.i64_in(1..=5))
    });
    for (u, v, w) in edges {
        if u != v {
            graph.add_edge_weighted(u, v, w as f64).expect("valid edge");
        }
    }
    graph
}

/// One seed in `0..bound` for workloads that take a `u64` seed.
fn gen_seed(g: &mut Gen, bound: i64) -> u64 {
    g.i64_in(0..=bound - 1) as u64
}

#[test]
fn metrics_invariant_under_relabelling() {
    check("metrics_invariant_under_relabelling", CASES, |g| {
        let graph = gen_graph(g);
        let p = g.permutation(9);
        let m1 = GraphMetrics::compute(&graph);
        let m2 = GraphMetrics::compute(&graph.relabel(&p));
        assert!((m1.avg_shortest_path - m2.avg_shortest_path).abs() < 1e-9);
        assert_eq!(m1.max_degree, m2.max_degree);
        assert_eq!(m1.min_degree, m2.min_degree);
        assert!((m1.adjacency_std - m2.adjacency_std).abs() < 1e-9);
        assert!((m1.clustering_coefficient - m2.clustering_coefficient).abs() < 1e-9);
        assert_eq!(m1.components, m2.components);
    });
}

#[test]
fn metric_bounds() {
    check("metric_bounds", CASES, |g| {
        let graph = gen_graph(g);
        let m = GraphMetrics::compute(&graph);
        assert!(m.min_degree <= m.max_degree);
        assert!(m.density >= 0.0 && m.density <= 1.0);
        assert!(m.clustering_coefficient >= 0.0 && m.clustering_coefficient <= 1.0);
        assert!(m.weight_variance >= 0.0);
        assert!(m.components >= 1.0 || m.nodes == 0.0);
        if m.edges > 0.0 {
            assert!(m.min_weight >= 1.0); // generator weights ≥ 1
            assert!(m.max_weight >= m.min_weight);
        }
    });
}

#[test]
fn pearson_bounded_and_symmetric() {
    check("pearson_bounded_and_symmetric", CASES, |g| {
        let xs = g.vec(3..20, |g| g.f64_in(-100.0..100.0));
        let ys = g.vec(3..20, |g| g.f64_in(-100.0..100.0));
        let n = xs.len().min(ys.len());
        let r = pearson(&xs[..n], &ys[..n]);
        assert!(r.abs() <= 1.0 + 1e-9);
        let r2 = pearson(&ys[..n], &xs[..n]);
        assert!((r - r2).abs() < 1e-12);
    });
}

#[test]
fn layout_consistent_under_random_swaps() {
    check("layout_consistent_under_random_swaps", CASES, |g| {
        let swaps = g.vec(0..32, |g| (g.usize_in(0..8), g.usize_in(0..8)));
        let mut layout = Layout::identity(5, 8);
        for (a, b) in swaps {
            if a != b {
                layout.swap_physical(a, b);
            }
        }
        assert!(layout.is_consistent());
        // Round-trip: every virtual qubit findable at its physical home.
        for v in 0..5 {
            assert_eq!(layout.virt_at(layout.phys_of(v)), Some(v));
        }
    });
}

#[test]
fn schedule_respects_dependencies() {
    check("schedule_respects_dependencies", CASES, |g| {
        let seed = gen_seed(g, 500);
        let c = nisq_codesign::workloads::random::random_like(5, 30, 0.4, seed).unwrap();
        let durations = GateDurations::surface_code_defaults();
        for sched in [
            schedule_asap(&c, &durations, &ControlGroups::unconstrained()),
            schedule_alap(&c, &durations, &ControlGroups::unconstrained()),
        ] {
            let dag = DependencyDag::new(&c);
            for (i, gate) in sched.gates.iter().enumerate() {
                for &p in dag.predecessors(i) {
                    let pred = &sched.gates[p];
                    assert!(
                        gate.start_ns >= pred.end_ns() - 1e-9,
                        "gate {i} starts {} before predecessor {p} ends {}",
                        gate.start_ns,
                        pred.end_ns()
                    );
                }
            }
            assert!(
                sched.makespan_ns
                    >= sched.gates.iter().map(|g| g.end_ns()).fold(0.0, f64::max) - 1e-9
            );
        }
    });
}

#[test]
fn qasm_round_trip_random_circuits() {
    check("qasm_round_trip_random_circuits", CASES, |g| {
        let seed = gen_seed(g, 500);
        let c = nisq_codesign::workloads::random::random_like(4, 25, 0.3, seed).unwrap();
        let back = qasm::parse(&qasm::print(&c)).unwrap();
        assert_eq!(back.gates(), c.gates());
    });
}

#[test]
fn optimizer_preserves_semantics() {
    check("optimizer_preserves_semantics", CASES, |g| {
        let seed = gen_seed(g, 200);
        let c = nisq_codesign::workloads::random::random_like(4, 20, 0.3, seed).unwrap();
        let (opt, _) = optimize(&c);
        let mut rng = qcs_rng::ChaCha8Rng::seed_from_u64(seed);
        let input = StateVector::random(4, &mut rng);
        let a = run_unitary(&c, input.clone());
        let b = run_unitary(&opt, input);
        assert!(
            a.approx_eq_up_to_phase(&b, 1e-8),
            "optimizer changed circuit semantics"
        );
    });
}

#[test]
fn commutation_cancellation_preserves_semantics() {
    check("commutation_cancellation_preserves_semantics", CASES, |g| {
        use nisq_codesign::circuit::commute::cancel_with_commutation;
        use nisq_codesign::sim::unitary::circuits_equal_exact;
        let seed = gen_seed(g, 200);
        let c = nisq_codesign::workloads::random::random_like(4, 24, 0.5, seed).unwrap();
        let (opt, removed) = cancel_with_commutation(&c);
        assert_eq!(opt.gate_count() + removed, c.gate_count());
        assert!(
            circuits_equal_exact(&c, &opt, 1e-8),
            "commutation-aware cancellation changed the unitary (seed {seed})"
        );
    });
}

#[test]
fn commutation_rules_are_sound() {
    check("commutation_rules_are_sound", CASES, |g| {
        use nisq_codesign::circuit::commute::gates_commute;
        use nisq_codesign::sim::unitary::circuits_equal_exact;
        // Draw two gates from a random circuit; if the rule says they
        // commute, the two orderings must implement the same unitary.
        let seed = gen_seed(g, 300);
        let c = nisq_codesign::workloads::random::random_like(3, 8, 0.6, seed).unwrap();
        let gates = c.gates();
        for i in 0..gates.len() {
            for j in (i + 1)..gates.len() {
                let (a, b) = (gates[i], gates[j]);
                if !a.is_unitary() || !b.is_unitary() || !gates_commute(&a, &b) {
                    continue;
                }
                let mut ab = Circuit::new(3);
                ab.push(a).unwrap();
                ab.push(b).unwrap();
                let mut ba = Circuit::new(3);
                ba.push(b).unwrap();
                ba.push(a).unwrap();
                assert!(
                    circuits_equal_exact(&ab, &ba, 1e-9),
                    "unsound commutation: {a} vs {b}"
                );
            }
        }
    });
}

#[test]
fn fidelity_product_permutation_invariant() {
    check("fidelity_product_permutation_invariant", CASES, |g| {
        // Shuffling gate order never changes the analytic product.
        let seed = gen_seed(g, 200);
        let c = nisq_codesign::workloads::random::random_like(4, 20, 0.4, seed).unwrap();
        let device = line_device(4);
        let f1 = estimate_fidelity(&c, &device);
        let mut reversed = Circuit::new(4);
        for gate in c.gates().iter().rev() {
            reversed.push(*gate).unwrap();
        }
        let f2 = estimate_fidelity(&reversed, &device);
        assert!((f1 - f2).abs() < 1e-12);
    });
}

#[test]
fn interaction_graph_weight_equals_two_qubit_count() {
    check(
        "interaction_graph_weight_equals_two_qubit_count",
        CASES,
        |g| {
            let seed = gen_seed(g, 200);
            let c = nisq_codesign::workloads::random::random_like(6, 40, 0.5, seed).unwrap();
            let ig = interaction_graph(&c);
            assert_eq!(ig.total_weight() as usize, c.two_qubit_gate_count());
        },
    );
}
